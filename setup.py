"""Legacy setup shim.

The execution environment has no `wheel` package and no network access, so
PEP-517 editable installs (`pip install -e .`) cannot build metadata.  This
shim lets `pip install -e . --no-use-pep517 --no-build-isolation` (and plain
`pip install -e .` on fully equipped machines via pyproject.toml) work.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro-wpa = repro.cli:main"]},
    python_requires=">=3.9",
)
