"""``repro-wpa batch`` — supervised multi-program batch driver.

Runs one ``repro-wpa`` subprocess per program so a crash (OOM kill,
segfault, interpreter abort) takes down only that program's attempt, never
the batch.  The supervisor enforces a per-attempt wall-clock timeout,
kills overrunning workers, and retries on the shared
:class:`~repro.runtime.resilience.RetryPolicy` — exponential backoff
with deterministic jitter seeded per program file, so ``--jobs N``
workers that failed together spread their wakeups apart instead of
retrying in lockstep (and two runs of the same batch still sleep the
same schedule).  Each retry passes ``--resume`` so the worker continues
from the last checkpoint instead of starting over.  Non-final attempts run with
``--no-fallback``: a budget trip then checkpoints and exits 3 rather than
silently degrading, keeping the precise answer reachable across retries.
Only the final attempt may walk the degradation ladder (unless the batch
itself was invoked with ``--no-fallback``) — degradation is the last
resort, after every resume-and-retry has been spent.

The aggregate JSON (``--output``) records every attempt's exit code,
duration and timeout/kill disposition plus each worker's own run report
(collected via ``--report-json``, including its per-stage trace, which
is summed into batch-wide ``stage_totals``), and is written atomically.

Exit code: 0 when every program produced a result, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.runtime.resilience import RetryPolicy
from repro.store.atomic import atomic_write_json

#: CLI mode flag per analysis name.
_ANALYSIS_FLAGS = {
    "ander": "-ander",
    "sfs": "-fspta",
    "vsfs": "-vfspta",
    "icfg-fs": "-icfg-fspta",
}


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wpa batch",
        description="Supervised batch analysis with timeouts, "
                    "checkpoint/resume retries and backoff",
    )
    parser.add_argument("files", nargs="+",
                        help="mini-C source files to analyse")
    parser.add_argument("--analysis", default="vsfs",
                        choices=tuple(_ANALYSIS_FLAGS),
                        help="analysis to run on every program (default vsfs)")
    parser.add_argument("--ir", action="store_true",
                        help="inputs are textual IR")
    parser.add_argument("--no-delta", action="store_true",
                        help="disable the delta propagation kernel")
    parser.add_argument("--no-ptrepo", action="store_true",
                        help="disable deduplicated points-to storage")
    parser.add_argument("--no-mde-batch", action="store_true",
                        help="disable propagation-batch memoisation "
                             "(dedup-engine ablation)")
    parser.add_argument("--no-arena", action="store_true",
                        help="disable the shared memory-mapped mask arena "
                             "that --store otherwise enables")
    parser.add_argument("--budget-seconds", type=float, metavar="S",
                        help="per-attempt solver wall-clock budget")
    parser.add_argument("--budget-mb", type=float, metavar="MB",
                        help="per-attempt traced-memory budget")
    parser.add_argument("--max-steps", type=int, metavar="N",
                        help="per-attempt solver step budget")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-attempt subprocess wall-clock timeout; "
                             "overrunning workers are killed and retried")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="retries after the first attempt (default 2)")
    parser.add_argument("--backoff", type=float, default=0.5, metavar="S",
                        help="base retry delay, doubled per retry with "
                             "deterministic per-file jitter (default 0.5s)")
    parser.add_argument("--backoff-jitter", type=float, default=0.25,
                        metavar="F",
                        help="fraction of each retry delay randomised away, "
                             "seeded per program file (default 0.25; 0 "
                             "restores the fixed schedule)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="programs analysed concurrently (default 1)")
    parser.add_argument("--solve-jobs", type=int, default=1, metavar="N",
                        help="sharded workers per solve (repro-wpa --jobs); "
                             "resume-on-retry attempts drop to serial, as "
                             "checkpoints are serial-only")
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="checkpoint root; each program gets its own "
                             "subdirectory, enabling resume-on-retry")
    parser.add_argument("--checkpoint-every", type=int, default=1000,
                        metavar="N", help="checkpoint cadence in solver steps")
    parser.add_argument("--checkpoint-seconds", type=float, metavar="S",
                        help="wall-clock checkpoint cadence")
    parser.add_argument("--store", metavar="DIR",
                        help="shared content-addressed result store")
    parser.add_argument("--no-fallback", action="store_true",
                        help="never degrade, even on the final attempt")
    parser.add_argument("--output", metavar="FILE",
                        help="write the aggregate batch report as JSON")
    return parser


def _worker_env() -> Dict[str, str]:
    """Subprocess environment with the repro package importable."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (package_root if not existing
                         else package_root + os.pathsep + existing)
    return env


def _slug(path: str) -> str:
    stem = os.path.splitext(os.path.basename(path))[0]
    return re.sub(r"[^A-Za-z0-9._-]", "_", stem) or "program"


def _attempt_cmd(args: argparse.Namespace, file: str, ckdir: Optional[str],
                 report_json: Optional[str], resume: bool,
                 final: bool) -> List[str]:
    cmd = [sys.executable, "-m", "repro.cli",
           _ANALYSIS_FLAGS[args.analysis], file]
    if args.ir:
        cmd.append("--ir")
    if args.no_delta:
        cmd.append("--no-delta")
    if args.no_ptrepo:
        cmd.append("--no-ptrepo")
    if args.no_mde_batch:
        cmd.append("--no-mde-batch")
    if args.no_arena:
        cmd.append("--no-arena")
    if args.budget_seconds is not None:
        cmd += ["--budget-seconds", str(args.budget_seconds)]
    if args.budget_mb is not None:
        cmd += ["--budget-mb", str(args.budget_mb)]
    if args.max_steps is not None:
        cmd += ["--max-steps", str(args.max_steps)]
    if args.solve_jobs > 1 and args.analysis in ("sfs", "vsfs") and not resume:
        cmd += ["--jobs", str(args.solve_jobs)]
    if ckdir is not None:
        cmd += ["--checkpoint-dir", ckdir,
                "--checkpoint-every", str(args.checkpoint_every)]
        if args.checkpoint_seconds is not None:
            cmd += ["--checkpoint-seconds", str(args.checkpoint_seconds)]
        if resume:
            cmd.append("--resume")
    if args.store is not None:
        cmd += ["--store", args.store]
    if report_json is not None:
        cmd += ["--report-json", report_json]
    # Degradation is the last resort: only the final attempt may fall
    # back down the ladder, and only when the batch allows fallback.
    if args.no_fallback or not final:
        cmd.append("--no-fallback")
    return cmd


def _run_program(args: argparse.Namespace, env: Dict[str, str],
                 file: str) -> Dict[str, Any]:
    import tempfile

    ckdir = (os.path.join(args.checkpoint_dir, _slug(file))
             if args.checkpoint_dir else None)
    if ckdir is not None:
        report_json = os.path.join(ckdir, "report.json")
    else:
        # Workers always report (per-stage trace feeds the aggregate).
        report_json = os.path.join(
            tempfile.mkdtemp(prefix="repro-batch-report-"), "report.json")
    record: Dict[str, Any] = {"file": file, "analysis": args.analysis,
                              "attempts": [], "status": "failed",
                              "resume_count": 0}
    total_attempts = 1 + max(0, args.retries)
    # Deterministic seeded jitter, keyed per file: concurrent programs
    # that failed at the same instant wake apart instead of in lockstep,
    # and re-running the batch reproduces the identical schedule.
    backoff = RetryPolicy(retries=total_attempts, base_delay=args.backoff,
                          multiplier=2.0, max_delay=None,
                          jitter=args.backoff_jitter).seeded_for(file)
    for attempt in range(total_attempts):
        final = attempt == total_attempts - 1
        if attempt:
            time.sleep(backoff.delay(attempt))
            record["resume_count"] += 1 if ckdir is not None else 0
        cmd = _attempt_cmd(args, file, ckdir, report_json,
                           resume=attempt > 0 and ckdir is not None,
                           final=final)
        begun = time.monotonic()
        entry: Dict[str, Any] = {"attempt": attempt, "final": final,
                                 "resumed": attempt > 0 and ckdir is not None}
        try:
            proc = subprocess.run(cmd, env=env, capture_output=True,
                                  text=True, timeout=args.timeout)
            entry["exit_code"] = proc.returncode
            entry["timed_out"] = False
            if proc.returncode != 0:
                entry["stderr_tail"] = proc.stderr.strip().splitlines()[-3:]
        except subprocess.TimeoutExpired:
            # subprocess.run already killed the worker; its last cadence
            # checkpoint (if any) is what the next attempt resumes from.
            entry["exit_code"] = None
            entry["timed_out"] = True
        entry["seconds"] = round(time.monotonic() - begun, 3)
        record["attempts"].append(entry)
        if entry["exit_code"] == 0:
            record["status"] = "ok"
            break
        if entry["exit_code"] == 2:
            # Parse/IR errors are deterministic: retrying cannot help.
            record["status"] = "input-error"
            break
    if report_json is not None and os.path.exists(report_json):
        import json

        try:
            with open(report_json) as handle:
                record["report"] = json.load(handle)
        except (OSError, ValueError):
            record["report"] = None
    return record


def _stage_totals(records: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Aggregate each worker's per-stage trace: total wall, runs, cache
    hits per stage across the batch (substrate stages keep
    ``main_phase: false`` — the paper excludes them from the timed main
    phase)."""
    totals: Dict[str, Dict[str, Any]] = {}
    for record in records:
        payload = record.get("report") or {}
        for stage in payload.get("stages") or []:
            name = stage.get("stage")
            if not isinstance(name, str):
                continue
            entry = totals.setdefault(name, {
                "runs": 0, "wall_seconds": 0.0, "steps": 0, "cache_hits": 0,
                "main_phase": bool(stage.get("main_phase")),
            })
            entry["runs"] += 1
            entry["wall_seconds"] += float(stage.get("wall_s") or 0.0)
            # Trace steps are per attempt (resumed solves report only their
            # own pops), so summing across retries never double-counts.
            entry["steps"] += int(stage.get("steps") or 0)
            if stage.get("cache_hit"):
                entry["cache_hits"] += 1
    for entry in totals.values():
        entry["wall_seconds"] = round(entry["wall_seconds"], 6)
    return totals


def batch_main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    env = _worker_env()
    begun = time.monotonic()
    if args.jobs > 1:
        with ThreadPoolExecutor(max_workers=args.jobs) as pool:
            records = list(pool.map(
                lambda file: _run_program(args, env, file), args.files))
    else:
        records = [_run_program(args, env, file) for file in args.files]
    failed = [r for r in records if r["status"] != "ok"]
    summary = {
        "analysis": args.analysis,
        "solve_jobs": args.solve_jobs,
        "programs": len(records),
        "ok": len(records) - len(failed),
        "failed": len(failed),
        "wall_seconds": round(time.monotonic() - begun, 3),
        "stage_totals": _stage_totals(records),
        "results": records,
    }
    if args.output:
        atomic_write_json(args.output, summary)
    for record in records:
        marker = "ok" if record["status"] == "ok" else record["status"]
        attempts = len(record["attempts"])
        print(f"[{marker}] {record['file']} "
              f"({attempts} attempt{'s' if attempts != 1 else ''})")
    print(f"batch: {summary['ok']}/{summary['programs']} ok "
          f"in {summary['wall_seconds']}s")
    return 0 if not failed else 1


if __name__ == "__main__":
    sys.exit(batch_main())
