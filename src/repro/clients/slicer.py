"""Value-flow slicing over the SVFG (the paper's "program slicing" client).

A *backward slice* from an SVFG node collects every node whose value can
flow into it — along direct (top-level def-use) and indirect
(address-taken def-use) edges; a *forward slice* collects everything the
node's value can reach.  Slices answer questions like "which statements can
influence this dereference?" and are the basis of taint/impact analyses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Variable
from repro.svfg.builder import SVFG
from repro.svfg.nodes import InstNode, SVFGNode


class ValueFlowSlicer:
    """Forward/backward slicing over one SVFG."""

    def __init__(self, svfg: SVFG):
        self.svfg = svfg
        self.module = svfg.module
        # direct predecessor lists mirror svfg.direct_preds; indirect preds
        # are stored per node already.

    # ------------------------------------------------------------- resolve

    def _node_id(self, where: Union[int, Instruction, SVFGNode]) -> int:
        if isinstance(where, int):
            return where
        if isinstance(where, SVFGNode):
            return where.id
        node = self.svfg.inst_node.get(where)
        if node is None:
            raise KeyError(f"instruction l{where.id} has no SVFG node")
        return node.id

    def node_for_variable(self, var: Variable) -> Optional[int]:
        """The SVFG node defining *var*, if any."""
        return self.svfg.var_def_node.get(var.id)

    # --------------------------------------------------------------- slices

    def backward_slice(self, where: Union[int, Instruction, SVFGNode]) -> Set[int]:
        """Node ids whose values may flow into *where* (inclusive)."""
        start = self._node_id(where)
        seen = {start}
        stack = [start]
        while stack:
            node_id = stack.pop()
            preds = list(self.svfg.direct_preds[node_id])
            preds.extend(src for src, __ in self.svfg.ind_preds[node_id])
            for pred in preds:
                if pred not in seen:
                    seen.add(pred)
                    stack.append(pred)
        return seen

    def forward_slice(self, where: Union[int, Instruction, SVFGNode]) -> Set[int]:
        """Node ids that *where*'s value may flow into (inclusive)."""
        start = self._node_id(where)
        seen = {start}
        stack = [start]
        while stack:
            node_id = stack.pop()
            succs = list(self.svfg.direct_succs[node_id])
            for per_obj in self.svfg.ind_succs[node_id].values():
                succs.extend(per_obj)
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    # ------------------------------------------------------------ rendering

    def slice_instructions(self, node_ids: Set[int]) -> List[Instruction]:
        """The IR instructions inside a slice, in program order."""
        insts = [
            node.inst
            for node in map(self.svfg.nodes.__getitem__, node_ids)
            if isinstance(node, InstNode)
        ]
        return sorted(insts, key=lambda inst: inst.id)

    def describe(self, node_ids: Set[int]) -> str:
        from repro.ir.printer import format_instruction

        lines = []
        for inst in self.slice_instructions(node_ids):
            lines.append(f"@{inst.function.name} l{inst.id}: {format_instruction(inst)}")
        return "\n".join(lines)
