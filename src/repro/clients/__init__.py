"""Client analyses built on top of the points-to results.

The paper motivates points-to analysis as the substrate for "compiler
optimisation, vulnerability detection, program verification, and program
slicing"; this package provides working examples of each family:

- :mod:`repro.clients.aliases` — an alias-query oracle
  (may-alias, pointee sets, reverse points-to);
- :mod:`repro.clients.nullderef` — flow-sensitive detection of
  dereferences through possibly-null/uninitialised pointers, showing the
  precision gap between VSFS and the auxiliary analysis;
- :mod:`repro.clients.deadstore` — stores whose written values can never
  be observed by any load (value-flow reachability over the SVFG);
- :mod:`repro.clients.slicer` — forward/backward value-flow slicing over
  SVFG direct+indirect edges.
"""

from repro.clients.aliases import AliasOracle
from repro.clients.deadstore import DeadStoreReport, find_dead_stores
from repro.clients.nullderef import NullDerefReport, find_null_derefs
from repro.clients.slicer import ValueFlowSlicer

__all__ = [
    "AliasOracle",
    "DeadStoreReport",
    "find_dead_stores",
    "NullDerefReport",
    "find_null_derefs",
    "ValueFlowSlicer",
]
