"""Alias queries over a points-to result.

Wraps any result exposing ``pts_mask`` (Andersen, SFS, VSFS, ICFG-FS) in
the query API client analyses actually use: may-alias between variables,
pointee enumeration, and the reverse map from objects to the variables
that may point to them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.datastructs.bitset import count_bits, iter_bits
from repro.ir.module import Module
from repro.ir.values import MemObject, Variable


class AliasOracle:
    """Alias queries over one analysis result."""

    def __init__(self, module: Module, result):
        self.module = module
        self.result = result
        self._reverse: "Dict[int, List[Variable]] | None" = None

    # ---------------------------------------------------------------- queries

    def may_alias(self, a: Variable, b: Variable) -> bool:
        """May *a* and *b* point to a common object?"""
        return bool(self.result.pts_mask(a) & self.result.pts_mask(b))

    def pointees(self, var: Variable) -> Set[MemObject]:
        return {
            self.module.objects[oid]
            for oid in iter_bits(self.result.pts_mask(var))
        }

    def points_to_size(self, var: Variable) -> int:
        return count_bits(self.result.pts_mask(var))

    def is_null_like(self, var: Variable) -> bool:
        """True if the analysis found nothing *var* can point to."""
        return self.result.pts_mask(var) == 0

    def pointers_to(self, obj: MemObject) -> List[Variable]:
        """All top-level variables that may point to *obj*."""
        if self._reverse is None:
            reverse: Dict[int, List[Variable]] = {}
            for var in self.module.variables:
                for oid in iter_bits(self.result.pts_mask(var)):
                    reverse.setdefault(oid, []).append(var)
            self._reverse = reverse
        return self._reverse.get(obj.id, [])

    def alias_pairs(self, variables: Iterable[Variable]) -> List[Tuple[Variable, Variable]]:
        """All unordered may-alias pairs among *variables*."""
        pool = [v for v in variables if self.result.pts_mask(v)]
        pairs = []
        for i, a in enumerate(pool):
            mask_a = self.result.pts_mask(a)
            for b in pool[i + 1:]:
                if mask_a & self.result.pts_mask(b):
                    pairs.append((a, b))
        return pairs

    # ------------------------------------------------------------- aggregate

    def average_points_to_size(self) -> float:
        """Mean |pt(v)| over variables with non-empty sets — the standard
        client-facing precision metric (smaller = more precise)."""
        sizes = [
            count_bits(self.result.pts_mask(var))
            for var in self.module.variables
            if self.result.pts_mask(var)
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0
