"""Possibly-null / uninitialised pointer dereference detection.

A load or store whose pointer has an **empty** flow-sensitive points-to set
dereferences a pointer no allocation ever reached — a null or uninitialised
dereference on every path (modulo analysis over-approximation elsewhere,
this is the "definitely never valid" class of warnings).

Because the check is flow-sensitive, it catches use-before-init that the
auxiliary (flow-insensitive) analysis provably cannot: Andersen merges the
whole program, so any later initialisation hides an early bad dereference.
The report records both verdicts to expose that precision gap (the paper's
motivation for paying for flow-sensitivity at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.andersen import AndersenResult
from repro.ir.instructions import Instruction, LoadInst, StoreInst
from repro.ir.module import INIT_FUNCTION, Module
from repro.ir.printer import format_instruction
from repro.ir.values import Variable
from repro.solvers.base import FlowSensitiveResult


@dataclass
class NullDeref:
    """One warning: a dereference through a maybe-null pointer."""

    inst: Instruction
    pointer: Variable
    kind: str  # "load" | "store"
    flagged_by_auxiliary: bool  # Andersen also sees an empty set

    def describe(self) -> str:
        func = self.inst.function.name
        extra = "" if self.flagged_by_auxiliary else " (missed by flow-insensitive analysis)"
        return (f"@{func}: l{self.inst.id}: {self.kind} through {self.pointer!r} "
                f"which may be null/uninitialised{extra}: "
                f"`{format_instruction(self.inst)}`")


@dataclass
class NullDerefReport:
    warnings: List[NullDeref] = field(default_factory=list)

    def flow_sensitive_only(self) -> List[NullDeref]:
        """Warnings only the flow-sensitive analysis can produce."""
        return [w for w in self.warnings if not w.flagged_by_auxiliary]

    def __len__(self) -> int:
        return len(self.warnings)

    def __iter__(self):
        return iter(self.warnings)


def find_null_derefs(
    module: Module,
    fs_result: FlowSensitiveResult,
    andersen: Optional[AndersenResult] = None,
) -> NullDerefReport:
    """Scan every load/store for empty flow-sensitive pointer sets.

    Dereferences in ``__module_init__`` and in functions never reached by
    the (flow-sensitive) call graph are skipped — unreached code has empty
    sets for the wrong reason.
    """
    report = NullDerefReport()
    reached = {module.entry_function()}
    for __, callee in fs_result.callgraph.call_edges():
        reached.add(callee)

    for function in module.functions.values():
        if function.is_declaration or function.name == INIT_FUNCTION:
            continue
        if function not in reached:
            continue
        for inst in function.instructions():
            if isinstance(inst, LoadInst):
                ptr, kind = inst.ptr, "load"
            elif isinstance(inst, StoreInst):
                ptr, kind = inst.ptr, "store"
            else:
                continue
            if not isinstance(ptr, Variable):
                continue
            if fs_result.pts_mask(ptr) == 0:
                aux_empty = andersen is not None and andersen.pts_mask(ptr) == 0
                report.warnings.append(
                    NullDeref(inst, ptr, kind, flagged_by_auxiliary=aux_empty)
                )
    return report
