"""Dead-store detection via value-flow reachability.

A store is *observable* if some load (or the program's exit, through a
FormalOUT of a function whose effects escape) can consume the value it
writes.  On the SVFG this is plain graph reachability: follow indirect
(object-labelled) edges forward from the store; if no ``LOAD`` node is ever
reached, no execution can read what the store wrote — a dead store.

This client demonstrates the SVFG as an optimisation substrate (the
paper's "compiler optimisation" motivation): the same def-use edges that
make the points-to analysis sparse answer the classic dead-store question
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.instructions import LoadInst, StoreInst
from repro.ir.module import INIT_FUNCTION, Module
from repro.ir.printer import format_instruction
from repro.svfg.builder import SVFG
from repro.svfg.nodes import InstNode


@dataclass
class DeadStore:
    inst: StoreInst

    def describe(self) -> str:
        return (f"@{self.inst.function.name}: l{self.inst.id}: dead store "
                f"`{format_instruction(self.inst)}` — no load can observe it")


@dataclass
class DeadStoreReport:
    dead: List[DeadStore] = field(default_factory=list)
    observable: int = 0

    def __len__(self) -> int:
        return len(self.dead)

    def __iter__(self):
        return iter(self.dead)


def _reaches_a_load(svfg: SVFG, start: int, cache: Dict[int, bool]) -> bool:
    """Can any LOAD node be reached from *start* along indirect edges?"""
    stack = [start]
    seen: Set[int] = {start}
    trail: List[int] = []
    while stack:
        node_id = stack.pop()
        known = cache.get(node_id)
        if known is True:
            for visited in trail:
                cache[visited] = True
            return True
        if known is False:
            continue
        trail.append(node_id)
        node = svfg.nodes[node_id]
        if node_id != start and isinstance(node, InstNode) and isinstance(node.inst, LoadInst):
            for visited in trail:
                cache[visited] = True
            return True
        for succs in svfg.ind_succs[node_id].values():
            for succ in succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
    for visited in trail:
        # Unreached-from-here nodes may still reach loads via paths we did
        # not walk from them; only the start is conclusively negative.
        pass
    cache[start] = False
    return False


def find_dead_stores(module: Module, svfg: SVFG) -> DeadStoreReport:
    """Classify every store (outside ``__module_init__``) as dead/observable.

    Uses the *potential* (Andersen-derived) SVFG, so "dead" means dead under
    every resolution of the call graph — a sound claim.
    """
    report = DeadStoreReport()
    cache: Dict[int, bool] = {}
    for node in svfg.nodes:
        if not isinstance(node, InstNode) or not isinstance(node.inst, StoreInst):
            continue
        if node.function is not None and node.function.name == INIT_FUNCTION:
            continue
        if _reaches_a_load(svfg, node.id, cache):
            report.observable += 1
        else:
            report.dead.append(DeadStore(node.inst))
    return report
