"""Stored solutions and warm re-solve planning.

The incremental spine stores one solved program per ``(analysis, delta,
ptrepo)`` configuration — latest-solution semantics, like a build cache.
A stored solution is written entirely in the **stable entity-key spaces**
of :mod:`repro.ir.fingerprint` (object keys, variable keys, node keys),
never dense ids, so it can be replayed onto a freshly compiled module
whose dense numbering moved.

:func:`plan_warm` turns a stored solution plus a new substrate into a
:class:`WarmPlan`: the dirty closure of the edit (per-function
fingerprints → region digests → old-graph shrink closure → node-level
BFS over the new graph),
the top-level and memory values of every *clean* region remapped into
new ids, the indirect-edge boundary values flowing from clean into dirty
regions, and the worklist seeds that make the staged solvers recompute
exactly the dirty regions.  Anything the planner cannot prove safe
(scheme mismatch, configuration mismatch, a clean value referencing an
object the new substrate does not have) degrades to a cold solve with a
typed ``fallback_reason`` — never to a wrong warm one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Set

from repro.datastructs.bitset import iter_bits
from repro.errors import CheckpointError
from repro.incremental.deps import node_dirty_closure
from repro.incremental.regions import region_digests
from repro.ir.fingerprint import (
    FINGERPRINT_SCHEME,
    module_fingerprint,
    module_function_fingerprints,
    node_keys,
    object_keys,
    variable_keys,
)
from repro.ir.instructions import CallInst
from repro.store.atomic import (
    dec_mask_list,
    enc_mask_list,
    quarantine_file,
    read_sealed_json,
    write_sealed_json,
)
from repro.svfg.nodes import InstNode

INCREMENTAL_KIND = "incremental-solution"
INCREMENTAL_SCHEMA = 1


# ------------------------------------------------------------------- stats

@dataclass
class IncrStats:
    """What the warm path did — surfaced in reports, traces and benches."""

    analysis: str = ""
    dirty_functions: List[str] = dataclass_field(default_factory=list)
    regions_total: int = 0
    regions_reused: int = 0
    regions_recomputed: int = 0
    nodes_total: int = 0
    nodes_dirty: int = 0
    cold_steps_baseline: int = 0
    warm_steps: int = 0
    steps_saved: int = 0
    fallback_reason: Optional[str] = None

    def finish(self, warm_steps: int) -> None:
        """Stamp the realised step counts once the warm solve finished."""
        self.warm_steps = int(warm_steps)
        self.steps_saved = max(0, self.cold_steps_baseline - self.warm_steps)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "analysis": self.analysis,
            "dirty_functions": list(self.dirty_functions),
            "regions_total": self.regions_total,
            "regions_reused": self.regions_reused,
            "regions_recomputed": self.regions_recomputed,
            "nodes_total": self.nodes_total,
            "nodes_dirty": self.nodes_dirty,
            "cold_steps_baseline": self.cold_steps_baseline,
            "warm_steps": self.warm_steps,
            "steps_saved": self.steps_saved,
            "fallback_reason": self.fallback_reason,
        }


# -------------------------------------------------------------------- plan

@dataclass
class WarmPlan:
    """Everything a staged solver needs to re-solve only dirty regions.

    All ids are dense ids of the *new* module/SVFG.  ``node_in`` /
    ``node_out`` cover clean-region nodes only; ``boundary`` holds the
    indirect-edge values a dirty node receives from clean predecessors
    (SFS joins them into its IN maps; VSFS derives its own boundary from
    version constraints instead).  A plan with a ``fallback_reason`` is
    *not* applied — it only carries the reason into the run report.
    """

    analysis: str
    delta: bool
    ptrepo: bool
    dirty_functions: Set[str] = dataclass_field(default_factory=set)
    pt_preload: Dict[int, int] = dataclass_field(default_factory=dict)
    node_in: Dict[int, Dict[int, int]] = dataclass_field(default_factory=dict)
    node_out: Dict[int, Dict[int, int]] = dataclass_field(default_factory=dict)
    boundary: Dict[int, Dict[int, int]] = dataclass_field(default_factory=dict)
    seed_nodes: List[int] = dataclass_field(default_factory=list)
    call_nodes: List[int] = dataclass_field(default_factory=list)
    stats: IncrStats = dataclass_field(default_factory=IncrStats)
    fallback_reason: Optional[str] = None

    @property
    def usable(self) -> bool:
        return self.fallback_reason is None


# ----------------------------------------------------------------- capture

def build_payload(svfg, modref, result, node_in, node_out, flow,
                  analysis: str, delta: bool, ptrepo: bool,
                  andersen=None) -> Dict[str, Any]:
    """Encode a finished solve as a warm-start payload (JSON-clean).

    *svfg* must be the **substrate** graph (as built, before the solver's
    on-the-fly edges) — region digests are compared against plan-time
    digests computed on the other side's substrate.  *node_in* /
    *node_out* come from ``solver.export_node_memory()`` and *flow*
    from ``node_flow_graph`` over the solver's *solved* copy (which has
    every on-the-fly edge wired in).
    """
    module = svfg.module
    digests = region_digests(svfg, modref, andersen)
    return {
        "fp_scheme": FINGERPRINT_SCHEME,
        "analysis": analysis,
        "delta": bool(delta),
        "ptrepo": bool(ptrepo),
        "module_fp": module_fingerprint(module),
        "function_fps": module_function_fingerprints(module),
        "region_digests": digests,
        "flow": {str(nid): list(succs) for nid, succs in flow.items()},
        "object_keys": object_keys(module),
        "variable_keys": variable_keys(module),
        "node_keys": node_keys(svfg),
        "pt": enc_mask_list(result._pt),
        "node_in": {
            str(nid): {str(oid): format(mask, "x")
                       for oid, mask in table.items()}
            for nid, table in node_in.items()
        },
        "node_out": {
            str(nid): {str(oid): format(mask, "x")
                       for oid, mask in table.items()}
            for nid, table in node_out.items()
        },
        "steps": int(result.stats.nodes_processed),
    }


# ------------------------------------------------------------------- store

class IncrementalStore:
    """Latest-solution slots, one per solver configuration.

    With a *directory* the slots are sealed JSON documents under
    ``<directory>/warm-{analysis}-d{δ}p{π}.json``; without one (the
    service's default) they live in memory.  :meth:`load` refuses — with
    a typed :class:`CheckpointError`, quarantining the file — any
    payload minted under a different fingerprint scheme, so
    pre-refactor entries can never be silently replayed.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory
        self._memory: Dict[str, Dict[str, Any]] = {}

    @staticmethod
    def slot(analysis: str, delta: bool, ptrepo: bool) -> str:
        return f"warm-{analysis}-d{int(bool(delta))}p{int(bool(ptrepo))}"

    def _path(self, slot: str) -> str:
        return os.path.join(self.directory, slot + ".json")

    def save(self, payload: Dict[str, Any]) -> Optional[str]:
        slot = self.slot(payload["analysis"], payload["delta"],
                         payload["ptrepo"])
        if self.directory is None:
            self._memory[slot] = payload
            return None
        os.makedirs(self.directory, exist_ok=True)
        meta = {
            "analysis": payload["analysis"],
            "delta": payload["delta"],
            "ptrepo": payload["ptrepo"],
            "fp_scheme": payload["fp_scheme"],
            "module_fp": payload["module_fp"],
        }
        path = self._path(slot)
        write_sealed_json(path, INCREMENTAL_KIND, INCREMENTAL_SCHEMA,
                          meta, payload)
        return path

    def load(self, analysis: str, delta: bool,
             ptrepo: bool) -> Optional[Dict[str, Any]]:
        """Stored payload for this configuration, or ``None`` if absent.

        Raises :class:`CheckpointError` (after quarantining the slot) on
        corruption or a fingerprint-scheme mismatch.
        """
        slot = self.slot(analysis, delta, ptrepo)
        if self.directory is None:
            payload = self._memory.get(slot)
            if payload is None:
                return None
            if payload.get("fp_scheme") != FINGERPRINT_SCHEME:
                self._memory.pop(slot, None)
                raise CheckpointError(
                    f"stale incremental solution in slot {slot!r}: "
                    f"fingerprint scheme {payload.get('fp_scheme')!r} != "
                    f"{FINGERPRINT_SCHEME}", reason="schema")
            return payload
        path = self._path(slot)
        if not os.path.exists(path):
            return None
        try:
            meta, payload = read_sealed_json(
                path, INCREMENTAL_KIND, INCREMENTAL_SCHEMA)
        except CheckpointError:
            quarantine_file(path)
            raise
        if (meta.get("fp_scheme") != FINGERPRINT_SCHEME
                or payload.get("fp_scheme") != FINGERPRINT_SCHEME):
            quarantined = quarantine_file(path)
            raise CheckpointError(
                f"stale incremental solution at {quarantined}: fingerprint "
                f"scheme {meta.get('fp_scheme')!r} != {FINGERPRINT_SCHEME}",
                reason="schema")
        return payload


# ---------------------------------------------------------------- planning

class _PlanFallback(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _decode_node_table(encoded: Dict[str, Dict[str, str]]
                       ) -> Dict[int, Dict[int, int]]:
    return {
        int(nid): {int(oid): int(mask, 16) for oid, mask in table.items()}
        for nid, table in encoded.items()
    }


def plan_warm(payload: Dict[str, Any], svfg, modref, analysis: str,
              delta: bool, ptrepo: bool, andersen=None) -> WarmPlan:
    """Plan a warm re-solve of *svfg* from a stored *payload*.

    Always returns a plan; one with ``fallback_reason`` set means "solve
    cold, and say why".  See the module docstring for the pipeline.
    """
    stats = IncrStats(analysis=analysis,
                      cold_steps_baseline=int(payload.get("steps", 0)))
    plan = WarmPlan(analysis=analysis, delta=bool(delta),
                    ptrepo=bool(ptrepo), stats=stats)

    def fallback(reason: str) -> WarmPlan:
        plan.fallback_reason = reason
        stats.fallback_reason = reason
        return plan

    if payload.get("fp_scheme") != FINGERPRINT_SCHEME:
        return fallback("scheme")
    if (payload.get("analysis") != analysis
            or bool(payload.get("delta")) != bool(delta)
            or bool(payload.get("ptrepo")) != bool(ptrepo)):
        return fallback("config")

    module = svfg.module
    andersen = andersen if andersen is not None else svfg.andersen

    # 1. Function-level diff, then the region-digest backstop.
    new_fps = module_function_fingerprints(module)
    old_fps = payload.get("function_fps", {})
    changed = {n for n, fp in new_fps.items() if n in old_fps
               and old_fps[n] != fp}
    added = set(new_fps) - set(old_fps)
    deleted = set(old_fps) - set(new_fps)

    new_digests = region_digests(svfg, modref, andersen)
    old_digests = payload.get("region_digests", {})
    mismatched = {n for n, d in new_digests.items()
                  if old_digests.get(n) != d}

    # 2. Entity maps: old dense id -> new dense id via stable keys.
    new_okeys = object_keys(module)
    new_vkeys = variable_keys(module)
    new_nkeys = node_keys(svfg)
    oid_by_key = {key: oid for oid, key in enumerate(new_okeys)}
    vid_by_key = {key: vid for vid, key in enumerate(new_vkeys)}
    nid_by_key = {key: nid for nid, key in enumerate(new_nkeys)}
    old_okeys = payload.get("object_keys", [])
    old_vkeys = payload.get("variable_keys", [])
    old_nkeys = payload.get("node_keys", [])
    obj_map = [oid_by_key.get(key) for key in old_okeys]
    var_map = [vid_by_key.get(key) for key in old_vkeys]
    node_map = [nid_by_key.get(key) for key in old_nkeys]

    # 3. Shrink closure over the *old* solved flow graph, node-granular:
    # every old value downstream of an edited-away flow may shrink, so
    # its node (where it still exists) must recompute — and, fed into
    # the new-graph closure below, so must everything it feeds now.
    old_flow = {int(nid): succs
                for nid, succs in payload.get("flow", {}).items()}
    shrink_sources = changed | deleted
    old_frontier = [nid for nid, key in enumerate(old_nkeys)
                    if key.split("#", 1)[0] in shrink_sources]
    old_reached = set(old_frontier)
    while old_frontier:
        nid = old_frontier.pop()
        for succ in old_flow.get(nid, ()):
            if succ not in old_reached:
                old_reached.add(succ)
                old_frontier.append(succ)
    may_shrink = {node_map[nid] for nid in old_reached
                  if nid < len(node_map) and node_map[nid] is not None}

    # 4. New-graph dirty closure.  Seeds: every node of an added or
    # content-changed function, the mapped may-shrink nodes, and every
    # new node without an old counterpart (a structurally new
    # computation — e.g. a freshly threaded actual-in/out chain — whose
    # value nobody captured).  Digest-mismatched functions recompute as
    # regions but do NOT seed wholesale: their unchanged code recomputes
    # the same outputs from preloaded inputs, so dirtiness spreads out
    # of them only along the structurally-new or shrinking value flows
    # seeded here.
    old_key_set = set(old_nkeys)
    seed_nodes = set(may_shrink)
    seed_nodes.update(nid for nid, key in enumerate(new_nkeys)
                      if key not in old_key_set)
    dirty_nodes, dirty_fns = node_dirty_closure(
        svfg, changed | added, andersen, seed_nodes=seed_nodes)
    dirty_fns |= mismatched

    stats.dirty_functions = sorted(dirty_fns)
    stats.regions_total = len(new_digests)
    stats.regions_recomputed = len(dirty_fns & set(new_digests))
    stats.regions_reused = stats.regions_total - stats.regions_recomputed
    stats.nodes_total = len(svfg.nodes)
    stats.nodes_dirty = len(dirty_nodes)
    plan.dirty_functions = dirty_fns

    nodes = svfg.nodes

    def owner(nid: int) -> str:
        fn = nodes[nid].function
        return fn.name if fn is not None else ""

    def clean(nid: int) -> bool:
        # Nodes of dirty functions recompute wholesale (region
        # granularity), even the ones the BFS did not reach.
        return nid not in dirty_nodes and owner(nid) not in dirty_fns

    def remap_mask(mask: int) -> int:
        out = 0
        for oid in iter_bits(mask):
            new_oid = obj_map[oid] if 0 <= oid < len(obj_map) else None
            if new_oid is None:
                # A clean value naming an object the new substrate lacks:
                # typically a field object materialised mid-solve last
                # time.  Replaying it cannot be proven id-stable here.
                raise _PlanFallback("unmapped-object")
            out |= 1 << new_oid
        return out

    try:
        # 4. Top-level preload: variables defined in clean regions.
        old_pt = dec_mask_list(payload.get("pt", []))
        for old_vid, mask in enumerate(old_pt):
            if not mask:
                continue
            new_vid = var_map[old_vid] if old_vid < len(var_map) else None
            if new_vid is None:
                continue  # its defining function was edited away — dirty
            def_nid = svfg.var_def_node.get(new_vid)
            if def_nid is None or not clean(def_nid):
                continue  # the dirty re-solve recomputes it
            plan.pt_preload[new_vid] = remap_mask(mask)

        # 5. Memory preload: IN/OUT of clean-region nodes.
        for old_nid, table in _decode_node_table(
                payload.get("node_in", {})).items():
            new_nid = node_map[old_nid] if old_nid < len(node_map) else None
            if new_nid is None or not clean(new_nid):
                continue
            plan.node_in[new_nid] = {}
            for oid, mask in table.items():
                new_oid = obj_map[oid] if 0 <= oid < len(obj_map) else None
                if new_oid is None:
                    raise _PlanFallback("unmapped-object")
                plan.node_in[new_nid][new_oid] = remap_mask(mask)
        for old_nid, table in _decode_node_table(
                payload.get("node_out", {})).items():
            new_nid = node_map[old_nid] if old_nid < len(node_map) else None
            if new_nid is None or not clean(new_nid):
                continue
            plan.node_out[new_nid] = {}
            for oid, mask in table.items():
                new_oid = obj_map[oid] if 0 <= oid < len(obj_map) else None
                if new_oid is None:
                    raise _PlanFallback("unmapped-object")
                plan.node_out[new_nid][new_oid] = remap_mask(mask)
    except _PlanFallback as exc:
        plan.pt_preload.clear()
        plan.node_in.clear()
        plan.node_out.clear()
        return fallback(exc.reason)

    # 6. Boundary: values a dirty node receives over *static* indirect
    # edges from clean predecessors.  (On-the-fly edges re-deliver theirs
    # when the clean call sites are reprocessed.)
    for nid in dirty_nodes:
        for pred, oid in svfg.ind_preds[nid]:
            table = plan.node_out.get(pred)
            mask = table.get(oid) if table else None
            if mask is None:
                table = plan.node_in.get(pred)
                mask = table.get(oid) if table else None
            if mask:
                bucket = plan.boundary.setdefault(nid, {})
                bucket[oid] = bucket.get(oid, 0) | mask

    # 7. Seeds.  Rule-bearing instruction nodes of every dirty region
    # (exactly what a cold _seed would push there), plus dirty memory
    # nodes receiving boundary values, plus dirty uses of preloaded
    # variables (the pushes set_pt growth would have produced), plus any
    # reached node outside function ownership.
    from repro.solvers.base import StagedSolverBase
    seed: Set[int] = set()
    regions = svfg.nodes_by_function()
    seed_types = StagedSolverBase.SEED_TYPES
    for name in dirty_fns:
        for nid in regions.get(name, ()):
            node = nodes[nid]
            if isinstance(node, InstNode) and isinstance(node.inst,
                                                         seed_types):
                seed.add(nid)
    seed.update(plan.boundary)
    for vid in plan.pt_preload:
        for use_nid in svfg.var_uses.get(vid, ()):
            if not clean(use_nid):
                seed.add(use_nid)
    for nid in dirty_nodes:
        if owner(nid) == "":
            seed.add(nid)
    plan.seed_nodes = sorted(seed)

    # 8. Clean call sites are reprocessed so every on-the-fly call edge
    # (and the memory/return flow it carries) is rediscovered; their
    # preloaded values make this replay, not recomputation.
    plan.call_nodes = sorted(
        node.id for inst, node in svfg.inst_node.items()
        if isinstance(inst, CallInst) and clean(node.id))
    return plan
