"""Per-function region digests over the analysis substrate.

A function's content hash says its *own text* is unchanged; it cannot say
the analysis substrate under it is unchanged — memory-SSA annotations
depend on callees' mod/ref sets, the SVFG's node sequence depends on
those annotations, and the auxiliary (Andersen) sets feeding indirect
resolution are whole-program.  The region digest closes that gap: it
hashes everything the solvers consult about a function's region —

- the function's own content fingerprint,
- its mod/ref masks,
- its node sequence (kind, instruction kind, annotated object),
- its **incoming** edge structure (direct and indirect),
- the auxiliary points-to sets of its variables,

all expressed in the **stable key spaces** of :mod:`repro.ir.fingerprint`
(never dense ids), so a digest compares meaningfully across rebuilds of
an edited module.  A nominally-clean function whose digest moved is
promoted to dirty — the backstop that catches Andersen/mod-ref ripples a
pure fingerprint diff would miss.

Edges are hashed on the *incoming* side deliberately: a region's values
depend on its inputs, not on who consumes its outputs.  When an edit
adds a new consumer of an untouched producer (say, a sibling starts
reading a global the producer initialises), the producer's region and
values are unaffected — only the consumer must recompute.  Hashing
outgoing edges would dirty the producer, and with it (by forward
closure) everything downstream, destroying selectivity.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.datastructs.bitset import iter_bits
from repro.ir.fingerprint import (
    function_fingerprint,
    node_keys,
    object_keys,
    variable_keys,
)
from repro.svfg.nodes import InstNode


def _mask_keys(mask: int, okeys: List[str]) -> List[str]:
    return sorted(okeys[oid] if 0 <= oid < len(okeys) else f"oid:{oid}"
                  for oid in iter_bits(mask))


def region_digests(svfg, modref, andersen=None) -> Dict[str, str]:
    """One substrate digest per function owning SVFG nodes.

    Deterministic (canonical JSON, sorted where order is not content)
    and computed over the *built* substrate graph — never a solver's
    OTF-mutated copy — so capture-time and plan-time digests compare.
    """
    module = svfg.module
    andersen = andersen if andersen is not None else svfg.andersen
    okeys = object_keys(module)
    vkeys = variable_keys(module)
    nkeys = node_keys(svfg)
    nodes = svfg.nodes

    direct_preds: List[List[int]] = [[] for _ in nodes]
    for src in range(len(nodes)):
        for dst in svfg.direct_succs[src]:
            direct_preds[dst].append(src)

    # Variables owned by each function (locals key as ``v:<fn>:<ord>``).
    vars_by_fn: Dict[str, List[int]] = {}
    for vid, key in enumerate(vkeys):
        if key.startswith("v:"):
            vars_by_fn.setdefault(key.split(":", 2)[1], []).append(vid)

    digests: Dict[str, str] = {}
    for name, nids in svfg.nodes_by_function().items():
        if not name:
            continue
        function = module.functions.get(name)
        if function is None:
            continue
        sequence = []
        edges = []
        for nid in nids:
            node = nodes[nid]
            kind = type(node).__name__
            if isinstance(node, InstNode):
                detail = type(node.inst).__name__
            else:
                obj = getattr(node, "obj", None)
                detail = okeys[obj.id] if obj is not None else ""
            sequence.append([kind, detail])
            edges.append([
                nkeys[nid],
                sorted(nkeys[src] for src in direct_preds[nid]),
                sorted(
                    [okeys[oid], nkeys[src]]
                    for src, oid in svfg.ind_preds[nid]
                ),
            ])
        aux = {
            vkeys[vid]: _mask_keys(andersen.pts_mask(module.variables[vid]),
                                   okeys)
            for vid in vars_by_fn.get(name, ())
        }
        record = {
            "fp": function_fingerprint(function),
            "mod": _mask_keys(modref.mod.get(function, 0), okeys),
            "ref": _mask_keys(modref.ref.get(function, 0), okeys),
            "nodes": sequence,
            "edges": edges,
            "aux": aux,
        }
        text = json.dumps(record, sort_keys=True, separators=(",", ":"))
        digests[name] = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return digests
