"""Function-granular incremental invalidation (DESIGN.md §14).

The unit of invalidation is the **function**, not the module: the IR
layer hashes every function independently
(:mod:`repro.ir.fingerprint`), the dependency map
(:mod:`repro.incremental.deps`) grows an edit into its *dirty closure*,
per-function region digests (:mod:`repro.incremental.regions`) certify
that a nominally-clean region's analysis substrate really is unchanged,
and :mod:`repro.incremental.solution` stores one solved program in a
stable entity-key space so a warm re-solve can retract and reseed only
the dirty regions — verified bit-identical to a cold run.
"""

from repro.incremental.deps import (
    DependencyMap,
    node_dirty_closure,
    node_flow_graph,
    potential_call_adjacency,
)
from repro.incremental.regions import region_digests
from repro.incremental.solution import (
    IncrStats,
    IncrementalStore,
    WarmPlan,
    build_payload,
    plan_warm,
)

__all__ = [
    "DependencyMap",
    "IncrStats",
    "IncrementalStore",
    "WarmPlan",
    "build_payload",
    "node_dirty_closure",
    "node_flow_graph",
    "plan_warm",
    "potential_call_adjacency",
    "region_digests",
]
