"""Dependency maps: growing an edited function into its dirty closure.

Two granularities:

- :class:`DependencyMap` is the *function-level* map the tentpole names —
  call-graph edges (both directions: parameters/memory flow in, return
  values/memory flow out) plus mod/ref overlap (``f`` writes an object
  ``g`` reads).  Its :meth:`~DependencyMap.dirty_closure` is **monotone**:
  closures only grow as edges or seeds are added — the property the
  hypothesis suite pins down.

- :func:`node_dirty_closure` is the *node-level* refinement the warm
  planner actually uses: a forward BFS over the new SVFG (direct +
  indirect edges) extended with :func:`potential_call_adjacency` — the
  interprocedural edges on-the-fly call-graph resolution *would* wire in,
  synthesised from the auxiliary (Andersen) resolution, so nothing the
  solver could later connect escapes the closure.  Projected onto
  function regions it is never coarser than the function-level closure,
  and often finer (a callee whose only link back to its caller is a
  return value nobody binds stays clean).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datastructs.bitset import iter_bits
from repro.ir.function import Function
from repro.ir.instructions import CallInst
from repro.ir.module import Module
from repro.ir.values import FunctionObject


def _call_targets(call: CallInst, module: Module, andersen) -> List[Function]:
    """Possible callees of *call*: static target, or the auxiliary
    resolution of the callee pointer for indirect sites."""
    if not call.is_indirect():
        callee = call.callee
        return [callee] if isinstance(callee, Function) else []
    if andersen is None:
        return []
    targets: List[Function] = []
    for oid in iter_bits(andersen.pts_mask(call.callee)):
        obj = module.objects[oid]
        if isinstance(obj, FunctionObject):
            targets.append(obj.function)
    return targets


class DependencyMap:
    """Function-level dependency edges with a monotone forward closure."""

    def __init__(self, edges: Optional[Dict[str, Set[str]]] = None):
        self.edges: Dict[str, Set[str]] = {
            name: set(succs) for name, succs in (edges or {}).items()}

    def add_edge(self, src: str, dst: str) -> None:
        self.edges.setdefault(src, set()).add(dst)
        self.edges.setdefault(dst, set())

    @classmethod
    def from_module(cls, module: Module, andersen=None,
                    modref=None) -> "DependencyMap":
        """Build the map from call sites and (optionally) mod/ref masks.

        Call edges run both ways: a caller feeds its callee (arguments,
        memory in), and a callee feeds its caller (return value, memory
        out).  With *modref*, ``f → g`` is added whenever ``f`` may write
        an object ``g`` may read or write.
        """
        dep = cls()
        functions = list(module.functions.values())
        for fn in functions:
            dep.edges.setdefault(fn.name, set())
            for block in fn.blocks:
                for inst in block.instructions:
                    if not isinstance(inst, CallInst):
                        continue
                    for callee in _call_targets(inst, module, andersen):
                        dep.add_edge(fn.name, callee.name)
                        dep.add_edge(callee.name, fn.name)
        if modref is not None:
            for f in functions:
                mod = modref.mod.get(f, 0)
                if not mod:
                    continue
                for g in functions:
                    if g is f:
                        continue
                    if mod & (modref.mod.get(g, 0) | modref.ref.get(g, 0)):
                        dep.add_edge(f.name, g.name)
        return dep

    def dirty_closure(self, seeds: Iterable[str]) -> Set[str]:
        """Forward reachability from *seeds* (seeds included).

        Monotone in both arguments: adding a seed or an edge can only
        grow the result, and ``f → g`` with ``f`` dirty forces ``g``
        dirty — the invariants the property tests assert.
        """
        dirty: Set[str] = set(seeds)
        frontier = list(dirty)
        while frontier:
            name = frontier.pop()
            for succ in self.edges.get(name, ()):
                if succ not in dirty:
                    dirty.add(succ)
                    frontier.append(succ)
        return dirty


# ------------------------------------------------------- node-level closure

def potential_call_adjacency(svfg, andersen=None) -> Dict[int, List[int]]:
    """Extra forward edges OTF call-graph resolution could create.

    For every call site and every auxiliary-resolvable callee:
    ``call → entry`` (parameter binding), ``exit → call`` when the call
    binds a result, and the ``actual-in → formal-in`` /
    ``formal-out → actual-out`` μ/χ pairs for objects both sides
    annotate.  Direct calls are wired at build time already; re-listing
    them is harmless (the BFS dedups).
    """
    module = svfg.module
    andersen = andersen if andersen is not None else svfg.andersen
    extra: Dict[int, List[int]] = {}

    def add(src: int, dst: int) -> None:
        extra.setdefault(src, []).append(dst)

    for inst, node in svfg.inst_node.items():
        if not isinstance(inst, CallInst):
            continue
        for callee in _call_targets(inst, module, andersen):
            if callee.is_declaration:
                continue
            entry = svfg.inst_node.get(callee.entry_inst)
            if entry is not None:
                add(node.id, entry.id)
            exit_inst = callee.exit_inst()
            if exit_inst is not None and inst.dst is not None:
                add(svfg.inst_node[exit_inst].id, node.id)
            fin_table = svfg.formal_in.get(callee, {})
            for oid, ain in svfg.actual_in.get(inst, {}).items():
                fin = fin_table.get(oid)
                if fin is not None:
                    add(ain, fin)
            fout_table = svfg.formal_out.get(callee, {})
            for oid, aout in svfg.actual_out.get(inst, {}).items():
                fout = fout_table.get(oid)
                if fout is not None:
                    add(fout, aout)
    return extra


def node_dirty_closure(svfg, seed_functions: Iterable[str], andersen=None,
                       seed_nodes: Iterable[int] = ()
                       ) -> Tuple[Set[int], Set[str]]:
    """Forward BFS from every node of *seed_functions* (plus any extra
    *seed_nodes*) over the SVFG.

    Follows direct edges, indirect edges (all objects), and
    :func:`potential_call_adjacency`.  Returns ``(reached node ids,
    dirty function names)`` where the dirty set is the seeds plus every
    function owning a reached node — the regions a warm re-solve must
    recompute.
    """
    regions = svfg.nodes_by_function()
    seeds = set(seed_functions)
    extra = potential_call_adjacency(svfg, andersen)
    frontier: List[int] = []
    reached: Set[int] = set()

    def enqueue(nid: int) -> None:
        if nid not in reached:
            reached.add(nid)
            frontier.append(nid)

    for name in seeds:
        for nid in regions.get(name, ()):
            enqueue(nid)
    for nid in seed_nodes:
        enqueue(nid)
    direct_succs = svfg.direct_succs
    ind_succs = svfg.ind_succs
    while frontier:
        nid = frontier.pop()
        for dst in direct_succs[nid]:
            if dst not in reached:
                reached.add(dst)
                frontier.append(dst)
        for dsts in ind_succs[nid].values():
            for dst in dsts:
                if dst not in reached:
                    reached.add(dst)
                    frontier.append(dst)
        for dst in extra.get(nid, ()):
            if dst not in reached:
                reached.add(dst)
                frontier.append(dst)
    dirty = set(seeds)
    nodes = svfg.nodes
    for nid in reached:
        fn = nodes[nid].function
        dirty.add(fn.name if fn is not None else "")
    dirty.discard("")
    return reached, dirty


def node_flow_graph(svfg) -> Dict[int, List[int]]:
    """Forward node adjacency of a (solved) SVFG — direct and indirect.

    Captured alongside a stored solution.  At plan time the forward
    closure of the *changed or deleted* functions' old nodes over this
    graph identifies every old value that may have depended on flows the
    edit removed — values that could **shrink**, which the new-graph
    closure alone cannot see.  Node-granular on purpose: projecting to
    functions first would let one dirty value anywhere in a big caller
    taint everything the caller touches.
    """
    graph: Dict[int, List[int]] = {}
    for nid in range(len(svfg.nodes)):
        succs = set(svfg.direct_succs[nid])
        for dsts in svfg.ind_succs[nid].values():
            succs.update(dsts)
        succs.discard(nid)
        if succs:
            graph[nid] = sorted(succs)
    return graph


def function_flow_graph(svfg) -> Dict[str, List[str]]:
    """Function-level projection of a (solved) SVFG's edges.

    Captured alongside a stored solution: at plan time the forward
    closure of the *changed or deleted* functions over this old-graph
    projection identifies everything whose old value may have depended
    on flows the edit removed — values that could **shrink**, which the
    new-graph closure alone cannot see.
    """
    nodes = svfg.nodes
    edges: Dict[str, Set[str]] = {}

    def name_of(nid: int) -> str:
        fn = nodes[nid].function
        return fn.name if fn is not None else ""

    for nid in range(len(nodes)):
        src = name_of(nid)
        bucket = edges.setdefault(src, set())
        for dst in svfg.direct_succs[nid]:
            bucket.add(name_of(dst))
        for dsts in svfg.ind_succs[nid].values():
            for dst in dsts:
                bucket.add(name_of(dst))
    return {src: sorted(dsts - {src, ""})
            for src, dsts in edges.items() if src}
