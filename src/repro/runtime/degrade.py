"""Graceful degradation: budgets and faults cost precision, never answers.

The ladder runs the requested analysis and, when a rung fails with a typed
:class:`~repro.errors.ReproError` (budget exhaustion, an injected fault, a
solver inconsistency) or a ``MemoryError``, retries on the next, cheaper
rung instead of crashing::

    vsfs  →  sfs  →  andersen
    sfs   →  andersen
    icfg-fs → andersen
    ander →  andersen

Soundness by construction: every rung is a sound may-analysis of the same
program, and each is at most as precise as the one below it — so degrading
returns a *superset* of the points-to sets the precise run would have
produced, never a wrong answer.  The final Andersen rung is the staging
analysis the flow-sensitive solvers are built on (it already ran to
completion as their auxiliary analysis), which is why it can serve as the
unconditional floor: when fallback is enabled the last rung runs
ungoverned and fault-free, guaranteeing an answer even under a zero
budget.

One :class:`~repro.runtime.budget.BudgetMeter` spans all rungs, so the
budget caps the whole governed run, not each attempt.  Partial solver
state abandoned by a failed rung is *never* reused — a partial fixpoint
under-approximates and would be unsound; it is kept only on the exception
for diagnostics.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.analysis.andersen import AndersenResult
from repro.datastructs.bitset import count_bits
from repro.errors import AnalysisError, ReproError
from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.diagnostics import RunReport
from repro.solvers.base import FlowSensitiveResult, SolverStats

#: Ladder per requested analysis, most precise first.
LADDERS = {
    "vsfs": ("vsfs", "sfs", "andersen"),
    "sfs": ("sfs", "andersen"),
    "icfg-fs": ("icfg-fs", "andersen"),
    "ander": ("andersen",),
}

#: A rung: (precision level, thunk taking the shared meter — or None for
#: the ungoverned floor — and returning a result).
Rung = Tuple[str, Callable[[Optional[BudgetMeter]], object]]


def andersen_as_flow_sensitive(andersen: AndersenResult,
                               degraded_from: Optional[str] = None) -> FlowSensitiveResult:
    """Repackage an Andersen result in the flow-sensitive result shape.

    Sound by construction: Andersen is the staging analysis, so its sets
    are supersets of what SFS/VSFS would compute.  The synthesised result
    answers the same ``points_to``/``may_alias``/``snapshot`` API, letting
    budget-exhausted callers keep working at reduced precision.
    """
    module = andersen.module
    pt = [0] * len(module.variables)
    for var in module.variables:
        if 0 <= var.id < len(pt):
            pt[var.id] = andersen.pts_mask(var)
    stats = SolverStats(
        analysis="andersen",
        solve_time=andersen.stats.solve_time,
        callgraph_edges=andersen.callgraph.num_edges(),
        top_level_bits=sum(count_bits(mask) for mask in pt),
    )
    return FlowSensitiveResult(module, pt, andersen.callgraph, stats,
                               precision_level="andersen",
                               degraded_from=degraded_from)


def run_ladder(rungs: Sequence[Rung], budget: Optional[Budget] = None,
               fallback: bool = True, requested: Optional[str] = None,
               ) -> Tuple[object, RunReport]:
    """Try each rung in order under one shared meter; see module docstring.

    With ``fallback`` the last rung runs ungoverned (the guaranteed
    floor); without it, the first failure re-raises with the report
    attached as ``exc.run_report``.  Returns ``(result, report)``.
    """
    if not rungs:
        raise AnalysisError("run_ladder needs at least one rung")
    requested = requested or rungs[0][0]
    meter = budget.meter() if budget is not None else None
    report = RunReport(requested=requested, budget=budget, fallback=fallback)
    last = len(rungs) - 1
    try:
        if meter is not None:
            meter.start()
        for index, (level, thunk) in enumerate(rungs):
            floor = fallback and index == last
            rung_meter = None if floor else meter
            try:
                if rung_meter is not None:
                    rung_meter.check()  # don't build a rung we can't afford
                result = thunk(rung_meter)
            except (ReproError, MemoryError) as exc:
                report.record_attempt(level, error=exc, meter=meter)
                if not fallback or index == last:
                    report.finish(meter)
                    exc.run_report = report
                    raise
                continue
            report.record_attempt(level, meter=meter)
            report.finish(meter, precision_level=level)
            return result, report
    finally:
        if meter is not None:
            meter.stop()
    raise AssertionError("unreachable: ladder neither returned nor raised")


def solve_with_ladder(pipeline, analysis: str = "vsfs",
                      budget: Optional[Budget] = None, fallback: bool = True,
                      faults=None, delta: bool = True, ptrepo: bool = True):
    """Run *analysis* on *pipeline* under the degradation ladder.

    Returns the usual result object, tagged with ``precision_level``,
    ``degraded_from`` and a ``report`` (:class:`RunReport`).  Unbudgeted,
    fault-free runs execute exactly the ungoverned solver path and are
    bit-identical to calling the pipeline directly.
    """
    levels = LADDERS.get(analysis)
    if levels is None:
        raise AnalysisError(
            f"unknown analysis {analysis!r}; choose from {tuple(LADDERS)}")
    requested = "andersen" if analysis == "ander" else analysis

    def make_rung(level: str) -> Rung:
        if level == "vsfs":
            return level, lambda meter: pipeline.vsfs(
                delta=delta, ptrepo=ptrepo, meter=meter, faults=faults)
        if level == "sfs":
            return level, lambda meter: pipeline.sfs(
                delta=delta, ptrepo=ptrepo, meter=meter, faults=faults)
        if level == "icfg-fs":
            return level, lambda meter: pipeline.icfg_fs(meter=meter)
        # The Andersen rung takes no faults: it is the guaranteed floor.
        return level, lambda meter: pipeline.andersen(meter=meter)

    result, report = run_ladder([make_rung(level) for level in levels],
                                budget=budget, fallback=fallback,
                                requested=requested)
    return _tag(result, analysis, report)


def _tag(result, analysis: str, report: RunReport):
    """Stamp precision metadata (and synthesise the fallback shape)."""
    level = report.precision_level
    degraded_from = report.degraded_from
    if isinstance(result, AndersenResult) and analysis != "ander":
        result = andersen_as_flow_sensitive(result, degraded_from=degraded_from)
    result.precision_level = level
    result.degraded_from = degraded_from
    result.report = report
    return result
