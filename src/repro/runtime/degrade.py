"""Graceful degradation: budgets and faults cost precision, never answers.

The ladder runs the requested analysis and, when a rung fails with a typed
:class:`~repro.errors.ReproError` (budget exhaustion, an injected fault, a
solver inconsistency) or a ``MemoryError``, retries on the next, cheaper
rung instead of crashing::

    vsfs  →  sfs  →  andersen
    sfs   →  andersen
    icfg-fs → andersen
    ander →  andersen

Soundness by construction: every rung is a sound may-analysis of the same
program, and each is at most as precise as the one below it — so degrading
returns a *superset* of the points-to sets the precise run would have
produced, never a wrong answer.  The final Andersen rung is the staging
analysis the flow-sensitive solvers are built on (it already ran to
completion as their auxiliary analysis), which is why it can serve as the
unconditional floor: when fallback is enabled the last rung runs
ungoverned and fault-free, guaranteeing an answer even under a zero
budget.

One :class:`~repro.runtime.budget.BudgetMeter` spans all rungs, so the
budget caps the whole governed run, not each attempt.  Partial solver
state abandoned by a failed rung is *never* reused — a partial fixpoint
under-approximates and would be unsound; it is kept only on the exception
for diagnostics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.andersen import AndersenResult
from repro.datastructs.bitset import count_bits
from repro.errors import AnalysisError, CheckpointError, ReproError
from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.checkpoint import CheckpointConfig, Checkpointer
from repro.runtime.diagnostics import RunReport
from repro.solvers.base import FlowSensitiveResult, SolverStats
from repro.store.codec import ir_fingerprint

#: Ladder per requested analysis, most precise first.  The parallel
#: variants degrade to their serial twin first (same precision, simpler
#: execution) before dropping precision — a worker blowing its budget
#: falls back to one process before falling back to Andersen.
LADDERS = {
    "vsfs": ("vsfs", "sfs", "andersen"),
    "sfs": ("sfs", "andersen"),
    "vsfs-par": ("vsfs-par", "vsfs", "sfs", "andersen"),
    "sfs-par": ("sfs-par", "sfs", "andersen"),
    "icfg-fs": ("icfg-fs", "andersen"),
    "ander": ("andersen",),
}

#: A rung: (precision level, thunk taking the shared meter — or None for
#: the ungoverned floor — and returning a result).
Rung = Tuple[str, Callable[[Optional[BudgetMeter]], object]]


def andersen_as_flow_sensitive(andersen: AndersenResult,
                               degraded_from: Optional[str] = None) -> FlowSensitiveResult:
    """Repackage an Andersen result in the flow-sensitive result shape.

    Sound by construction: Andersen is the staging analysis, so its sets
    are supersets of what SFS/VSFS would compute.  The synthesised result
    answers the same ``points_to``/``may_alias``/``snapshot`` API, letting
    budget-exhausted callers keep working at reduced precision.
    """
    module = andersen.module
    pt = [0] * len(module.variables)
    for var in module.variables:
        if 0 <= var.id < len(pt):
            pt[var.id] = andersen.pts_mask(var)
    stats = SolverStats(
        analysis="andersen",
        solve_time=andersen.stats.solve_time,
        callgraph_edges=andersen.callgraph.num_edges(),
        top_level_bits=sum(count_bits(mask) for mask in pt),
    )
    return FlowSensitiveResult(module, pt, andersen.callgraph, stats,
                               precision_level="andersen",
                               degraded_from=degraded_from)


def run_ladder(rungs: Sequence[Rung], budget: Optional[Budget] = None,
               fallback: bool = True, requested: Optional[str] = None,
               ) -> Tuple[object, RunReport]:
    """Try each rung in order under one shared meter; see module docstring.

    With ``fallback`` the last rung runs ungoverned (the guaranteed
    floor); without it, the first failure re-raises with the report
    attached as ``exc.run_report``.  Returns ``(result, report)``.
    """
    if not rungs:
        raise AnalysisError("run_ladder needs at least one rung")
    requested = requested or rungs[0][0]
    meter = budget.meter() if budget is not None else None
    report = RunReport(requested=requested, budget=budget, fallback=fallback)
    last = len(rungs) - 1
    try:
        if meter is not None:
            meter.start()
        for index, (level, thunk) in enumerate(rungs):
            floor = fallback and index == last
            rung_meter = None if floor else meter
            try:
                if rung_meter is not None:
                    rung_meter.check()  # don't build a rung we can't afford
                result = thunk(rung_meter)
            except (ReproError, MemoryError) as exc:
                report.record_attempt(level, error=exc, meter=meter)
                # A rejected checkpoint is an input problem, not a resource
                # problem: degrading would silently discard the user's
                # resume request, so it always surfaces (CLI exit code 3).
                if isinstance(exc, CheckpointError) or not fallback or index == last:
                    report.finish(meter)
                    exc.run_report = report
                    raise
                continue
            report.record_attempt(level, meter=meter)
            report.finish(meter, precision_level=level)
            return result, report
    finally:
        if meter is not None:
            meter.stop()
    raise AssertionError("unreachable: ladder neither returned nor raised")


def solve_with_ladder(pipeline, analysis: str = "vsfs",
                      budget: Optional[Budget] = None, fallback: bool = True,
                      faults=None, delta: bool = True, ptrepo: bool = True,
                      checkpoint: Optional[CheckpointConfig] = None,
                      resume_state=None, resume_meta=None,
                      jobs: int = 1, parallel_mode: Optional[str] = None,
                      warm_plan=None, capture_regions: bool = False):
    """Run *analysis* on *pipeline* under the degradation ladder.

    Returns the usual result object, tagged with ``precision_level``,
    ``degraded_from`` and a ``report`` (:class:`RunReport`).  Unbudgeted,
    fault-free runs execute exactly the ungoverned solver path and are
    bit-identical to calling the pipeline directly.

    With *checkpoint* (a :class:`CheckpointConfig`) each rung gets its own
    :class:`Checkpointer`, keyed by IR hash × rung × ablation flags — a
    degraded run's precise-rung checkpoint survives for a later retry.
    *resume_state*/*resume_meta* (as returned by :func:`load_checkpoint`)
    restore the matching rung's solver mid-fixpoint before it runs; the
    state is applied only to the rung whose level equals the manifest's
    ``analysis``, so a checkpoint from an sfs fallback rung resumes that
    rung even when vsfs was requested.  On success the completed rung's
    checkpoint is discarded; more precise rungs' checkpoints are kept.
    """
    levels = LADDERS.get(analysis)
    if levels is None:
        raise AnalysisError(
            f"unknown analysis {analysis!r}; choose from {tuple(LADDERS)}")
    requested = "andersen" if analysis == "ander" else analysis

    checkpointers: Dict[str, Checkpointer] = {}
    ir_hash = ir_fingerprint(pipeline.module) if checkpoint is not None else None

    ctx = getattr(getattr(pipeline, "engine", None), "ctx", None)
    bus = getattr(ctx, "bus", None)

    def checkpointer_for(level: str) -> Optional[Checkpointer]:
        if checkpoint is None:
            return None
        ck = checkpointers.get(level)
        if ck is None:
            # Wire the fault plan and the pipeline's event bus through so
            # the checkpoint_write fault point fires and skipped saves
            # surface as self_heal events on the run's trace.
            ck = checkpointers[level] = Checkpointer(
                checkpoint, ir_hash, level, delta=delta, ptrepo=ptrepo,
                faults=faults, bus=bus)
        return ck

    resume_level = resume_meta.get("analysis") if resume_meta else None
    resume_step = resume_meta.get("step", 0) if resume_meta else 0
    if resume_state is not None and resume_level not in levels:
        raise CheckpointError(
            f"checkpoint is for analysis {resume_level!r}, which is not a "
            f"rung of the {analysis!r} ladder {levels}",
            reason="config-mismatch")

    def plan_for(level: str) -> object:
        # The warm plan applies only to the rung it was planned for —
        # a degraded rung solves a *different* analysis, whose stored
        # solution (if any) lives in its own slot.
        base = level[: -len("-par")] if level.endswith("-par") else level
        if warm_plan is not None \
                and getattr(warm_plan, "analysis", None) == base:
            return warm_plan
        return None

    def make_rung(level: str) -> Rung:
        if level.endswith("-par"):
            # Parallel rungs do their own sealing/revival in memory;
            # cross-run checkpoints and resume stay serial-only.
            base = level[: -len("-par")]
            return level, lambda meter: (
                pipeline.sfs_par if base == "sfs" else pipeline.vsfs_par)(
                    jobs=jobs, delta=delta, ptrepo=ptrepo, meter=meter,
                    faults=faults, mode=parallel_mode,
                    warm_plan=plan_for(level),
                    capture_regions=capture_regions)
        ck = checkpointer_for(level)
        state = resume_state if level == resume_level else None
        if level == "vsfs":
            return level, lambda meter: pipeline.vsfs(
                delta=delta, ptrepo=ptrepo, meter=meter, faults=faults,
                checkpointer=ck, resume_state=state, resume_step=resume_step,
                warm_plan=plan_for(level), capture_regions=capture_regions)
        if level == "sfs":
            return level, lambda meter: pipeline.sfs(
                delta=delta, ptrepo=ptrepo, meter=meter, faults=faults,
                checkpointer=ck, resume_state=state, resume_step=resume_step,
                warm_plan=plan_for(level), capture_regions=capture_regions)
        if level == "icfg-fs":
            return level, lambda meter: pipeline.icfg_fs(
                meter=meter, checkpointer=ck, resume_state=state,
                resume_step=resume_step)
        # The Andersen rung takes no faults: it is the guaranteed floor.
        return level, lambda meter: pipeline.andersen(
            meter=meter, checkpointer=ck, resume_state=state,
            resume_step=resume_step)

    def stamp(report: RunReport, failure=None) -> None:
        report.stage_trace = getattr(pipeline, "trace", None)
        report.resumed = resume_state is not None
        report.resumed_from_step = resume_step if report.resumed else None
        report.resume_count = 1 if report.resumed else 0
        report.checkpoint_saves = sum(ck.saves for ck in checkpointers.values())
        report.checkpoint_skips = sum(
            ck.skipped for ck in checkpointers.values())
        report.checkpoint_time_s = sum(
            ck.total_time for ck in checkpointers.values())
        if failure is not None:
            report.checkpoint_path = getattr(failure, "checkpoint_path", None)

    try:
        result, report = run_ladder([make_rung(level) for level in levels],
                                    budget=budget, fallback=fallback,
                                    requested=requested)
    except (ReproError, MemoryError) as exc:
        failed_report = getattr(exc, "run_report", None)
        if failed_report is not None:
            stamp(failed_report, failure=exc)
        raise
    stamp(report)
    completed = checkpointers.get(report.precision_level)
    if completed is not None:
        completed.discard()
    return _tag(result, analysis, report)


def _tag(result, analysis: str, report: RunReport):
    """Stamp precision metadata (and synthesise the fallback shape)."""
    level = report.precision_level
    degraded_from = report.degraded_from
    if isinstance(result, AndersenResult) and analysis != "ander":
        result = andersen_as_flow_sensitive(result, degraded_from=degraded_from)
    result.precision_level = level
    result.degraded_from = degraded_from
    incr = getattr(result, "incremental", None)
    if incr is not None:
        report.incremental = incr.to_dict()
    result.report = report
    return result
