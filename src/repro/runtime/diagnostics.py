"""Run reports: what a governed analysis run did, attempted, and consumed.

A :class:`RunReport` is attached to every result the degradation ladder
returns (and to the exception when fallback is disabled).  It records the
stage reached, every attempt's outcome and exception, the budget and how
much of it was consumed — rendered by ``repro-wpa --report`` and embedded
per program in the bench runner's JSON output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import BudgetExceeded, InjectedFault
from repro.runtime.budget import Budget, BudgetMeter

#: Attempt outcomes, from best to worst.
OUTCOMES = ("completed", "budget-exceeded", "fault-injected", "error")


def _classify(error: Optional[BaseException]) -> str:
    if error is None:
        return "completed"
    if isinstance(error, BudgetExceeded):
        return "budget-exceeded"
    if isinstance(error, InjectedFault):
        return "fault-injected"
    return "error"


@dataclass
class Attempt:
    """One rung of the ladder: which stage ran and how it ended."""

    level: str
    outcome: str
    error_type: str = ""
    error_message: str = ""
    stage: str = ""  # innermost stage context carried by the exception
    wall_seconds: float = 0.0  # cumulative governed wall clock at attempt end
    steps: int = 0  # cumulative governed solver steps at attempt end

    def describe(self) -> str:
        text = f"{self.level}: {self.outcome}"
        if self.error_type:
            text += f" ({self.error_type}: {self.error_message})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "outcome": self.outcome,
            "error_type": self.error_type or None,
            "error_message": self.error_message or None,
            "stage": self.stage or None,
            "wall_seconds": self.wall_seconds,
            "steps": self.steps,
        }


@dataclass
class RunReport:
    """Everything observable about one governed run."""

    requested: str
    budget: Optional[Budget] = None
    fallback: bool = True
    precision_level: str = ""
    degraded_from: Optional[str] = None
    attempts: List[Attempt] = field(default_factory=list)
    wall_seconds_used: float = 0.0
    steps_used: int = 0
    peak_bytes: Optional[int] = None
    # Checkpoint/resume accounting (stamped by the ladder when a
    # CheckpointConfig is active; all-zero otherwise).
    resumed: bool = False
    resumed_from_step: Optional[int] = None
    resume_count: int = 0
    checkpoint_saves: int = 0
    #: Saves abandoned after the transient-I/O retry budget was spent
    #: (degraded-not-dead: the solve continued without them).
    checkpoint_skips: int = 0
    checkpoint_time_s: float = 0.0
    checkpoint_path: Optional[str] = None
    #: Live :class:`~repro.engine.events.StageTrace` of the pipeline that
    #: produced this run (stamped by the ladder); ``to_dict`` snapshots
    #: it as the ``stages`` list — substrate entries carry
    #: ``main_phase: false``, i.e. excluded from the timed main phase.
    stage_trace: Optional[object] = None
    #: Warm re-solve accounting (an ``IncrStats.to_dict()`` snapshot)
    #: when the run was planned incrementally — including fallbacks,
    #: whose ``fallback_reason`` says why the run went cold.
    incremental: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------- recording

    def record_attempt(self, level: str, error: Optional[BaseException] = None,
                       meter: Optional[BudgetMeter] = None) -> Attempt:
        attempt = Attempt(level=level, outcome=_classify(error))
        if error is not None:
            attempt.error_type = type(error).__name__
            attempt.error_message = str(error)
            attempt.stage = getattr(error, "stage", "") or level
        if meter is not None:
            attempt.wall_seconds = meter.elapsed()
            attempt.steps = meter.steps
        self.attempts.append(attempt)
        return attempt

    def finish(self, meter: Optional[BudgetMeter] = None,
               precision_level: str = "") -> "RunReport":
        if precision_level:
            self.precision_level = precision_level
            if precision_level != self.requested:
                self.degraded_from = self.requested
        if meter is not None:
            self.wall_seconds_used = meter.elapsed()
            self.steps_used = meter.steps
            self.peak_bytes = meter.peak_bytes()
        return self

    # ------------------------------------------------------------ observation

    @property
    def degraded(self) -> bool:
        return self.degraded_from is not None

    @property
    def precision_lost(self) -> bool:
        """True when degradation cost precision, not just parallelism.

        A parallel rung collapsing onto its serial twin (``sfs-par →
        sfs``) is degradation without precision loss — the results are
        bit-identical — so result stores and warnings key off this, not
        :attr:`degraded`.
        """
        if not self.degraded:
            return False
        return self.degraded_from != self.precision_level + "-par"

    @property
    def self_heal(self) -> List[Dict[str, object]]:
        """The stage trace's absorbed-fault audit trail (empty = clean)."""
        trace = self.stage_trace
        heals = getattr(trace, "heals", None) if trace is not None else None
        return list(heals) if heals else []

    @property
    def retry_attempts(self) -> int:
        """Transient-I/O :class:`~repro.runtime.resilience.RetryPolicy`
        re-runs recorded on the heal trail (0 = no retries needed)."""
        return sum(1 for heal in self.self_heal
                   if heal.get("action") == "retry")

    @property
    def retry_give_ups(self) -> int:
        """Operations abandoned after the retry budget was spent (the
        ``skip-*`` heal actions); the run continued without them."""
        return sum(1 for heal in self.self_heal
                   if str(heal.get("action", "")).startswith("skip"))

    @property
    def stage_reached(self) -> str:
        """The last stage attempted (= the one that produced the answer,
        when the run succeeded)."""
        return self.attempts[-1].level if self.attempts else ""

    def exception_chain(self) -> List[str]:
        """Human-readable chain of every failed attempt, outermost first."""
        return [attempt.describe() for attempt in self.attempts
                if attempt.outcome != "completed"]

    def summary(self) -> str:
        """One line: what was asked, what was answered, and why."""
        if not self.degraded:
            return f"{self.requested} completed"
        first_failure = next(
            (a for a in self.attempts if a.outcome != "completed"), None)
        why = f" after {first_failure.outcome}" if first_failure else ""
        return f"{self.requested} degraded to {self.precision_level}{why}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (embedded in BENCH output per program)."""
        return {
            "requested": self.requested,
            "precision_level": self.precision_level,
            "degraded": self.degraded,
            "degraded_from": self.degraded_from,
            "precision_lost": self.precision_lost,
            "fallback": self.fallback,
            "stage_reached": self.stage_reached,
            "budget": None if self.budget is None else {
                "wall_seconds": self.budget.wall_seconds,
                "max_steps": self.budget.max_steps,
                "max_memory_bytes": self.budget.max_memory_bytes,
            },
            "wall_seconds_used": self.wall_seconds_used,
            "steps_used": self.steps_used,
            "peak_bytes": self.peak_bytes,
            "resumed": self.resumed,
            "resumed_from_step": self.resumed_from_step,
            "resume_count": self.resume_count,
            "checkpoint_saves": self.checkpoint_saves,
            "checkpoint_skips": self.checkpoint_skips,
            "checkpoint_time_s": self.checkpoint_time_s,
            "checkpoint_path": self.checkpoint_path,
            "incremental": self.incremental,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "self_heal": self.self_heal,
            "retry_attempts": self.retry_attempts,
            "retry_give_ups": self.retry_give_ups,
            "stages": (self.stage_trace.to_dict()
                       if self.stage_trace is not None else None),
        }

    def render(self) -> str:
        """Multi-line text for ``repro-wpa --report``."""
        lines = [f"--- run report: {self.summary()} ---"]
        budget = self.budget.describe() if self.budget is not None else "none"
        lines.append(f"budget: {budget}")
        consumed = f"wall {self.wall_seconds_used:.4f}s, steps {self.steps_used}"
        if self.peak_bytes is not None:
            consumed += f", traced peak {self.peak_bytes / 1024:.1f} KiB"
        lines.append(f"consumed: {consumed}")
        lines.append(f"stage reached: {self.stage_reached or 'none'} "
                     f"(precision: {self.precision_level or 'n/a'})")
        if self.resumed or self.checkpoint_saves or self.checkpoint_skips:
            checkpoints = (f"checkpoints: {self.checkpoint_saves} saved "
                           f"({self.checkpoint_time_s:.4f}s)")
            if self.checkpoint_skips:
                checkpoints += f", {self.checkpoint_skips} skipped"
            if self.resumed:
                checkpoints += f", resumed from step {self.resumed_from_step}"
            lines.append(checkpoints)
        incr = self.incremental
        if incr is not None:
            if incr.get("fallback_reason"):
                lines.append("incremental: cold solve "
                             f"(fallback={incr['fallback_reason']})")
            else:
                lines.append(
                    f"incremental: {incr.get('regions_reused', 0)}/"
                    f"{incr.get('regions_total', 0)} regions reused, "
                    f"{len(incr.get('dirty_functions') or [])} dirty "
                    f"function(s), {incr.get('steps_saved', 0)} solver "
                    f"steps saved")
        heals = self.self_heal
        if heals:
            lines.append(f"self-heal: {len(heals)} absorbed fault(s), "
                         f"{self.retry_attempts} retry attempt(s), "
                         f"{self.retry_give_ups} give-up(s)")
            for heal in heals:
                stage = heal.get("stage", "?")
                detail = ", ".join(f"{k}={v}" for k, v in heal.items()
                                   if k != "stage")
                lines.append(f"  - {stage}: {detail}")
        lines.append("attempts:")
        for index, attempt in enumerate(self.attempts, 1):
            lines.append(f"  {index}. {attempt.describe()}")
        return "\n".join(lines)
