"""Deterministic fault injection for the staged solvers.

The solvers are instrumented at four trigger points — stage boundaries and
the hot spots of the solve loops:

- ``pre_meld``: the pre-solve stage boundary, immediately before the
  versioning pre-analysis for VSFS (and before worklist seeding for SFS);
- ``otf_edge``: a new call edge was discovered by on-the-fly call graph
  resolution and is about to be wired into the SVFG;
- ``propagate``: an indirect points-to propagation (SFS ``A-PROP`` /
  VSFS ``[A-PROP]ⱽ``) is starting;
- ``ptrepo_union``: a deduplicated-storage union is about to be applied
  (only reachable with ``ptrepo`` enabled).

A :class:`FaultPlan` decides, deterministically, whether a reached point
fires.  Two trigger modes: *step-indexed* (fire on the N-th hit of a
point) and *seeded probability* (a private ``random.Random(seed)`` stream,
so two plans with the same seed fire identically).  Firing raises
:class:`~repro.errors.InjectedFault` — a typed ``ReproError`` carrying the
point, stage and hit count — which either surfaces to the caller or is
absorbed by the degradation ladder, exactly like a real internal failure
would be.  The integration suite proves both outcomes for the full
point × solver × ablation matrix.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError, InjectedFault

#: Every instrumented trigger point, in pipeline order.
FAULT_POINTS = ("pre_meld", "otf_edge", "propagate", "ptrepo_union")


class FaultPlan:
    """Decides when an instrumented trigger point raises.

    :param point: which trigger point may fire (``"*"`` = any of them).
    :param at_hit: fire on the N-th hit (1-based) of a matching point;
        ignored when ``probability`` is given.
    :param probability: fire each matching hit with this probability,
        drawn from a ``random.Random(seed)`` stream (deterministic).
    :param seed: seed for the probability stream.
    :param once: disarm after the first firing (default) so a degraded
        re-run on a lower ladder rung can complete.

    ``hits`` counts every reached point (fired or not); ``fired`` records
    ``(point, stage, hit)`` triples for each injection, so tests can assert
    a fault actually happened rather than vacuously passing.
    """

    def __init__(self, point: str = "*", at_hit: int = 1,
                 probability: Optional[float] = None, seed: int = 0,
                 once: bool = True):
        if point != "*" and point not in FAULT_POINTS:
            raise AnalysisError(
                f"unknown fault point {point!r}; choose from {FAULT_POINTS} or '*'"
            )
        if at_hit < 1:
            raise AnalysisError(f"at_hit is 1-based, got {at_hit}")
        self.point = point
        self.at_hit = at_hit
        self.probability = probability
        self.once = once
        self._rng = random.Random(seed)
        self.hits: Dict[str, int] = {}
        self.fired: List[Tuple[str, str, int]] = []

    def _matches(self, point: str) -> bool:
        return self.point == "*" or self.point == point

    def fire(self, point: str, stage: str = "") -> None:
        """Record a reached trigger point; raise if the plan says so."""
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        if not self._matches(point) or (self.once and self.fired):
            return
        if self.probability is not None:
            trigger = self._rng.random() < self.probability
        else:
            trigger = hit == self.at_hit
        if trigger:
            self.fired.append((point, stage, hit))
            raise InjectedFault(point=point, stage=stage, hit=hit)
