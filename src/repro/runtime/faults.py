"""Deterministic fault injection across every platform fault domain.

The original four trigger points covered only the solver hot loops; the
resilience layer (:mod:`repro.runtime.resilience`, DESIGN.md §12) extends
the table to every layer that can fail in production.  Points are grouped
into **fault domains**:

- ``solver`` — the original four: stage boundaries and the hot spots of
  the solve loops (``pre_meld``, ``otf_edge``, ``propagate``,
  ``ptrepo_union``);
- ``io`` — the on-disk substrate: stage-cache read/write, checkpoint
  write, result-store put, arena append/attach;
- ``parallel`` — the sharded driver's transport: frontier send/recv,
  worker spawn, worker heartbeat;
- ``service`` — the always-on daemon's request path (:mod:`repro.service`):
  request decode, queue admission, worker execution, warm-cache attach.

A :class:`FaultPlan` decides, deterministically, whether a reached point
fires.  Two trigger modes: *step-indexed* (fire on the N-th hit of a
point) and *seeded probability* (a private ``random.Random(seed)`` stream,
so two plans with the same seed fire identically).  Firing raises
:class:`~repro.errors.InjectedFault` — a typed ``ReproError`` carrying the
point, stage and hit count.  What happens next depends on the domain:
solver faults surface to the degradation ladder exactly like a real
internal failure; ``io`` faults are absorbed by the self-healing wrappers
(recompute, retry, or skip — the run completes); ``parallel`` faults are
absorbed by the driver's watchdog (kill-and-revive, then collapse onto
the serial rung once the failure budget is spent); ``service`` faults
are absorbed by the daemon's admission control (typed shed/error
responses, worker revival, cache-less sessions — the daemon stays up).
The chaos harness (``repro-wpa chaos``) soaks the batch table under
seeded schedules; ``repro-wpa chaos --daemon`` soaks the service domain.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.errors import AnalysisError, InjectedFault

#: Fault domain -> its trigger points, in pipeline order.
FAULT_DOMAINS: Dict[str, Tuple[str, ...]] = {
    "solver": ("pre_meld", "otf_edge", "propagate", "ptrepo_union"),
    "io": ("stage_cache_read", "stage_cache_write", "checkpoint_write",
           "result_store_put", "arena_attach", "arena_append"),
    "parallel": ("worker_spawn", "worker_heartbeat",
                 "frontier_send", "frontier_recv"),
    "service": ("request_decode", "queue_admit", "worker_exec",
                "cache_attach"),
}

#: Every instrumented trigger point, in (domain, pipeline) order.
FAULT_POINTS = tuple(point for points in FAULT_DOMAINS.values()
                     for point in points)

#: One-line description per point (``repro-wpa --list-fault-points``).
FAULT_DESCRIPTIONS: Dict[str, str] = {
    "pre_meld": "pre-solve stage boundary (before VSFS versioning / "
                "SFS worklist seeding)",
    "otf_edge": "a new on-the-fly call edge is about to be wired into "
                "the SVFG",
    "propagate": "an indirect points-to propagation is starting",
    "ptrepo_union": "a deduplicated-storage union is about to be applied "
                    "(ptrepo only)",
    "stage_cache_read": "a stage-cache entry is about to be probed "
                        "(heals: quarantine + recompute)",
    "stage_cache_write": "a fresh stage artifact is about to be persisted "
                         "(heals: retry, then skip caching)",
    "checkpoint_write": "a solver checkpoint is about to be sealed to disk "
                        "(heals: retry, then skip the save)",
    "result_store_put": "a completed result is about to enter the store "
                        "(heals: retry, then skip the put)",
    "arena_attach": "the shared mask arena is about to be opened/attached "
                    "(heals: proceed arena-less)",
    "arena_append": "freshly interned masks are about to be flushed to the "
                    "arena (heals: skip the flush)",
    "worker_spawn": "a parallel worker is about to be constructed "
                    "(heals: respawn, counted against the failure budget)",
    "worker_heartbeat": "the driver is about to wait on a worker's round "
                        "reply (fires = the worker is treated as hung: "
                        "kill-and-revive)",
    "frontier_send": "a frontier batch delivery to a worker is starting "
                     "(fires = the worker is lost: kill-and-revive)",
    "frontier_recv": "a worker's round reply is being collected "
                     "(fires = the reply is lost: kill-and-revive)",
    "request_decode": "a daemon request line/body is about to be decoded "
                      "(fires = typed error response, never a traceback "
                      "on the wire)",
    "queue_admit": "a decoded request is about to enter the admission "
                   "queue (fires = typed ServiceOverloaded shed)",
    "worker_exec": "a service worker is about to execute an admitted "
                   "request (fires = retry on a revived worker, charged "
                   "against its failure budget)",
    "cache_attach": "a program session is about to attach the warm "
                    "store/stage-cache/arena (heals: serve cache-less)",
}


def fault_domain(point: str) -> str:
    """The domain *point* belongs to (:class:`AnalysisError` if unknown)."""
    for domain, points in FAULT_DOMAINS.items():
        if point in points:
            return domain
    raise AnalysisError(
        f"unknown fault point {point!r}; choose from {FAULT_POINTS}")


def describe_fault_points() -> str:
    """Human-readable table of every fault point, grouped by domain."""
    lines = ["--- fault points ---"]
    for domain, points in FAULT_DOMAINS.items():
        lines.append(f"[{domain}]")
        for point in points:
            lines.append(f"  {point:<18} {FAULT_DESCRIPTIONS[point]}")
    lines.append(f"{len(FAULT_POINTS)} points; inject with FaultPlan(point=...)"
                 f" or soak with `repro-wpa chaos`")
    return "\n".join(lines)


class FaultPlan:
    """Decides when an instrumented trigger point raises.

    :param point: which trigger point may fire (``"*"`` = any of them).
    :param at_hit: fire on the N-th hit (1-based) of a matching point;
        ignored when ``probability`` is given.
    :param probability: fire each matching hit with this probability,
        drawn from a ``random.Random(seed)`` stream (deterministic).
    :param seed: seed for the probability stream.
    :param once: disarm after the first firing (default) so a degraded
        re-run on a lower ladder rung — or a self-healing retry — can
        complete.

    ``hits`` counts every reached point (fired or not); ``fired`` records
    ``(point, stage, hit)`` triples for each injection, so tests can assert
    a fault actually happened rather than vacuously passing.
    """

    def __init__(self, point: str = "*", at_hit: int = 1,
                 probability: Optional[float] = None, seed: int = 0,
                 once: bool = True):
        if point != "*" and point not in FAULT_POINTS:
            raise AnalysisError(
                f"unknown fault point {point!r}; choose from {FAULT_POINTS} or '*'"
            )
        if at_hit < 1:
            raise AnalysisError(f"at_hit is 1-based, got {at_hit}")
        self.point = point
        self.at_hit = at_hit
        self.probability = probability
        self.once = once
        self._rng = random.Random(seed)
        self.hits: Dict[str, int] = {}
        self.fired: List[Tuple[str, str, int]] = []

    @property
    def domain(self) -> str:
        """Domain of the targeted point (``"*"`` for wildcard plans)."""
        return "*" if self.point == "*" else fault_domain(self.point)

    def _matches(self, point: str) -> bool:
        return self.point == "*" or self.point == point

    def fire(self, point: str, stage: str = "") -> None:
        """Record a reached trigger point; raise if the plan says so."""
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        if not self._matches(point) or (self.once and self.fired):
            return
        if self.probability is not None:
            trigger = self._rng.random() < self.probability
        else:
            trigger = hit == self.at_hit
        if trigger:
            self.fired.append((point, stage, hit))
            raise InjectedFault(point=point, stage=stage, hit=hit)
