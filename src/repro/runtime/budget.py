"""Resource budgets for governed analysis runs.

A :class:`Budget` declares limits (wall-clock seconds, solver steps, peak
traced bytes); a :class:`BudgetMeter` enforces them cooperatively.  Every
solver loop calls :meth:`BudgetMeter.tick` once per worklist pop, which is
cheap — the step limit is an int compare, and the wall/memory probes run
once per :data:`CHECK_INTERVAL` ticks (plus on the very first tick, so a
zero budget trips before any real work).  When a limit is hit the meter
raises :class:`~repro.errors.BudgetExceeded`; the interrupted solver
attaches its stage, stats and partially-solved state before re-raising.

One meter spans a whole governed run: the degradation ladder hands the
same meter to every rung it tries, so a ``vsfs`` attempt that burns the
step budget leaves nothing for the ``sfs`` retry and the run falls through
to the Andersen floor immediately.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Optional

from repro.errors import BudgetExceeded

#: Wall/memory probes run every this-many ticks (and on the first tick).
CHECK_INTERVAL = 64


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for one analysis run.

    ``None`` means unlimited in that dimension.  ``max_memory_bytes``
    governs the ``tracemalloc`` peak of the run (the meter starts tracing
    itself if nothing else has), matching how the benchmarks report memory.
    """

    wall_seconds: Optional[float] = None
    max_steps: Optional[int] = None
    max_memory_bytes: Optional[int] = None

    def is_unlimited(self) -> bool:
        return (self.wall_seconds is None and self.max_steps is None
                and self.max_memory_bytes is None)

    def meter(self) -> "BudgetMeter":
        """A fresh meter enforcing this budget."""
        return BudgetMeter(self)

    def describe(self) -> str:
        parts = []
        if self.wall_seconds is not None:
            parts.append(f"wall {self.wall_seconds:g}s")
        if self.max_steps is not None:
            parts.append(f"steps {self.max_steps}")
        if self.max_memory_bytes is not None:
            parts.append(f"memory {self.max_memory_bytes / (1024 * 1024):g} MiB")
        return ", ".join(parts) if parts else "unlimited"


class BudgetMeter:
    """Enforces one :class:`Budget` across one governed run.

    Lifecycle: :meth:`start` begins the wall clock (and tracing, if a
    memory limit is set and nothing traces yet); solvers :meth:`tick` per
    worklist pop and may :meth:`check` at stage boundaries; the owner calls
    :meth:`stop` when the run ends (stops tracing only if this meter
    started it).  ``start`` is idempotent and implied by the first
    ``tick``/``check``, so directly-constructed solvers work unaided.
    """

    __slots__ = ("budget", "steps", "_start", "_owns_tracing")

    def __init__(self, budget: Budget):
        self.budget = budget
        self.steps = 0
        self._start: Optional[float] = None
        self._owns_tracing = False

    # ------------------------------------------------------------- lifecycle

    def started(self) -> bool:
        return self._start is not None

    def start(self) -> "BudgetMeter":
        if self._start is None:
            if self.budget.max_memory_bytes is not None and not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracing = True
            self._start = time.perf_counter()
        return self

    def stop(self) -> None:
        if self._owns_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracing = False

    # ------------------------------------------------------------ observation

    def elapsed(self) -> float:
        """Wall-clock seconds since :meth:`start` (0.0 if never started)."""
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start

    def peak_bytes(self) -> Optional[int]:
        """Traced peak bytes, or ``None`` when tracing is off."""
        if not tracemalloc.is_tracing():
            return None
        return tracemalloc.get_traced_memory()[1]

    # ------------------------------------------------------------ enforcement

    def tick(self) -> None:
        """One unit of solver work (a worklist pop).  Raises on exhaustion."""
        self.steps += 1
        limit = self.budget.max_steps
        if limit is not None and self.steps > limit:
            raise BudgetExceeded(
                f"step budget exhausted: limit {limit}, used {self.steps}",
                resource="steps", limit=limit, used=self.steps,
            )
        if self.steps % CHECK_INTERVAL == 1 or CHECK_INTERVAL == 1:
            self.check()

    def check(self) -> None:
        """Probe the wall clock and traced memory against their limits."""
        if self._start is None:
            self.start()
        wall_limit = self.budget.wall_seconds
        if wall_limit is not None:
            elapsed = self.elapsed()
            if elapsed > wall_limit:
                raise BudgetExceeded(
                    f"wall-clock budget exhausted: limit {wall_limit:g}s, "
                    f"used {elapsed:.4f}s",
                    resource="wall", limit=wall_limit, used=elapsed,
                )
        mem_limit = self.budget.max_memory_bytes
        if mem_limit is not None:
            peak = self.peak_bytes()
            if peak is not None and peak > mem_limit:
                raise BudgetExceeded(
                    f"memory budget exhausted: limit {mem_limit} bytes, "
                    f"traced peak {peak} bytes",
                    resource="memory", limit=mem_limit, used=peak,
                )
