"""Crash-safe checkpointing of in-flight solver state.

A checkpoint is a sealed JSON document (:mod:`repro.store.atomic`) holding
everything a solver needs to continue a fixpoint from the middle: the
top-level points-to array, the solver's memory representation (IN/OUT maps
for SFS/ICFG, the global ``(object, version)`` table plus meld/version
tables for VSFS, the constraint-graph arrays for Andersen), the
:class:`~repro.datastructs.ptrepo.PTRepo` interning table, the worklist
*in queue order*, the on-the-fly call-graph edges, and the field objects
materialised during the solve.

Restartability is sound because every solver is a *monotone* fixpoint
computation: the checkpoint captures a valid intermediate lattice point,
and continuing from it can only converge to the same (unique) least
fixpoint an uninterrupted run reaches — the resume tests assert the
stronger property that results are **bit-identical**.

The manifest (the sealed document's ``meta``) records the schema version,
the IR content hash, the ablation flags, and the analysis; loading verifies
all four so a checkpoint from an edited program, another solver, or a
different ablation configuration is rejected with a typed
:class:`~repro.errors.CheckpointError` instead of corrupting a run.
Checkpoint files are written atomically, so a crash *during* a save leaves
the previous checkpoint intact.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import CheckpointError
from repro.ir.fingerprint import FINGERPRINT_SCHEME
from repro.store.atomic import quarantine_file, read_sealed_json, write_sealed_json
from repro.store.codec import result_key

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointConfig",
    "Checkpointer",
    "checkpoint_path",
    "find_checkpoint",
    "load_checkpoint",
]

#: Bumped whenever any solver's snapshot payload layout changes.
#: 2: keys derive from the per-function fingerprint scheme
#: (:data:`repro.ir.fingerprint.FINGERPRINT_SCHEME`); manifests carry
#: ``fp_scheme`` so pre-refactor checkpoints are rejected, not resumed.
CHECKPOINT_SCHEMA = 2

#: Artifact kind tag inside the sealed envelope.
CHECKPOINT_KIND = "checkpoint"


@dataclass
class CheckpointConfig:
    """Where and how often to checkpoint.

    ``every_steps`` counts solver worklist pops between saves;
    ``every_seconds`` is a wall-clock cadence.  Either (or both) may be
    active; a save also always happens when a budget trips, regardless of
    cadence, so a supervisor can resume from the exact interruption point.
    """

    directory: str
    every_steps: Optional[int] = 1000
    every_seconds: Optional[float] = None


def checkpoint_path(directory: str, ir_hash: str, analysis: str,
                    delta: bool, ptrepo: bool) -> str:
    """Deterministic checkpoint file name for one (program, config) pair.

    Content-keyed like the result store, so resume discovery is a pure
    function of what is being solved — no run ids to thread through.
    """
    key = result_key(ir_hash, analysis, delta, ptrepo)[:16]
    return os.path.join(directory, f"ckpt-{analysis}-{key}.json")


class Checkpointer:
    """Writes one solver's checkpoints on a cadence and on demand.

    One instance per ladder rung: each (analysis, config) pair owns its own
    file, so a degraded run's precise-rung checkpoint survives for a later
    retry with a larger budget.
    """

    def __init__(self, config: CheckpointConfig, ir_hash: str, analysis: str,
                 delta: bool = True, ptrepo: bool = True,
                 faults: Any = None, bus: Any = None, retry: Any = None):
        self.config = config
        self.ir_hash = ir_hash
        self.analysis = analysis
        self.delta = bool(delta)
        self.ptrepo = bool(ptrepo)
        self.path = checkpoint_path(config.directory, ir_hash, analysis,
                                    delta, ptrepo)
        #: FaultPlan whose ``checkpoint_write`` point fires inside save().
        self.faults = faults
        #: EventBus receiving ``self_heal`` events for absorbed failures.
        self.bus = bus
        #: RetryPolicy for transient save failures (None = IO_RETRY).
        self.retry = retry
        self.saves = 0
        #: Saves abandoned after the retry budget was spent (the solve
        #: continued; the previous checkpoint on disk stays valid).
        self.skipped = 0
        self.total_time = 0.0
        self._last_step = 0
        self._last_wall = time.monotonic()

    def mark_resumed(self, step: int) -> None:
        """Reset the cadence origin after a resume (no immediate re-save)."""
        self._last_step = step
        self._last_wall = time.monotonic()

    def maybe(self, solver: Any, step: int) -> Optional[str]:
        """Save if a cadence elapsed; cheap enough for the solver hot loop."""
        every_steps = self.config.every_steps
        if every_steps is not None and step - self._last_step >= every_steps:
            return self.save(solver, step)
        every_seconds = self.config.every_seconds
        if (every_seconds is not None
                and time.monotonic() - self._last_wall >= every_seconds):
            return self.save(solver, step)
        return None

    def save(self, solver: Any, step: int,
             reason: str = "cadence") -> Optional[str]:
        """Snapshot *solver* and seal it to disk; returns the file path.

        Writes are atomic (a crash mid-save leaves the previous file
        intact), and transient failures — ``OSError`` or an injected
        ``checkpoint_write`` fault — are retried on the
        :class:`~repro.runtime.resilience.RetryPolicy`.  A save whose
        retry budget is spent is *skipped*, not fatal: the solve goes on
        and the previous checkpoint stays the resume point.  Returns
        ``None`` for a skipped save.
        """
        from repro.errors import InjectedFault

        begun = time.perf_counter()
        meta = {
            "ir_hash": self.ir_hash,
            "fp_scheme": FINGERPRINT_SCHEME,
            "analysis": self.analysis,
            "delta": self.delta,
            "ptrepo": self.ptrepo,
            "step": step,
            "reason": reason,
        }
        state = solver.snapshot_state()

        def attempt() -> None:
            if self.faults is not None:
                self.faults.fire("checkpoint_write", stage=self.analysis)
            os.makedirs(self.config.directory, exist_ok=True)
            write_sealed_json(self.path, CHECKPOINT_KIND, CHECKPOINT_SCHEMA,
                              meta, state)

        def on_retry(attempt_no: int, exc: BaseException) -> None:
            if self.bus is not None:
                from repro.engine.events import heal_event

                self.bus.emit(heal_event(
                    f"solve:{self.analysis}", "io", "retry",
                    point="checkpoint_write", attempt=attempt_no,
                    error=type(exc).__name__))

        policy = self.retry
        if policy is None:
            from repro.runtime.resilience import IO_RETRY

            policy = IO_RETRY
        try:
            policy.run(attempt, retry_on=(OSError, InjectedFault),
                       on_retry=on_retry)
        except (OSError, InjectedFault) as exc:
            self.skipped += 1
            self._last_step = step
            self._last_wall = time.monotonic()
            if self.bus is not None:
                from repro.engine.events import heal_event

                self.bus.emit(heal_event(
                    f"solve:{self.analysis}", "io", "skip-write",
                    point="checkpoint_write", error=type(exc).__name__,
                    step=step))
            return None
        self.saves += 1
        self.total_time += time.perf_counter() - begun
        self._last_step = step
        self._last_wall = time.monotonic()
        return self.path

    def discard(self) -> None:
        """Remove the checkpoint (the run it belonged to completed)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def load_checkpoint(path: str, ir_hash: Optional[str] = None,
                    analysis: Optional[str] = None,
                    delta: Optional[bool] = None,
                    ptrepo: Optional[bool] = None
                    ) -> Tuple[Dict[str, Any], Any]:
    """Read + verify one checkpoint; returns ``(meta, payload)``.

    Beyond the envelope checks (checksum, kind, schema), any expectation
    passed as a keyword is matched against the manifest: a checkpoint
    recorded for a different program raises ``reason="ir-mismatch"``, one
    for a different solver or ablation configuration
    ``reason="config-mismatch"``.  Corrupt files are quarantined so a
    supervisor's next retry starts fresh instead of tripping again.
    """
    try:
        meta, payload = read_sealed_json(path, CHECKPOINT_KIND,
                                         CHECKPOINT_SCHEMA)
    except CheckpointError as err:
        if err.reason != "missing" and os.path.exists(path):
            err.path = quarantine_file(path)
        raise
    if meta.get("fp_scheme") != FINGERPRINT_SCHEME:
        # Unlike a config mismatch (valid for some other run), a scheme
        # mismatch can never become loadable again — quarantine it.
        raise CheckpointError(
            f"checkpoint was recorded under fingerprint scheme "
            f"{meta.get('fp_scheme')!r}, not {FINGERPRINT_SCHEME} — stale "
            f"pre-refactor state cannot be resumed", reason="schema",
            path=quarantine_file(path))
    if ir_hash is not None and meta.get("ir_hash") != ir_hash:
        raise CheckpointError(
            f"checkpoint was recorded for a different program "
            f"(IR hash {meta.get('ir_hash')!r})",
            reason="ir-mismatch", path=path)
    if analysis is not None and meta.get("analysis") != analysis:
        raise CheckpointError(
            f"checkpoint was recorded for analysis {meta.get('analysis')!r}, "
            f"not {analysis!r}", reason="config-mismatch", path=path)
    if delta is not None and bool(meta.get("delta")) != bool(delta):
        raise CheckpointError(
            "checkpoint was recorded under a different delta-kernel setting",
            reason="config-mismatch", path=path)
    if ptrepo is not None and bool(meta.get("ptrepo")) != bool(ptrepo):
        raise CheckpointError(
            "checkpoint was recorded under a different ptrepo setting",
            reason="config-mismatch", path=path)
    if not isinstance(meta.get("step"), int) or meta["step"] < 0:
        raise CheckpointError("checkpoint manifest lacks a valid step",
                              reason="corrupt", path=path)
    return meta, payload


def find_checkpoint(directory: str, ir_hash: str, analysis: str,
                    delta: bool, ptrepo: bool) -> Optional[str]:
    """Path of the checkpoint for this (program, config), if one exists."""
    path = checkpoint_path(directory, ir_hash, analysis, delta, ptrepo)
    return path if os.path.exists(path) else None
