"""Resource governance for analysis runs (reproduction infrastructure).

This package turns the engine from a batch script into a service-grade
component: every run can be **governed** (wall-clock / step / memory
budgets, enforced cooperatively at worklist-pop granularity), every
failure is **observable** (typed :class:`~repro.errors.ReproError`\\ s with
stage context, :class:`RunReport` diagnostics) and **recoverable** (the
degradation ladder ``vsfs → sfs → andersen`` trades precision for an
answer instead of crashing).  None of it is paper semantics: budgets and
fallback cannot change a converged result — see DESIGN.md §"Resource
governance & degradation ladder".

- :mod:`repro.runtime.budget` — :class:`Budget` / :class:`BudgetMeter`;
- :mod:`repro.runtime.degrade` — the ladder and the Andersen floor;
- :mod:`repro.runtime.faults` — deterministic fault injection;
- :mod:`repro.runtime.diagnostics` — :class:`RunReport` attached to results;
- :mod:`repro.runtime.checkpoint` — crash-safe snapshot/resume of in-flight
  solver state (:class:`CheckpointConfig` / :class:`Checkpointer`);
- :mod:`repro.runtime.resilience` — the self-healing layer's shared
  :class:`RetryPolicy` (capped backoff, deterministic seeded jitter) and
  watchdog defaults (DESIGN.md §12).
"""

from repro.runtime.budget import Budget, BudgetMeter
from repro.runtime.checkpoint import (
    CheckpointConfig,
    Checkpointer,
    checkpoint_path,
    find_checkpoint,
    load_checkpoint,
)
from repro.runtime.degrade import (
    LADDERS,
    andersen_as_flow_sensitive,
    run_ladder,
    solve_with_ladder,
)
from repro.runtime.diagnostics import Attempt, RunReport
from repro.runtime.faults import (
    FAULT_DOMAINS,
    FAULT_POINTS,
    FaultPlan,
    describe_fault_points,
    fault_domain,
)
from repro.runtime.resilience import (
    DEFAULT_HEARTBEAT_SECONDS,
    DEFAULT_WORKER_FAILURE_BUDGET,
    IO_RETRY,
    RetryPolicy,
)

__all__ = [
    "Budget",
    "BudgetMeter",
    "CheckpointConfig",
    "Checkpointer",
    "checkpoint_path",
    "find_checkpoint",
    "load_checkpoint",
    "FaultPlan",
    "FAULT_POINTS",
    "FAULT_DOMAINS",
    "fault_domain",
    "describe_fault_points",
    "RetryPolicy",
    "IO_RETRY",
    "DEFAULT_WORKER_FAILURE_BUDGET",
    "DEFAULT_HEARTBEAT_SECONDS",
    "RunReport",
    "Attempt",
    "LADDERS",
    "run_ladder",
    "solve_with_ladder",
    "andersen_as_flow_sensitive",
]
