"""Shared self-healing policy: retries with deterministic seeded jitter.

Every layer that talks to a fallible medium — the stage cache, the
checkpointer, the result store, the arena, the batch supervisor — shares
one :class:`RetryPolicy` shape instead of growing its own ad-hoc backoff
loop.  Three properties the platform depends on:

- **Capped exponential backoff.**  ``base_delay * multiplier**n``, capped
  at ``max_delay`` when one is set, so a retry storm cannot stretch into
  unbounded sleeps.
- **Deterministic seeded jitter.**  Without jitter, every worker that
  failed at the same instant retries at the same instant (``repro-wpa
  batch --jobs N`` historically woke all its backoff sleeps
  simultaneously).  The jitter here is *subtractive* (``delay * (1 -
  jitter * u)``) so the cap still bounds the worst case, and ``u`` is
  drawn from a stream keyed by ``(seed, attempt)`` — the same policy
  produces the same schedule every run, which is what keeps chaos
  schedules and tests reproducible.
- **Typed retry filters.**  :meth:`run` retries only the exception types
  the caller names (transient I/O: ``OSError``; injected chaos:
  :class:`~repro.errors.InjectedFault`) and re-raises everything else
  untouched — a retry loop must never swallow a genuine logic error.

:data:`IO_RETRY` is the tiny-delay instance the in-process self-healing
wrappers use (engine stage cache, checkpointer, result store); the batch
supervisor builds per-program policies seeded from each program's path so
concurrent programs spread their wakeups deterministically.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Tuple, Type


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``attempt`` is 1-based everywhere: ``delay(1)`` is the sleep after the
    first failure.  ``jitter`` is the fraction of each delay that is
    randomised away (0 = fixed schedule, 0.5 = up to half), drawn
    deterministically from ``seed`` — two policies with equal fields
    produce bit-equal schedules.
    """

    retries: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: Optional[float] = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delay(self, attempt: int) -> float:
        """Sleep (seconds) after the *attempt*-th failure (1-based)."""
        if attempt < 1:
            from repro.errors import AnalysisError

            raise AnalysisError(f"attempt is 1-based, got {attempt}")
        backoff = self.base_delay * self.multiplier ** (attempt - 1)
        if self.max_delay is not None:
            backoff = min(backoff, self.max_delay)
        if not self.jitter:
            return backoff
        # Keyed stream, not a shared one: delay(n) is a pure function of
        # (policy, n), so concurrent consumers and resumed runs agree.
        u = random.Random(self.seed * 1000003 + attempt).random()
        return backoff * (1.0 - self.jitter * u)

    def delays(self) -> Iterator[float]:
        """The full deterministic schedule, one delay per allowed retry."""
        for attempt in range(1, self.retries + 1):
            yield self.delay(attempt)

    def run(self, fn: Callable[[], Any], *,
            retry_on: Tuple[Type[BaseException], ...] = (OSError,),
            sleep: Callable[[float], None] = time.sleep,
            on_retry: Optional[Callable[[int, BaseException], None]] = None
            ) -> Any:
        """Call *fn*, retrying ``retry_on`` failures up to ``retries`` times.

        Exhausting the budget re-raises the last failure; exceptions not
        in ``retry_on`` propagate immediately.  ``on_retry(attempt, exc)``
        observes each retry (diagnostics/self-heal events).
        """
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                attempt += 1
                if attempt > self.retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay(attempt))

    def seeded_for(self, token: str) -> "RetryPolicy":
        """The same policy with a seed derived from *token* (stable hash).

        The batch supervisor keys each program's schedule off its file
        path: deterministic per program, spread across programs.
        """
        derived = zlib.crc32(token.encode("utf-8")) ^ self.seed
        return RetryPolicy(retries=self.retries, base_delay=self.base_delay,
                           multiplier=self.multiplier,
                           max_delay=self.max_delay, jitter=self.jitter,
                           seed=derived)


#: Policy of the in-process transient-I/O wrappers (stage-cache writes,
#: checkpoint saves, result-store puts).  Delays are tiny: these retries
#: sit inside a solve, so healing must cost milliseconds, not seconds.
IO_RETRY = RetryPolicy(retries=2, base_delay=0.01, max_delay=0.1,
                       jitter=0.5, seed=0)

#: Default per-worker failure budget of the parallel watchdog: how many
#: times one worker slot may die/hang/lose a frontier exchange before the
#: driver collapses the parallel rung onto the serial ladder.
DEFAULT_WORKER_FAILURE_BUDGET = 3

#: Default heartbeat timeout (seconds) the watchdog allows a forked
#: worker per round before treating it as hung.  In-process workers
#: cannot hang independently, so the timeout applies to fork transport.
DEFAULT_HEARTBEAT_SECONDS = 120.0
