"""IR-level snapshot codecs shared by checkpoints and the result store.

Everything here depends only on the IR and call-graph layers, so the
solvers can import it without pulling in :mod:`repro.store`'s result
(de)serialisers (which themselves import the solvers).

Two pieces of solver state reference *objects created during solving* and
therefore need replay rather than plain copying when restoring onto a
freshly compiled module:

- **field objects** are materialised lazily by ``module.field_object`` as
  pointers flow into field accesses; ids are assigned in creation order, so
  replaying the recorded ``(id, base, offset)`` triples in id order
  reproduces the exact same object numbering (and any divergence proves the
  module is not the recorded program);
- **call edges** discovered on the fly are stored as
  ``(call instruction id, callee name)`` — both stable across compiles of
  the same source.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple, Union

from repro.analysis.callgraph import CallGraph
from repro.errors import CheckpointError
from repro.ir.fingerprint import FINGERPRINT_SCHEME, module_fingerprint
from repro.ir.module import Module

__all__ = [
    "FINGERPRINT_SCHEME",
    "ir_fingerprint",
    "result_key",
    "snapshot_fields",
    "replay_fields",
    "snapshot_call_edges",
    "call_sites_by_id",
    "resolve_call_edge",
    "replay_call_edges",
]


def ir_fingerprint(module: Module) -> str:
    """Content hash of *module* under the current fingerprint scheme.

    Scheme 2 (:mod:`repro.ir.fingerprint`) hashes the module as a DAG of
    per-function content hashes rather than one flat ``print_module``
    text.  The hash still covers only source-level structure (functions,
    instructions, allocation sites), so it is stable across a solve —
    field objects materialised lazily during analysis never change it —
    while any edit to the analysed program changes it.  Keys minted under
    scheme 1 can never collide with scheme-2 keys (the scheme tag is part
    of the hashed text), so pre-refactor store entries simply miss.
    """
    return module_fingerprint(module)


def result_key(ir_hash: str, analysis: str, delta: bool, ptrepo: bool) -> str:
    """Store/checkpoint key: IR hash × solver × ablation configuration."""
    token = f"{ir_hash}|{analysis}|delta={int(bool(delta))}|ptrepo={int(bool(ptrepo))}"
    return hashlib.sha256(token.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------- field objects

def snapshot_fields(module: Module) -> List[List[int]]:
    """Field objects materialised during solving, in creation-id order."""
    fields = [
        [obj.id, obj.base.id, obj.offset]
        for obj in module.objects
        if obj.is_field()
    ]
    fields.sort(key=lambda triple: triple[0])
    return fields


def replay_fields(module: Module, fields: List[List[int]]) -> None:
    """Re-materialise :func:`snapshot_fields` output on a fresh module."""
    for fid, base_id, offset in fields:
        if base_id < 0 or base_id >= len(module.objects):
            raise CheckpointError(
                f"field object {fid} refers to unknown base object {base_id}",
                reason="corrupt")
        fobj = module.field_object(module.objects[base_id], offset)
        if fobj.id != fid:
            raise CheckpointError(
                f"field-object replay diverged: expected id {fid}, got "
                f"{fobj.id} (module does not match the recorded program)",
                reason="ir-mismatch")


# ------------------------------------------------------------------ call edges

def snapshot_call_edges(callgraph: CallGraph) -> List[List[Union[int, str]]]:
    """Call edges as ``[call_inst_id, callee_name]`` pairs, sorted."""
    edges = [
        [call.id, callee.name]
        for call, callees in callgraph.callees.items()
        for callee in callees
    ]
    edges.sort(key=lambda pair: (pair[0], pair[1]))
    return edges


def call_sites_by_id(module: Module) -> Dict[int, Any]:
    """``inst.id -> CallInst`` index used when replaying stored call edges."""
    from repro.ir.instructions import CallInst

    return {inst.id: inst for inst in module.instructions()
            if isinstance(inst, CallInst)}


def resolve_call_edge(module: Module, sites: Dict[int, Any], inst_id: int,
                      callee_name: str) -> Tuple[Any, Any]:
    """Map one stored call edge back to ``(CallInst, Function)``."""
    inst = sites.get(inst_id)
    if inst is None:
        raise CheckpointError(
            f"call edge refers to instruction {inst_id}, which is not a "
            f"call in this module", reason="ir-mismatch")
    callee = module.functions.get(callee_name)
    if callee is None:
        raise CheckpointError(
            f"call edge refers to unknown function {callee_name!r}",
            reason="ir-mismatch")
    return inst, callee


def replay_call_edges(module: Module, callgraph: CallGraph,
                      edges: List[List[Union[int, str]]]) -> None:
    sites = call_sites_by_id(module)
    for inst_id, callee_name in edges:
        inst, callee = resolve_call_edge(module, sites, inst_id, callee_name)
        callgraph.add_edge(inst, callee)
