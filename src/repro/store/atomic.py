"""Crash-safe file persistence primitives (atomic writes, sealed JSON).

Two layers, both used by checkpoints (:mod:`repro.runtime.checkpoint`), the
result store (:mod:`repro.store`) and the bench/CLI report writers:

- :func:`atomic_write_text` / :func:`atomic_write_json` — the write is
  all-or-nothing: content goes to a temporary file in the *same directory*,
  is flushed and ``fsync``\\ ed, then ``os.replace``\\ d over the target (an
  atomic rename on POSIX), and finally the directory entry itself is synced.
  A reader — or a crash — can observe the old file or the new file, never a
  truncated hybrid.

- :func:`write_sealed_json` / :func:`read_sealed_json` — a *sealed* document
  additionally carries a magic string, an artifact kind, a schema version
  and a SHA-256 checksum over the canonical encoding of its meta + payload.
  :func:`read_sealed_json` re-verifies all of it and converts every failure
  mode (unreadable bytes, truncation, bit flips, wrong kind, unknown
  schema) into a typed :class:`~repro.errors.CheckpointError` — hostile or
  damaged files are rejected, never half-loaded.

All numeric bit masks are serialised as lowercase hex strings (see
:func:`enc_mask`): JSON keeps no 53-bit float limit that way, and decoding
sidesteps CPython's ``int_max_str_digits`` guard on huge decimal literals.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import CheckpointError

#: Leading marker of every sealed document.
MAGIC = "repro-sealed"

#: Fields the checksum covers, in canonical (sorted, compact) JSON form.
_SEALED_FIELDS = ("kind", "schema", "meta", "payload")


# ------------------------------------------------------------- atomic writes

def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* atomically (tmp file + fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(directory)


def atomic_write_json(path: str, payload: Any, indent: int = 2,
                      sort_keys: bool = True) -> None:
    """Serialise *payload* and write it atomically (for reports/benchmarks)."""
    atomic_write_text(path, json.dumps(payload, indent=indent,
                                       sort_keys=sort_keys) + "\n")


def _fsync_directory(directory: str) -> None:
    """Persist the rename itself; best-effort (not every OS supports it)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


# ------------------------------------------------------------ sealed documents

def _seal_digest(document: Dict[str, Any]) -> str:
    body = json.dumps({key: document[key] for key in _SEALED_FIELDS},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def write_sealed_json(path: str, kind: str, schema: int,
                      meta: Dict[str, Any], payload: Any) -> None:
    """Atomically write a checksummed document of *kind* to *path*."""
    document: Dict[str, Any] = {
        "magic": MAGIC,
        "kind": kind,
        "schema": schema,
        "meta": meta,
        "payload": payload,
    }
    document["checksum"] = _seal_digest(document)
    # Compact encoding: checkpoints are written on a cadence, so size and
    # serialisation time matter more than human readability.
    atomic_write_text(path, json.dumps(document, separators=(",", ":")))


def read_sealed_json(path: str, kind: str,
                     schema: int) -> Tuple[Dict[str, Any], Any]:
    """Read and fully verify a sealed document; returns ``(meta, payload)``.

    Raises :class:`CheckpointError` (and nothing else) on any problem.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as err:
        raise CheckpointError(f"cannot read sealed file: {err}",
                              reason="missing", path=path) from err
    try:
        raw = data.decode("utf-8")
    except UnicodeDecodeError as err:
        raise CheckpointError(f"not valid UTF-8 (corrupt bytes): {err}",
                              reason="corrupt", path=path) from err
    try:
        document = json.loads(raw)
    except ValueError as err:
        raise CheckpointError(f"not valid JSON (truncated or corrupt): {err}",
                              reason="corrupt", path=path) from err
    if not isinstance(document, dict) or document.get("magic") != MAGIC:
        raise CheckpointError("missing sealed-document magic",
                              reason="corrupt", path=path)
    missing = [key for key in (*_SEALED_FIELDS, "checksum") if key not in document]
    if missing:
        raise CheckpointError(f"sealed document lacks fields {missing}",
                              reason="corrupt", path=path)
    if _seal_digest(document) != document["checksum"]:
        raise CheckpointError("checksum mismatch (corrupt or tampered file)",
                              reason="corrupt", path=path)
    if document["kind"] != kind:
        raise CheckpointError(
            f"artifact kind {document['kind']!r} where {kind!r} was expected",
            reason="kind", path=path)
    if document["schema"] != schema:
        raise CheckpointError(
            f"schema version {document['schema']!r} is not supported "
            f"(this build reads version {schema})",
            reason="schema", path=path)
    meta = document["meta"]
    if not isinstance(meta, dict):
        raise CheckpointError("sealed meta is not an object",
                              reason="corrupt", path=path)
    return meta, document["payload"]


def quarantine_file(path: str) -> str:
    """Move a rejected file aside (never delete evidence); returns new path.

    The renamed file keeps its bytes for post-mortems while guaranteeing
    that no later lookup can load it again.  Falls back to returning *path*
    unchanged if the rename itself fails (read-only media).
    """
    target = path + ".quarantined"
    index = 0
    while os.path.exists(target):
        index += 1
        target = f"{path}.quarantined.{index}"
    try:
        os.replace(path, target)
    except OSError:
        return path
    return target


# --------------------------------------------------------------- mask codecs

def enc_mask(mask: int) -> str:
    """Hex-encode one points-to bit mask."""
    return format(mask, "x")


def dec_mask(text: str) -> int:
    """Decode :func:`enc_mask` output (typed failure on junk)."""
    return int(text, 16)


def enc_mask_list(masks: Iterable[int]) -> List[str]:
    return [format(mask, "x") for mask in masks]


def dec_mask_list(texts: Iterable[str]) -> List[int]:
    return [int(text, 16) for text in texts]


def enc_int_map(table: Dict[int, int]) -> Dict[str, int]:
    """``{int: int}`` → JSON object with string keys (ids, versions)."""
    return {str(key): value for key, value in table.items()}


def dec_int_map(table: Dict[str, int]) -> Dict[int, int]:
    return {int(key): value for key, value in table.items()}


def enc_mask_map(table: Dict[int, int]) -> Dict[str, str]:
    """``{int: mask}`` → JSON object with hex values."""
    return {str(key): format(mask, "x") for key, mask in table.items()}


def dec_mask_map(table: Dict[str, str]) -> Dict[int, int]:
    return {int(key): int(mask, 16) for key, mask in table.items()}
