"""Content-addressed on-disk store for completed analysis results.

Keying is structural, never positional: an entry's name is
``sha256(ir_hash | analysis | delta | ptrepo)`` where ``ir_hash`` is the
SHA-256 of the module's printed IR (:func:`ir_fingerprint`).  Asking for the
same program under the same solver and ablation configuration therefore hits
the cache; recompiling an *edited* program changes the IR hash and misses —
stale answers cannot be served.

Entries are sealed documents (:mod:`repro.store.atomic`): every read
re-verifies the checksum, the artifact kind, the schema version, and the
recorded IR hash/configuration.  Anything that fails verification is moved
to quarantine (``*.quarantined``) and reported as a typed
:class:`~repro.errors.CheckpointError` — the store never silently returns
damaged or mismatched data, and a damaged entry can never be loaded twice.

Only *complete, non-degraded* results are admitted by the CLI: a degraded
answer is sound but less precise than what the key promises, and a partial
fixpoint is not sound at all.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from typing import Any, Dict, List, Optional, Union

from repro.analysis.andersen import AndersenResult, AndersenStats
from repro.analysis.callgraph import CallGraph
from repro.errors import CheckpointError
from repro.ir.fingerprint import FINGERPRINT_SCHEME
from repro.ir.module import Module
from repro.solvers.base import FlowSensitiveResult, SolverStats
from repro.store.atomic import (
    atomic_write_json,
    atomic_write_text,
    dec_mask_list,
    enc_mask_list,
    quarantine_file,
    read_sealed_json,
    write_sealed_json,
)
from repro.store.codec import (
    ir_fingerprint,
    replay_call_edges,
    replay_fields,
    result_key,
    snapshot_call_edges,
    snapshot_fields,
)

__all__ = [
    "ResultStore",
    "STORE_SCHEMA",
    "decode_result",
    "encode_result",
    "atomic_write_json",
    "atomic_write_text",
    "ir_fingerprint",
    "result_key",
]

#: Bumped whenever the stored-result payload layout changes.
#: 2: ``ir_hash`` keys derive from the per-function fingerprint scheme
#: (:data:`repro.ir.fingerprint.FINGERPRINT_SCHEME`); entries carry
#: ``fp_scheme`` so stale pre-refactor entries quarantine instead of
#: silently (mis)matching.
STORE_SCHEMA = 2


# -------------------------------------------------------------- result codecs

def encode_result(result: Union[FlowSensitiveResult, AndersenResult]) -> Dict[str, Any]:
    if isinstance(result, FlowSensitiveResult):
        return {
            "result_type": "flow-sensitive",
            "pt": enc_mask_list(result._pt),
            "call_edges": snapshot_call_edges(result.callgraph),
            "fields": snapshot_fields(result.module),
            "stats": asdict(result.stats),
            "precision_level": result.precision_level,
            "degraded_from": result.degraded_from,
        }
    if isinstance(result, AndersenResult):
        return {
            "result_type": "andersen",
            "var_pts": enc_mask_list(result._var_pts),
            "obj_pts": enc_mask_list(result._obj_pts),
            "call_edges": snapshot_call_edges(result.callgraph),
            "fields": snapshot_fields(result.module),
            "stats": asdict(result.stats),
        }
    raise CheckpointError(
        f"cannot store result of type {type(result).__name__}",
        reason="kind")


def decode_result(module: Module, payload: Dict[str, Any]
                   ) -> Union[FlowSensitiveResult, AndersenResult]:
    result_type = payload["result_type"]
    replay_fields(module, payload["fields"])
    callgraph = CallGraph(module)
    replay_call_edges(module, callgraph, payload["call_edges"])
    if result_type == "flow-sensitive":
        stats = SolverStats(**payload["stats"])
        return FlowSensitiveResult(
            module, dec_mask_list(payload["pt"]), callgraph, stats,
            precision_level=payload.get("precision_level"),
            degraded_from=payload.get("degraded_from"))
    if result_type == "andersen":
        stats = AndersenStats(**payload["stats"])
        return AndersenResult(
            module, dec_mask_list(payload["var_pts"]),
            dec_mask_list(payload["obj_pts"]), callgraph, stats)
    raise CheckpointError(
        f"unknown stored result type {result_type!r}", reason="corrupt")


# -------------------------------------------------------------------- the store

class ResultStore:
    """Directory of sealed result entries, addressed by :func:`result_key`."""

    KIND = "result"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined: List[str] = []
        self.last_path: Optional[str] = None  # entry behind the last hit/put

    def entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"result-{key}.json")

    @property
    def arena_path(self) -> str:
        """Where this store keeps the shared mask arena (see
        :class:`~repro.datastructs.arena.PTArena`).  Deliberately not part
        of :func:`result_key`: the arena is a pure intern cache and never
        changes what a solve computes."""
        return os.path.join(self.directory, "arena.bin")

    # ---------------------------------------------------------------- writing

    def put(self, module: Module, analysis: str, delta: bool, ptrepo: bool,
            result: Union[FlowSensitiveResult, AndersenResult],
            ir_hash: Optional[str] = None, faults: Any = None) -> str:
        """Persist *result* under its content key; returns the entry path.

        *faults* is an optional :class:`~repro.runtime.faults.FaultPlan`;
        the ``result_store_put`` point fires before the write, so chaos
        schedules can prove callers treat a failed put as skippable
        (the answer is already computed — losing the cache entry may
        never lose the run).
        """
        if faults is not None:
            faults.fire("result_store_put", stage=f"store:{analysis}")
        ir_hash = ir_hash or ir_fingerprint(module)
        key = result_key(ir_hash, analysis, delta, ptrepo)
        path = self.entry_path(key)
        meta = {
            "ir_hash": ir_hash,
            "fp_scheme": FINGERPRINT_SCHEME,
            "analysis": analysis,
            "delta": bool(delta),
            "ptrepo": bool(ptrepo),
        }
        write_sealed_json(path, self.KIND, STORE_SCHEMA, meta,
                          encode_result(result))
        self.last_path = path
        return path

    # ---------------------------------------------------------------- reading

    def get(self, module: Module, analysis: str, delta: bool, ptrepo: bool,
            ir_hash: Optional[str] = None
            ) -> Optional[Union[FlowSensitiveResult, AndersenResult]]:
        """Load the entry for this configuration, fully verified.

        Returns ``None`` on a clean miss.  A present-but-untrustworthy
        entry (corrupt bytes, bad checksum, recorded for a different
        program or configuration, undecodable payload) is quarantined and
        reported as :class:`CheckpointError`.
        """
        ir_hash = ir_hash or ir_fingerprint(module)
        key = result_key(ir_hash, analysis, delta, ptrepo)
        path = self.entry_path(key)
        if not os.path.exists(path):
            self.misses += 1
            return None
        try:
            meta, payload = read_sealed_json(path, self.KIND, STORE_SCHEMA)
            if meta.get("fp_scheme") != FINGERPRINT_SCHEME:
                raise CheckpointError(
                    f"entry was recorded under fingerprint scheme "
                    f"{meta.get('fp_scheme')!r}, not {FINGERPRINT_SCHEME} — "
                    f"stale pre-refactor entry", reason="schema", path=path)
            if meta.get("ir_hash") != ir_hash:
                raise CheckpointError(
                    "entry was recorded for a different program "
                    f"(IR hash {meta.get('ir_hash')!r})",
                    reason="ir-mismatch", path=path)
            if (meta.get("analysis") != analysis
                    or bool(meta.get("delta")) != bool(delta)
                    or bool(meta.get("ptrepo")) != bool(ptrepo)):
                raise CheckpointError(
                    "entry was recorded for a different solver/ablation "
                    f"configuration ({meta.get('analysis')}, "
                    f"delta={meta.get('delta')}, ptrepo={meta.get('ptrepo')})",
                    reason="config-mismatch", path=path)
            try:
                result = decode_result(module, payload)
            except CheckpointError:
                raise
            except (KeyError, ValueError, TypeError, IndexError,
                    AttributeError) as err:
                raise CheckpointError(
                    f"stored payload does not decode cleanly: "
                    f"{type(err).__name__}: {err}",
                    reason="corrupt", path=path) from err
        except CheckpointError as err:
            quarantined = quarantine_file(path)
            self.quarantined.append(quarantined)
            err.path = quarantined
            raise
        self.hits += 1
        self.last_path = path
        return result
