"""Compute the singleton set ``SN`` (Table I) used for strong updates.

A flow-sensitive solver may *strong-update* (kill the old points-to set of)
an object only if the abstract object represents **exactly one** runtime
location.  Following SVF's ``isStrongUpdate`` conditions, an object is a
singleton iff all of the following hold:

- it is not a heap object (one ``malloc`` site may execute many times);
- it is not an array (one abstract object summarises all elements);
- its allocation site is not inside a natural loop;
- its function is not potentially executed more than once *simultaneously* —
  conservatively, not part of recursion.  Recursion is judged on the
  *pessimistic* call graph: direct call edges plus an edge from every
  indirect call site to every address-taken function (this needs no pointer
  analysis and over-approximates any call graph a pointer analysis could
  produce, so it is sound to use before Andersen runs);
- global objects are singletons unless arrays (there is one copy of each
  global).

Field objects inherit their base's singleton-ness at creation; this pass
also refreshes fields derived before it ran.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.datastructs.graph import DiGraph, strongly_connected_components
from repro.ir.function import Function
from repro.ir.instructions import AllocInst, CallInst
from repro.ir.module import Module
from repro.ir.values import MemObject, ObjectKind
from repro.passes.loops import blocks_in_loops


def _pessimistic_callgraph(module: Module) -> DiGraph:
    """Call graph assuming every indirect call may reach every
    address-taken function."""
    graph: DiGraph = DiGraph()
    address_taken = [
        inst.obj.function  # type: ignore[attr-defined]
        for inst in module.instructions()
        if isinstance(inst, AllocInst) and inst.obj.kind is ObjectKind.FUNCTION
    ]
    for function in module.functions.values():
        graph.add_node(function)
        for inst in function.instructions():
            if not isinstance(inst, CallInst):
                continue
            if inst.is_indirect():
                for target in address_taken:
                    graph.add_edge(function, target)
            else:
                graph.add_edge(function, inst.callee)
    return graph


def _recursive_functions(module: Module) -> Set[Function]:
    """Functions in a call-graph cycle (including self-recursion)."""
    graph = _pessimistic_callgraph(module)
    recursive: Set[Function] = set()
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            recursive.update(component)
        elif graph.has_edge(component[0], component[0]):
            recursive.add(component[0])
    return recursive


def mark_singletons(module: Module) -> int:
    """Set :attr:`MemObject.is_singleton` module-wide; return singleton count."""
    recursive = _recursive_functions(module)
    loops_cache: Dict[Function, set] = {}

    for obj in module.objects:
        obj.is_singleton = False

    count = 0
    for obj in module.objects:
        if obj.is_array or obj.kind in (ObjectKind.HEAP, ObjectKind.FIELD, ObjectKind.FUNCTION):
            continue
        if obj.kind is ObjectKind.GLOBAL:
            obj.is_singleton = True
            count += 1
            continue
        # Stack object: singleton unless its frame can be live twice or its
        # alloca re-executes within one activation.
        site = obj.alloc_site
        if not isinstance(site, AllocInst) or site.block is None:
            continue
        function = site.block.function
        if function in recursive:
            continue
        if function not in loops_cache:
            loops_cache[function] = blocks_in_loops(function)
        if site.block in loops_cache[function]:
            continue
        obj.is_singleton = True
        count += 1

    # Field objects inherit from their (possibly re-judged) base.
    for obj in module.objects:
        if obj.kind is ObjectKind.FIELD and obj.base is not None:
            obj.is_singleton = obj.base.is_singleton and not obj.base.is_array
            if obj.is_singleton:
                count += 1
    return count
