"""Natural-loop detection.

Used by the singleton pass: a stack object allocated inside a loop may stand
for many runtime objects, so it must not be strong-updated.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.passes.cfg import CFGInfo
from repro.passes.dominators import DominatorTree


def find_back_edges(function: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """Edges ``tail -> head`` where *head* dominates *tail* (natural loops)."""
    if function.is_declaration:
        return []
    cfg = CFGInfo(function)
    domtree = DominatorTree(function, cfg)
    back_edges = []
    for block in cfg.rpo:
        for succ in cfg.succs[block]:
            if domtree.dominates(succ, block):
                back_edges.append((block, succ))
    return back_edges


def blocks_in_loops(function: Function) -> Set[BasicBlock]:
    """The union of all natural loop bodies of *function*.

    For a back edge ``tail -> head``, the loop body is *head* plus every
    block that can reach *tail* without passing through *head*.
    """
    if function.is_declaration:
        return set()
    cfg = CFGInfo(function)
    in_loop: Set[BasicBlock] = set()
    for tail, head in find_back_edges(function):
        body = {head, tail}
        work = [tail]
        while work:
            block = work.pop()
            for pred in cfg.preds.get(block, []):
                if pred not in body:
                    body.add(pred)
                    work.append(pred)
        in_loop.update(body)
    return in_loop
