"""CFG cleanup: remove blocks unreachable from the entry.

The frontend parks statements after ``return``/``break`` in dead blocks and
loop lowering can produce never-entered latch blocks.  Downstream passes
(mem2reg's renaming walk, the verifier's phi checks, memory SSA) all assume
every predecessor of a reachable block is itself reachable, so the dead
blocks are pruned — and phi incomings from pruned predecessors dropped —
before anything else runs.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import PhiInst
from repro.ir.module import Module
from repro.passes.cfg import reverse_postorder


def remove_unreachable_blocks_function(function: Function) -> int:
    """Prune unreachable blocks of *function*; return how many were removed."""
    if function.is_declaration:
        return 0
    reachable = set(reverse_postorder(function))
    dead = [block for block in function.blocks if block not in reachable]
    if not dead:
        return 0
    for block in dead:
        function.blocks.remove(block)
        function._block_names.pop(block.name, None)
        for inst in block.instructions:
            inst.block = None
    dead_set = set(dead)
    for block in function.blocks:
        for phi in block.phis():
            phi.incomings = [
                (pred, value) for pred, value in phi.incomings if pred not in dead_set
            ]
    return len(dead)


def remove_unreachable_blocks(module: Module) -> int:
    """Prune unreachable blocks module-wide; renumber if anything changed."""
    removed = sum(
        remove_unreachable_blocks_function(function)
        for function in module.functions.values()
    )
    if removed:
        module.renumber()
    return removed
