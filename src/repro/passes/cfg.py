"""CFG utilities: cached predecessor/successor maps and orderings.

:class:`BasicBlock.predecessors` recomputes by scanning the function; the
passes below need many queries, so :class:`CFGInfo` snapshots the CFG once.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


class CFGInfo:
    """An immutable snapshot of a function's CFG.

    Invalidated by any pass that edits terminators or adds blocks — build a
    fresh one afterwards.
    """

    def __init__(self, function: Function):
        self.function = function
        self.succs: Dict[BasicBlock, List[BasicBlock]] = {}
        self.preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in function.blocks}
        for block in function.blocks:
            succs = block.successors()
            self.succs[block] = succs
            for succ in succs:
                self.preds[succ].append(block)
        self.rpo = reverse_postorder(function)
        self.rpo_index: Dict[BasicBlock, int] = {block: i for i, block in enumerate(self.rpo)}

    def reachable(self) -> List[BasicBlock]:
        """Blocks reachable from the entry, in reverse postorder."""
        return self.rpo


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Reverse postorder over blocks reachable from the entry (iterative DFS)."""
    if not function.blocks:
        return []
    entry = function.entry_block
    visited = {entry}
    postorder: List[BasicBlock] = []
    # stack of (block, successor iterator)
    stack = [(entry, iter(entry.successors()))]
    while stack:
        block, succs = stack[-1]
        advanced = False
        for succ in succs:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            postorder.append(block)
            stack.pop()
    postorder.reverse()
    return postorder
