"""Unify-returns pass (LLVM's ``UnifyFunctionExitNodes``).

The paper's IR requires a single ``FUNEXIT`` per function.  This pass
rewrites every function with more than one ``ret`` so that all returning
blocks branch to a fresh ``unified_exit`` block whose single ``ret`` returns
a phi over the original return values.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import BranchInst, Operand, PhiInst, RetInst
from repro.ir.module import Module
from repro.ir.values import Variable


def unify_returns_function(function: Function) -> bool:
    """Ensure *function* has exactly one ``ret``; return True if rewritten."""
    if function.is_declaration:
        return False
    ret_sites: List[Tuple[BasicBlock, RetInst]] = [
        (block, inst)
        for block in function.blocks
        for inst in block.instructions
        if isinstance(inst, RetInst)
    ]
    if len(ret_sites) <= 1:
        return False

    exit_block = function.add_block("unified_exit")
    returns_value = any(inst.value is not None for __, inst in ret_sites)
    incomings: List[Tuple[BasicBlock, Operand]] = []
    for block, inst in ret_sites:
        block.instructions.remove(inst)
        inst.block = None
        branch = BranchInst([exit_block])
        branch.block = block
        block.instructions.append(branch)
        if returns_value and inst.value is not None:
            incomings.append((block, inst.value))

    ret_value: "Operand | None" = None
    if returns_value and incomings:
        if len(incomings) == 1:
            ret_value = incomings[0][1]
        else:
            phi_var = Variable(f"{function.name}.retval")
            phi = PhiInst(phi_var, incomings)
            exit_block.append(phi)
            ret_value = phi_var
    exit_block.append(RetInst(ret_value))
    return True


def unify_returns(module: Module) -> int:
    """Run unify-returns over every function; return the number rewritten."""
    count = sum(1 for function in module.functions.values() if unify_returns_function(function))
    if count:
        module.renumber()
    return count
