"""mem2reg: promote non-address-taken stack slots to SSA registers.

The mini-C frontend lowers *every* local variable to an ``alloca`` plus
loads/stores (the easy-to-generate form).  This pass rebuilds the *partial
SSA form* of §II-A: locals whose address never escapes become top-level SSA
variables with ``PHI`` joins, while genuinely address-taken locals keep their
``alloca`` and stay in the address-taken world.

A stack slot is promotable iff its address variable is used **only** as the
pointer operand of loads and stores (never stored *as a value*, passed to a
call, cast, compared, returned, or indexed by ``FIELD``) and the object is a
scalar (no fields, not an array).

Classic algorithm: phi insertion at the iterated dominance frontier of the
store blocks, then a renaming walk over the dominator tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    Instruction,
    LoadInst,
    Operand,
    PhiInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.types import INT
from repro.ir.values import Constant, ObjectKind, Value, Variable
from repro.passes.cfg import CFGInfo
from repro.passes.dominators import DominatorTree, dominance_frontiers, iterated_dominance_frontier

#: Value used for reads of never-written promoted slots (C's "uninitialised").
UNDEF = Constant(0, INT)


def _promotable_allocas(function: Function, reachable: Set[BasicBlock]) -> List[AllocInst]:
    """Allocas of *function* that can be promoted to SSA registers."""
    allocas: List[AllocInst] = []
    # Map each candidate address variable to its alloca.
    candidates: Dict[Variable, AllocInst] = {}
    for inst in function.instructions():
        if (
            isinstance(inst, AllocInst)
            and inst.obj.kind is ObjectKind.STACK
            and inst.obj.num_fields == 0
            and not inst.obj.is_array
        ):
            candidates[inst.dst] = inst

    disqualified: Set[Variable] = set()
    for inst in function.instructions():
        if inst.block not in reachable:
            for operand in inst.operands():
                if isinstance(operand, Variable):
                    disqualified.add(operand)
            continue
        if isinstance(inst, LoadInst):
            continue  # load uses the address only as a pointer
        if isinstance(inst, StoreInst):
            if isinstance(inst.value, Variable):
                disqualified.add(inst.value)  # address escapes as a value
            continue
        for operand in inst.operands():
            if isinstance(operand, Variable):
                disqualified.add(operand)

    for var, alloca in candidates.items():
        if var not in disqualified and alloca.block in reachable:
            allocas.append(alloca)
    return allocas


def promote_allocas_function(function: Function) -> int:
    """Promote the promotable allocas of *function*; return how many."""
    if function.is_declaration:
        return 0
    cfg = CFGInfo(function)
    reachable = set(cfg.rpo)
    allocas = _promotable_allocas(function, reachable)
    if not allocas:
        return 0
    domtree = DominatorTree(function, cfg)
    frontiers = dominance_frontiers(domtree)

    slot_of: Dict[Variable, AllocInst] = {alloca.dst: alloca for alloca in allocas}
    phi_slot: Dict[PhiInst, AllocInst] = {}

    # ---- Phi insertion at the iterated dominance frontier of store blocks.
    for alloca in allocas:
        def_blocks = [
            inst.block
            for inst in function.instructions()
            if isinstance(inst, StoreInst) and inst.ptr is alloca.dst and inst.block in reachable
        ]
        for join in iterated_dominance_frontier(frontiers, def_blocks):
            phi = PhiInst(Variable(f"{alloca.obj.name}.phi.{join.name}"))
            join.insert_front(phi)
            phi_slot[phi] = alloca

    # ---- Renaming walk over the dominator tree.
    replacements: Dict[Variable, Value] = {}
    dead: List[Instruction] = []
    # stack entries: (block, {slot var -> current value}) — copied per child.
    entry = function.entry_block
    stack: List[Tuple[BasicBlock, Dict[Variable, Value]]] = [(entry, {})]
    while stack:
        block, incoming = stack.pop()
        current = dict(incoming)
        for inst in list(block.instructions):
            if isinstance(inst, PhiInst) and inst in phi_slot:
                current[phi_slot[inst].dst] = inst.dst
            elif isinstance(inst, AllocInst) and inst.dst in slot_of:
                dead.append(inst)
            elif isinstance(inst, LoadInst) and isinstance(inst.ptr, Variable) \
                    and inst.ptr in slot_of:
                replacements[inst.dst] = current.get(inst.ptr, UNDEF)
                dead.append(inst)
            elif isinstance(inst, StoreInst) and isinstance(inst.ptr, Variable) \
                    and inst.ptr in slot_of:
                current[inst.ptr] = inst.value
                dead.append(inst)
        for succ in cfg.succs[block]:
            for phi in succ.phis():
                slot = phi_slot.get(phi)
                if slot is not None:
                    phi.add_incoming(block, current.get(slot.dst, UNDEF))  # type: ignore[arg-type]
        for child in domtree.children.get(block, []):
            stack.append((child, current))

    # ---- Resolve replacement chains (a load may forward another load).
    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, Variable) and value in replacements:
            if value in seen:  # defensive; cannot happen with dominance
                break
            seen.add(value)
            value = replacements[value]
        return value

    for inst in function.instructions():
        if isinstance(inst, PhiInst):
            inst.incomings = [(blk, resolve(val)) for blk, val in inst.incomings]  # type: ignore[misc]
        else:
            for operand in list(inst.operands()):
                resolved = resolve(operand)
                if resolved is not operand:
                    inst.replace_uses(operand, resolved)

    for inst in dead:
        function.remove_instruction(inst)

    # Prune trivial phis (all incomings identical) introduced by the IDF
    # over-approximation; repeat until stable.
    changed = True
    while changed:
        changed = False
        for block in function.blocks:
            for phi in list(block.phis()):
                if phi not in phi_slot:
                    continue
                sources = {value for __, value in phi.incomings if value is not phi.dst}
                if len(sources) == 1:
                    replacement = sources.pop()
                    for inst in function.instructions():
                        if inst is not phi:
                            inst.replace_uses(phi.dst, replacement)
                    block.instructions.remove(phi)
                    phi.block = None
                    changed = True
    return len(allocas)


def promote_allocas(module: Module) -> int:
    """Run mem2reg on every function; renumber; return total promoted."""
    total = sum(promote_allocas_function(function) for function in module.functions.values())
    module.renumber()
    return total
