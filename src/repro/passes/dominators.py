"""Dominator trees and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" iterative dominator
algorithm and the standard dominance-frontier construction, both of which are
what ``mem2reg`` (top-level SSA) and memory SSA (MEMPHI placement) are built
on.  The *iterated* dominance frontier gives the phi-insertion points for a
set of defining blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.passes.cfg import CFGInfo


class DominatorTree:
    """Immediate-dominator tree of the blocks reachable from the entry."""

    def __init__(self, function: Function, cfg: Optional[CFGInfo] = None):
        self.function = function
        self.cfg = cfg or CFGInfo(function)
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._depth: Dict[BasicBlock, int] = {}
        self._compute()

    def _compute(self) -> None:
        rpo = self.cfg.rpo
        if not rpo:
            return
        entry = rpo[0]
        index = self.cfg.rpo_index
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                preds = [pred for pred in self.cfg.preds[block] if pred in idom]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        self.idom = {block: (None if block is entry else idom[block]) for block in idom}
        self.children = {block: [] for block in idom}
        for block, parent in self.idom.items():
            if parent is not None:
                self.children[parent].append(block)
        # depths for dominance queries
        self._depth[entry] = 0
        stack = [entry]
        while stack:
            block = stack.pop()
            for child in self.children[block]:
                self._depth[child] = self._depth[block] + 1
                stack.append(child)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if *a* dominates *b* (reflexively)."""
        if a not in self._depth or b not in self._depth:
            return False
        while self._depth.get(b, -1) > self._depth[a]:
            b = self.idom[b]  # type: ignore[assignment]
        return a is b

    def preorder(self) -> List[BasicBlock]:
        """Dominator-tree preorder (the renaming walk order for SSA)."""
        if not self.cfg.rpo:
            return []
        order: List[BasicBlock] = []
        stack = [self.cfg.rpo[0]]
        while stack:
            block = stack.pop()
            order.append(block)
            # reversed so children visit in natural order
            stack.extend(reversed(self.children.get(block, [])))
        return order


def dominance_frontiers(domtree: DominatorTree) -> Dict[BasicBlock, Set[BasicBlock]]:
    """DF(b) for every reachable block, via the Cooper et al. algorithm:
    walk up from each predecessor of each block to the block's idom.

    Single-predecessor blocks are *not* skipped (the textbook ≥2-preds
    shortcut misses a self-looping entry block, whose frontier contains
    itself by the definition DF(a) = {b : a dom pred(b) ∧ ¬(a sdom b)}).
    The walk is a no-op for the ordinary single-pred case anyway, because
    then idom(b) is exactly the predecessor.
    """
    frontiers: Dict[BasicBlock, Set[BasicBlock]] = {block: set() for block in domtree.idom}
    for block in domtree.idom:
        preds = [pred for pred in domtree.cfg.preds[block] if pred in domtree.idom]
        for pred in preds:
            runner: "BasicBlock | None" = pred
            while runner is not None and runner is not domtree.idom[block]:
                frontiers[runner].add(block)
                runner = domtree.idom[runner]
    return frontiers


def iterated_dominance_frontier(
    frontiers: Dict[BasicBlock, Set[BasicBlock]],
    def_blocks: Iterable[BasicBlock],
) -> Set[BasicBlock]:
    """DF+ of *def_blocks*: the phi-placement set (fixed point of DF)."""
    result: Set[BasicBlock] = set()
    work = [block for block in set(def_blocks) if block in frontiers]
    visited = set(work)
    while work:
        block = work.pop()
        for frontier_block in frontiers[block]:
            if frontier_block not in result:
                result.add(frontier_block)
                if frontier_block not in visited:
                    visited.add(frontier_block)
                    work.append(frontier_block)
    return result
