"""The standard pre-analysis pass pipeline.

Every frontend/tests entry point funnels through :func:`prepare_module` so
that all analyses see the same canonical form: single FUNEXIT per function,
partial SSA, singleton flags set, dense ids assigned.

(Formerly ``repro.passes.pipeline``; renamed to end the clash with
:mod:`repro.pipeline`, which is the analysis-stage pipeline.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.passes.mem2reg import promote_allocas
from repro.passes.simplify_cfg import remove_unreachable_blocks
from repro.passes.singletons import mark_singletons
from repro.passes.unify_returns import unify_returns


@dataclass
class PipelineStats:
    """What the pipeline did; useful in logs and tests."""

    removed_blocks: int
    unified_functions: int
    promoted_allocas: int
    singleton_objects: int


def prepare_module(module: Module, promote: bool = True, verify: bool = True) -> PipelineStats:
    """Normalise *module* for analysis (idempotent).

    :param promote: run mem2reg (disable to analyse the unpromoted form).
    :param verify: run the structural verifier after transformation.
    """
    removed = remove_unreachable_blocks(module)
    unified = unify_returns(module)
    promoted = promote_allocas(module) if promote else 0
    singletons = mark_singletons(module)
    module.renumber()
    if verify:
        verify_module(module, ssa=promote)
    return PipelineStats(removed, unified, promoted, singletons)
