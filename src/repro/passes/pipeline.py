"""Deprecated alias of :mod:`repro.passes.prepare`.

The pre-analysis pass pipeline moved to ``repro.passes.prepare`` so the
name no longer clashes with :mod:`repro.pipeline` (the analysis-stage
pipeline).  Importing this module keeps working but warns; new code
should import :func:`prepare_module`/:class:`PipelineStats` from
``repro.passes.prepare`` (or just ``repro.passes``).
"""

from __future__ import annotations

import warnings

from repro.passes.prepare import PipelineStats, prepare_module

warnings.warn(
    "repro.passes.pipeline is deprecated; import prepare_module from "
    "repro.passes.prepare (or repro.passes) instead",
    DeprecationWarning, stacklevel=2)

__all__ = ["PipelineStats", "prepare_module"]
