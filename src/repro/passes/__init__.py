"""IR transformation and CFG-analysis passes.

The pipeline a module goes through before pointer analysis (§II of the
paper)::

    frontend IR  --unify_returns-->  single FUNEXIT per function
                 --mem2reg------->  partial SSA (top-level variables)
                 --mark_singletons->  SN set for strong updates

Supporting analyses: CFG utilities (:mod:`repro.passes.cfg`), dominator
trees and (iterated) dominance frontiers (:mod:`repro.passes.dominators`),
and natural-loop detection (:mod:`repro.passes.loops`).
"""

from repro.passes.cfg import CFGInfo, reverse_postorder
from repro.passes.dominators import DominatorTree, dominance_frontiers, iterated_dominance_frontier
from repro.passes.loops import blocks_in_loops, find_back_edges
from repro.passes.mem2reg import promote_allocas
from repro.passes.singletons import mark_singletons
from repro.passes.simplify_cfg import remove_unreachable_blocks
from repro.passes.unify_returns import unify_returns
from repro.passes.prepare import PipelineStats, prepare_module

__all__ = [
    "PipelineStats",
    "CFGInfo",
    "reverse_postorder",
    "DominatorTree",
    "dominance_frontiers",
    "iterated_dominance_frontier",
    "find_back_edges",
    "blocks_in_loops",
    "promote_allocas",
    "mark_singletons",
    "remove_unreachable_blocks",
    "unify_returns",
    "prepare_module",
]
