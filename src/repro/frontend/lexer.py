"""Tokenizer for the mini-C language."""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple

from repro.errors import ParseError

KEYWORDS = {
    "int",
    "void",
    "struct",
    "fnptr",
    "if",
    "else",
    "while",
    "do",
    "for",
    "break",
    "continue",
    "return",
    "sizeof",
    "malloc",
    "null",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<num>\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>->|\+\+|--|&&|\|\||[<>=!]=|[-+*/%&|^]=|[-+*/%&|^<>=!~.,;:(){}\[\]?])
    """,
    re.VERBOSE | re.DOTALL,
)


class Token(NamedTuple):
    kind: str  # 'num' | 'ident' | 'kw' | 'op' | 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; comments and whitespace are skipped.

    Raises :class:`ParseError` on an unrecognised character.
    """
    tokens: List[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        kind = match.lastgroup or ""
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "ident" and text in KEYWORDS:
            tokens.append(Token("kw", text, line, column))
        elif kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rindex("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, 1))
    return tokens
