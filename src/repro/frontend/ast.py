"""AST node definitions for the mini-C language.

Plain dataclasses; positions (line, column) are carried for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.frontend.ctypes import CType


@dataclass
class Node:
    line: int = 0
    column: int = 0


# --------------------------------------------------------------- expressions


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """``*e``, ``&e``, ``-e``, ``!e``, ``~e``."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``target = value`` where target is any lvalue expression."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Call(Expr):
    """``callee(args...)`` — direct if callee names a function, else indirect."""

    callee: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Member(Expr):
    """``obj.name`` (arrow=False) or ``obj->name`` (arrow=True)."""

    obj: Optional[Expr] = None
    name: str = ""
    arrow: bool = False


@dataclass
class Index(Expr):
    """``base[index]`` — arrays collapse to one abstract object."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Malloc(Expr):
    """``malloc(sizeof(T))`` / ``malloc(n)``; *ctype* is None for raw sizes."""

    ctype: Optional[CType] = None


@dataclass
class Cast(Expr):
    """``(T) e`` — points-to flows through unchanged."""

    ctype: Optional[CType] = None
    operand: Optional[Expr] = None


# ---------------------------------------------------------------- statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class DeclStmt(Stmt):
    name: str = ""
    ctype: Optional[CType] = None
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    els: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    """``do body while (cond);`` — body runs at least once."""

    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """``break;`` — jump past the innermost enclosing loop."""


@dataclass
class Continue(Stmt):
    """``continue;`` — jump to the innermost loop's next-iteration point."""


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


# ----------------------------------------------------------------- top level


@dataclass
class StructDecl(Node):
    name: str = ""
    fields: List[Tuple[str, CType]] = field(default_factory=list)


@dataclass
class GlobalDecl(Node):
    name: str = ""
    ctype: Optional[CType] = None
    init: Optional[Expr] = None


@dataclass
class ParamDecl(Node):
    name: str = ""
    ctype: Optional[CType] = None


@dataclass
class FuncDef(Node):
    name: str = ""
    ret_type: Optional[CType] = None
    params: List[ParamDecl] = field(default_factory=list)
    body: Optional[Block] = None  # None for declarations


@dataclass
class Program(Node):
    structs: List[StructDecl] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
