"""The mini-C static type system.

Types matter to the frontend for two things only:

1. deciding whether an expression is a pointer (so the lowering knows which
   instructions to emit), and
2. resolving struct member names to the *flattened field offsets* the
   analysis uses (the paper's ``f_k``; nested structs flatten the way SVF
   flattens LLVM aggregates, so ``outer.inner.x`` is one offset from the
   base object).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError


class CType:
    """Base class for mini-C types."""

    def is_pointer_like(self) -> bool:
        """True if values of this type can carry points-to information."""
        return False

    def flattened_size(self) -> int:
        """Number of flattened scalar slots this type occupies."""
        return 1


class CInt(CType):
    _instance: Optional["CInt"] = None

    def __new__(cls) -> "CInt":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "int"


class CVoid(CType):
    _instance: Optional["CVoid"] = None

    def __new__(cls) -> "CVoid":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"


class CPtr(CType):
    def __init__(self, pointee: CType):
        self.pointee = pointee

    def is_pointer_like(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.pointee!r}*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CPtr) and self.pointee == other.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class CFnPtr(CType):
    """An opaque function pointer (the ``fnptr`` keyword)."""

    _instance: Optional["CFnPtr"] = None

    def __new__(cls) -> "CFnPtr":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def is_pointer_like(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "fnptr"


class CStruct(CType):
    """A struct type; field offsets are flattened slot indices."""

    def __init__(self, name: str):
        self.name = name
        self.fields: List[Tuple[str, CType]] = []
        self._offsets: Optional[Dict[str, int]] = None
        self._size: Optional[int] = None

    def define(self, fields: List[Tuple[str, CType]]) -> None:
        self.fields = fields
        self._offsets = None
        self._size = None

    def _layout(self) -> None:
        offsets: Dict[str, int] = {}
        offset = 0
        for fname, ftype in self.fields:
            offsets[fname] = offset
            offset += ftype.flattened_size()
        self._offsets = offsets
        self._size = max(offset, 1)

    def field_offset(self, name: str) -> int:
        if self._offsets is None:
            self._layout()
        assert self._offsets is not None
        if name not in self._offsets:
            raise ParseError(f"struct {self.name} has no field {name!r}")
        return self._offsets[name]

    def field_type(self, name: str) -> CType:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise ParseError(f"struct {self.name} has no field {name!r}")

    def flattened_size(self) -> int:
        if self._size is None:
            self._layout()
        assert self._size is not None
        return self._size

    def __repr__(self) -> str:
        return f"struct {self.name}"


class CArray(CType):
    def __init__(self, elem: CType, size: int):
        self.elem = elem
        self.size = size

    def is_pointer_like(self) -> bool:
        # An array *name* decays to a pointer to its (collapsed) object.
        return True

    def flattened_size(self) -> int:
        # The whole array collapses to one slot set; keep the element size so
        # struct members after an array of structs stay distinct.
        return self.elem.flattened_size()

    def __repr__(self) -> str:
        return f"{self.elem!r}[{self.size}]"


INT_TYPE = CInt()
VOID_TYPE = CVoid()
FNPTR_TYPE = CFnPtr()


class StructTable:
    """Registry of struct types declared in a translation unit."""

    def __init__(self) -> None:
        self._structs: Dict[str, CStruct] = {}

    def declare(self, name: str) -> CStruct:
        struct = self._structs.get(name)
        if struct is None:
            struct = CStruct(name)
            self._structs[name] = struct
        return struct

    def lookup(self, name: str) -> CStruct:
        struct = self._structs.get(name)
        if struct is None:
            raise ParseError(f"unknown struct {name!r}")
        return struct

    def __contains__(self, name: str) -> bool:
        return name in self._structs
