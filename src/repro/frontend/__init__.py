"""A mini-C frontend.

The paper analyses C/C++ programs compiled to LLVM bitcode; this package
plays the Clang role for a C subset rich enough to produce every pointer
pattern the analysis cares about:

- pointers of any depth, address-of, dereference;
- ``struct`` types with named fields, ``.``/``->`` access, nested structs;
- arrays (collapsed to a single abstract object, as field-insensitive
  analyses do);
- heap allocation via ``malloc(sizeof ...)``;
- function pointers (``fnptr``/C function types by name), indirect calls;
- globals with initialisers (lowered into ``__module_init__``, which ends by
  calling ``main``);
- ``if``/``else``, ``while``, ``for``, ``return``, nested blocks, integer
  arithmetic and comparisons.

Entry point: :func:`compile_c` (source text → analysed-ready
:class:`~repro.ir.module.Module`).
"""

from repro.frontend.compile import compile_c

__all__ = ["compile_c"]
