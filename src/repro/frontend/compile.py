"""One-call compilation: mini-C source → analysis-ready IR module."""

from __future__ import annotations

from typing import Optional

from repro.frontend.cparser import parse_c
from repro.frontend.lower import ModuleLowering
from repro.ir.module import Module
from repro.passes.prepare import prepare_module


def compile_c(
    source: str,
    name: str = "cmodule",
    promote: bool = True,
    prepare: bool = True,
) -> Module:
    """Compile mini-C *source* into an IR :class:`Module`.

    :param promote: run mem2reg so the module is in partial SSA form
        (disable to inspect the raw Clang-style lowering).
    :param prepare: run the full pre-analysis pipeline (unify returns,
        mem2reg, singleton marking, verification).  When False the caller
        must run :func:`repro.passes.prepare_module` before analysing.
    """
    program, __ = parse_c(source)
    module = ModuleLowering(program, name).lower()
    module.renumber()
    if prepare:
        prepare_module(module, promote=promote)
    return module
