"""Lowering: mini-C AST → the LLVM-like IR.

The lowering is deliberately Clang-like:

- every local variable becomes an ``alloca`` + loads/stores (mem2reg later
  promotes the non-address-taken ones into partial SSA);
- every global becomes a ``global_alloc`` in the synthetic
  ``__module_init__`` function, whose top-level address variable is shared
  by all functions, and whose initialiser store also runs in
  ``__module_init__`` — which finally calls ``main``;
- ``s.f`` / ``p->f`` become ``FIELD`` instructions with *flattened* offsets;
- arrays collapse to a single abstract object: ``&a[i]`` is the array's
  address for any ``i`` (field-insensitive array handling, as in SVF);
- a function name in expression position materialises the function's
  address object (``funaddr``);
- ``&&``/``||`` lower as plain binops (no short-circuit CFG); control flow
  through ``if``/``while``/``for`` builds the usual diamond/loop shapes.

Expressions lower through two mutually recursive entry points:
:meth:`FunctionLowering.lvalue` (address + value type) and
:meth:`FunctionLowering.rvalue` (operand + value type).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.ctypes import (
    CArray,
    CFnPtr,
    CPtr,
    CStruct,
    CType,
    FNPTR_TYPE,
    INT_TYPE,
    VOID_TYPE,
)
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import Operand
from repro.ir.module import Module
from repro.ir.types import INT, PTR
from repro.ir.values import Constant, Variable

#: Static type used for pointers whose pointee we cannot see (e.g. the result
#: of an indirect call).  Dereferencing it is a frontend error.
UNKNOWN_PTR = CPtr(VOID_TYPE)


def _ir_type(ctype: CType):
    return PTR if ctype.is_pointer_like() else INT


class ModuleLowering:
    """Lowers a whole :class:`ast.Program` into a fresh module."""

    def __init__(self, program: ast.Program, name: str = "cmodule"):
        self.program = program
        self.module = Module(name)
        self.builder = IRBuilder(self.module)
        # global name -> (address variable, declared value type)
        self.globals: Dict[str, Tuple[Variable, CType]] = {}
        self.functions: Dict[str, Function] = {}
        self.func_ret: Dict[str, CType] = {}

    def lower(self) -> Module:
        # Declare all functions first so calls resolve in any order.
        for func_def in self.program.functions:
            if func_def.name not in self.functions:
                func = Function(
                    func_def.name,
                    [Variable(param.name, _ir_type(param.ctype or INT_TYPE))
                     for param in func_def.params],
                )
                self.module.add_function(func)
                self.functions[func_def.name] = func
                self.func_ret[func_def.name] = func_def.ret_type or VOID_TYPE

        init = self.builder.function("__module_init__")
        init_block = self.builder.block("entry")
        # Allocate global objects (addresses shared module-wide).
        for decl in self.program.globals:
            assert decl.ctype is not None
            addr = Variable(decl.name, PTR, is_global=True)
            num_fields = (
                decl.ctype.flattened_size() if isinstance(decl.ctype, CStruct) else 0
            )
            self.builder.global_alloc(decl.name, dst=addr, num_fields=num_fields)
            if isinstance(decl.ctype, CArray):
                # Retro-mark: the object was just created by global_alloc.
                self.module.objects[-1].is_array = True
            self.globals[decl.name] = (addr, decl.ctype)

        # Lower function bodies.
        for func_def in self.program.functions:
            if func_def.body is not None:
                FunctionLowering(self, func_def).lower()

        # Global initialisers run in __module_init__, then main is called.
        self.builder.switch_to(init_block)
        init_lowering = FunctionLowering(self, None)
        init_lowering.function = init
        for decl in self.program.globals:
            if decl.init is not None:
                addr, __ = self.globals[decl.name]
                value, __ = init_lowering.rvalue(decl.init)
                self.builder.store(addr, value)
        if "main" in self.functions:
            main = self.functions["main"]
            args: List[Operand] = [Constant(0, INT)] * len(main.params)
            self.builder.call(main, args)
        self.builder.ret()
        return self.module


class FunctionLowering:
    """Lowers one function body; shares the module-level context."""

    def __init__(self, parent: ModuleLowering, func_def: Optional[ast.FuncDef]):
        self.parent = parent
        self.module = parent.module
        self.builder = parent.builder
        self.func_def = func_def
        self.function: Optional[Function] = (
            parent.functions[func_def.name] if func_def is not None else None
        )
        # lexical scopes: name -> (alloca address var, value type)
        self.scopes: List[Dict[str, Tuple[Variable, CType]]] = [{}]
        self._block_counter = 0
        # innermost-first (continue target, break target) pairs
        self._loop_stack: List[Tuple[object, object]] = []

    # ----------------------------------------------------------------- scope

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare_local(self, name: str, ctype: CType, node: ast.Node) -> Variable:
        if name in self.scopes[-1]:
            raise ParseError(f"redeclaration of {name!r}", node.line, node.column)
        num_fields = ctype.flattened_size() if isinstance(ctype, CStruct) else 0
        addr = self.builder.alloca(name, num_fields=num_fields)
        if isinstance(ctype, CArray):
            self.module.objects[-1].is_array = True
        self.scopes[-1][name] = (addr, ctype)
        return addr

    def lookup(self, name: str) -> Optional[Tuple[Variable, CType]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.parent.globals.get(name)

    def fresh_block(self, hint: str):
        self._block_counter += 1
        return self.builder.block(f"{hint}.{self._block_counter}")

    # ------------------------------------------------------------------ body

    def lower(self) -> None:
        assert self.func_def is not None and self.function is not None
        entry = self.function.add_block("entry")
        self.builder.switch_to(entry)
        # Parameters: spill into allocas so `&param` works; mem2reg will
        # promote the ones whose address never escapes right back.
        for param, param_var in zip(self.func_def.params, self.function.params):
            assert param.ctype is not None
            addr = self.declare_local(param.name, param.ctype, param)
            self.builder.store(addr, param_var)
        assert self.func_def.body is not None
        self.lower_block(self.func_def.body)
        # Terminate the fall-through block (implicit return) and any
        # unreachable blocks produced by code after a return.
        ret_type = self.parent.func_ret[self.func_def.name]
        for block in self.function.blocks:
            if not block.is_terminated():
                self.builder.switch_to(block)
                if ret_type is VOID_TYPE:
                    self.builder.ret()
                else:
                    self.builder.ret(Constant(0, INT))

    def lower_block(self, block: ast.Block) -> None:
        self.push_scope()
        for stmt in block.stmts:
            self.lower_stmt(stmt)
        self.pop_scope()

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if self.builder.current_block is not None and self.builder.current_block.is_terminated():
            # Dead code after return/branch: park it in an unreachable block.
            self.fresh_block("dead")
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            assert stmt.ctype is not None
            addr = self.declare_local(stmt.name, stmt.ctype, stmt)
            if stmt.init is not None:
                value, __ = self.rvalue(stmt.init)
                self.builder.store(addr, value)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self.rvalue(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise ParseError("break outside a loop", stmt.line, stmt.column)
            self.builder.br(self._loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise ParseError("continue outside a loop", stmt.line, stmt.column)
            self.builder.br(self._loop_stack[-1][0])
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value, __ = self.rvalue(stmt.value)
            self.builder.ret(value)
        else:
            raise ParseError(f"unsupported statement {type(stmt).__name__}", stmt.line, stmt.column)

    def lower_if(self, stmt: ast.If) -> None:
        assert stmt.cond is not None and stmt.then is not None
        cond, __ = self.rvalue(stmt.cond)
        cond_block = self.builder.current_block
        then_block = self.fresh_block("if.then")
        self.lower_stmt(stmt.then)
        then_end = self.builder.current_block
        else_block = None
        else_end = None
        if stmt.els is not None:
            else_block = self.fresh_block("if.else")
            self.lower_stmt(stmt.els)
            else_end = self.builder.current_block
        merge = self.fresh_block("if.end")

        self.builder.switch_to(cond_block)
        self.builder.cond_br(cond, then_block, else_block or merge)
        if then_end is not None and not then_end.is_terminated():
            self.builder.switch_to(then_end)
            self.builder.br(merge)
        if else_end is not None and not else_end.is_terminated():
            self.builder.switch_to(else_end)
            self.builder.br(merge)
        self.builder.switch_to(merge)

    def _new_block(self, hint: str):
        """Create a block without switching the insertion point."""
        self._block_counter += 1
        assert self.builder.current_function is not None
        return self.builder.current_function.add_block(f"{hint}.{self._block_counter}")

    def lower_while(self, stmt: ast.While) -> None:
        assert stmt.cond is not None and stmt.body is not None
        header = self._new_block("while.cond")
        body = self._new_block("while.body")
        exit_block = self._new_block("while.end")
        if self.builder.current_block is not None \
                and not self.builder.current_block.is_terminated():
            self.builder.br(header)
        self.builder.switch_to(header)
        cond, __ = self.rvalue(stmt.cond)
        self.builder.cond_br(cond, body, exit_block)
        self.builder.switch_to(body)
        self._loop_stack.append((header, exit_block))
        self.lower_stmt(stmt.body)
        self._loop_stack.pop()
        if self.builder.current_block is not None \
                and not self.builder.current_block.is_terminated():
            self.builder.br(header)
        self.builder.switch_to(exit_block)

    def lower_do_while(self, stmt: ast.DoWhile) -> None:
        assert stmt.cond is not None and stmt.body is not None
        body = self._new_block("do.body")
        latch = self._new_block("do.cond")
        exit_block = self._new_block("do.end")
        if self.builder.current_block is not None \
                and not self.builder.current_block.is_terminated():
            self.builder.br(body)
        self.builder.switch_to(body)
        self._loop_stack.append((latch, exit_block))
        self.lower_stmt(stmt.body)
        self._loop_stack.pop()
        if self.builder.current_block is not None \
                and not self.builder.current_block.is_terminated():
            self.builder.br(latch)
        self.builder.switch_to(latch)
        cond, __ = self.rvalue(stmt.cond)
        self.builder.cond_br(cond, body, exit_block)
        self.builder.switch_to(exit_block)

    def lower_for(self, stmt: ast.For) -> None:
        assert stmt.body is not None
        self.push_scope()
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self._new_block("for.cond")
        body = self._new_block("for.body")
        latch = self._new_block("for.step")  # `continue` lands here
        exit_block = self._new_block("for.end")
        if self.builder.current_block is not None \
                and not self.builder.current_block.is_terminated():
            self.builder.br(header)
        self.builder.switch_to(header)
        if stmt.cond is not None:
            cond, __ = self.rvalue(stmt.cond)
        else:
            cond = Constant(1, INT)
        self.builder.cond_br(cond, body, exit_block)
        self.builder.switch_to(body)
        self._loop_stack.append((latch, exit_block))
        self.lower_stmt(stmt.body)
        self._loop_stack.pop()
        if self.builder.current_block is not None \
                and not self.builder.current_block.is_terminated():
            self.builder.br(latch)
        self.builder.switch_to(latch)
        if stmt.step is not None:
            self.rvalue(stmt.step, want_value=False)
        self.builder.br(header)
        self.builder.switch_to(exit_block)
        self.pop_scope()

    # ---------------------------------------------------------------- lvalues

    def lvalue(self, expr: ast.Expr) -> Tuple[Operand, CType]:
        """Lower *expr* as an lvalue: (address operand, type of stored value)."""
        if isinstance(expr, ast.Ident):
            entry = self.lookup(expr.name)
            if entry is not None:
                return entry
            if expr.name in self.parent.functions:
                raise ParseError(
                    f"function {expr.name!r} is not an lvalue", expr.line, expr.column
                )
            raise ParseError(f"undeclared identifier {expr.name!r}", expr.line, expr.column)

        if isinstance(expr, ast.Unary) and expr.op == "*":
            assert expr.operand is not None
            pointer, ptype = self.rvalue(expr.operand)
            if isinstance(ptype, CPtr):
                if ptype.pointee is VOID_TYPE:
                    raise ParseError("cannot dereference void*", expr.line, expr.column)
                return pointer, ptype.pointee
            if isinstance(ptype, CArray):
                return pointer, ptype.elem
            raise ParseError(f"cannot dereference non-pointer ({ptype!r})", expr.line, expr.column)

        if isinstance(expr, ast.Member):
            assert expr.obj is not None
            if expr.arrow:
                base_ptr, ptype = self.rvalue(expr.obj)
                if not isinstance(ptype, CPtr) or not isinstance(ptype.pointee, CStruct):
                    raise ParseError("-> requires a struct pointer", expr.line, expr.column)
                struct = ptype.pointee
            else:
                base_ptr, vtype = self.lvalue(expr.obj)
                if not isinstance(vtype, CStruct):
                    raise ParseError(". requires a struct value", expr.line, expr.column)
                struct = vtype
            offset = struct.field_offset(expr.name)
            ftype = struct.field_type(expr.name)
            if offset == 0:
                return base_ptr, ftype  # first field aliases the base
            return self.builder.field(base_ptr, offset), ftype

        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            self.rvalue(expr.index, want_value=False)  # evaluate for effects
            base_type = self.static_type(expr.base)
            if isinstance(base_type, CArray):
                addr, atype = self.lvalue(expr.base)
                assert isinstance(atype, CArray)
                return addr, atype.elem  # collapsed element
            pointer, ptype = self.rvalue(expr.base)
            if isinstance(ptype, CPtr):
                return pointer, ptype.pointee
            raise ParseError("cannot index a non-pointer", expr.line, expr.column)

        raise ParseError(
            f"expression is not an lvalue ({type(expr).__name__})", expr.line, expr.column
        )

    def static_type(self, expr: ast.Expr) -> Optional[CType]:
        """Best-effort static type of *expr* without emitting code."""
        if isinstance(expr, ast.Ident):
            entry = self.lookup(expr.name)
            if entry is not None:
                return entry[1]
            if expr.name in self.parent.functions:
                return FNPTR_TYPE
            return None
        if isinstance(expr, ast.Member):
            assert expr.obj is not None
            base = self.static_type(expr.obj)
            if expr.arrow and isinstance(base, CPtr):
                base = base.pointee
            if isinstance(base, CStruct):
                try:
                    return base.field_type(expr.name)
                except ParseError:
                    return None
            return None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            assert expr.operand is not None
            inner = self.static_type(expr.operand)
            if isinstance(inner, CPtr):
                return inner.pointee
            return None
        if isinstance(expr, ast.Index):
            assert expr.base is not None
            base = self.static_type(expr.base)
            if isinstance(base, CArray):
                return base.elem
            if isinstance(base, CPtr):
                return base.pointee
            return None
        if isinstance(expr, ast.Cast):
            return expr.ctype
        return None

    # ---------------------------------------------------------------- rvalues

    def rvalue(self, expr: ast.Expr, want_value: bool = True) -> Tuple[Operand, CType]:
        """Lower *expr* as an rvalue: (operand holding the value, its type)."""
        if isinstance(expr, ast.IntLit):
            return Constant(expr.value, INT), INT_TYPE
        if isinstance(expr, ast.NullLit):
            return Constant(0, INT), UNKNOWN_PTR

        if isinstance(expr, ast.Ident):
            if self.lookup(expr.name) is None and expr.name in self.parent.functions:
                func = self.parent.functions[expr.name]
                return self.builder.addr_of_function(func), FNPTR_TYPE
            addr, ctype = self.lvalue(expr)
            if isinstance(ctype, (CArray, CStruct)):
                return addr, ctype  # decay / aggregate address
            return self.builder.load(addr), ctype

        if isinstance(expr, ast.Unary):
            assert expr.operand is not None
            if expr.op == "&":
                operand = expr.operand
                if isinstance(operand, ast.Ident) and self.lookup(operand.name) is None \
                        and operand.name in self.parent.functions:
                    func = self.parent.functions[operand.name]
                    return self.builder.addr_of_function(func), FNPTR_TYPE
                addr, ctype = self.lvalue(operand)
                return addr, CPtr(ctype)
            if expr.op == "*":
                addr, ctype = self.lvalue(expr)
                if isinstance(ctype, (CArray, CStruct)):
                    return addr, ctype
                return self.builder.load(addr), ctype
            value, __ = self.rvalue(expr.operand)
            return self.builder.binop(expr.op, Constant(0, INT), value), INT_TYPE

        if isinstance(expr, ast.Binary):
            assert expr.lhs is not None and expr.rhs is not None
            lhs, ltype = self.rvalue(expr.lhs)
            rhs, rtype = self.rvalue(expr.rhs)
            if expr.op in ("==", "!=", "<", ">", "<=", ">="):
                return self.builder.cmp(expr.op, lhs, rhs), INT_TYPE
            # Pointer arithmetic (p + i) keeps pointing at the same abstract
            # object (arrays are collapsed), so just forward the pointer.
            if expr.op in ("+", "-") and ltype.is_pointer_like():
                return lhs, ltype
            if expr.op in ("+",) and rtype.is_pointer_like():
                return rhs, rtype
            return self.builder.binop(expr.op, lhs, rhs), INT_TYPE

        if isinstance(expr, ast.Assign):
            assert expr.target is not None and expr.value is not None
            value, vtype = self.rvalue(expr.value)
            addr, ttype = self.lvalue(expr.target)
            self.builder.store(addr, value)
            return value, ttype if ttype.is_pointer_like() else vtype

        if isinstance(expr, ast.Member) or isinstance(expr, ast.Index):
            addr, ctype = self.lvalue(expr)
            if isinstance(ctype, (CArray, CStruct)):
                return addr, ctype
            return self.builder.load(addr), ctype

        if isinstance(expr, ast.Malloc):
            num_fields = 0
            is_array = False
            if isinstance(expr.ctype, CStruct):
                num_fields = expr.ctype.flattened_size()
            if isinstance(expr.ctype, CArray):
                is_array = True
            name = f"heap.l{expr.line}"
            dst = self.builder.malloc(name, num_fields=num_fields)
            obj = self.module.objects[-1]
            obj.is_array = is_array
            pointee: CType = expr.ctype if expr.ctype is not None else VOID_TYPE
            return dst, CPtr(pointee) if not isinstance(pointee, CArray) else CPtr(pointee.elem)

        if isinstance(expr, ast.Cast):
            assert expr.operand is not None and expr.ctype is not None
            value, __ = self.rvalue(expr.operand)
            if expr.ctype.is_pointer_like():
                if isinstance(value, Constant):
                    return value, expr.ctype
                return self.builder.copy(value), expr.ctype
            return value, expr.ctype

        if isinstance(expr, ast.Call):
            return self.lower_call(expr, want_value)

        raise ParseError(f"unsupported expression {type(expr).__name__}", expr.line, expr.column)

    def lower_call(self, expr: ast.Call, want_value: bool) -> Tuple[Operand, CType]:
        assert expr.callee is not None
        args: List[Operand] = []
        for arg in expr.args:
            value, __ = self.rvalue(arg)
            args.append(value)

        # Direct call: callee is an identifier naming a function and not
        # shadowed by a local/global variable.
        if isinstance(expr.callee, ast.Ident) and self.lookup(expr.callee.name) is None:
            name = expr.callee.name
            if name not in self.parent.functions:
                raise ParseError(f"call to undeclared function {name!r}", expr.line, expr.column)
            func = self.parent.functions[name]
            ret_type = self.parent.func_ret[name]
            needs_result = want_value and ret_type is not VOID_TYPE
            dst = self.builder.call(func, args, want_result=needs_result)
            if dst is None:
                return Constant(0, INT), VOID_TYPE
            return dst, ret_type

        callee_value, ctype = self.rvalue(expr.callee)
        if not isinstance(ctype, (CFnPtr,)) and not ctype.is_pointer_like():
            raise ParseError("called expression is not a function pointer", expr.line, expr.column)
        dst = self.builder.call(callee_value, args, want_result=True)  # type: ignore[arg-type]
        assert dst is not None
        return dst, UNKNOWN_PTR
