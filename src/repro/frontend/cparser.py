"""Recursive-descent parser for the mini-C language.

Grammar (simplified C)::

    program   := (struct | global | function)*
    struct    := 'struct' IDENT '{' (type IDENT array? ';')+ '}' ';'
    type      := ('int' | 'void' | 'fnptr' | 'struct' IDENT) '*'*
    global    := type IDENT array? ('=' expr)? ';'
    function  := type IDENT '(' param (',' param)* ')' (block | ';')
    block     := '{' stmt* '}'
    stmt      := decl | 'if' ... | 'while' ... | 'for' ... | 'return' expr? ';'
               | block | expr ';'

Expressions support assignment, ``||``/``&&`` (lowered non-short-circuit:
both sides always evaluate, which is irrelevant to points-to analysis),
comparisons, arithmetic, prefix ``* & - ! ~``, casts ``(T*)e``, postfix
calls, indexing, ``.``/``->``, plus ``malloc(sizeof(T))`` and ``null``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.ctypes import (
    CArray,
    CPtr,
    CType,
    FNPTR_TYPE,
    INT_TYPE,
    StructTable,
    VOID_TYPE,
)
from repro.frontend.lexer import Token, tokenize

_TYPE_KEYWORDS = ("int", "void", "fnptr", "struct")


class CParser:
    """Parses one translation unit into an :class:`ast.Program`."""

    def __init__(self, source: str):
        self.tokens: List[Token] = tokenize(source)
        self.pos = 0
        self.structs = StructTable()

    # ---------------------------------------------------------------- cursor

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {token.text!r}", token.line, token.column)
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message + f" (at {token.text!r})", token.line, token.column)

    # ----------------------------------------------------------------- types

    def at_type(self) -> bool:
        token = self.peek()
        return token.kind == "kw" and token.text in _TYPE_KEYWORDS

    def parse_type(self) -> CType:
        token = self.next()
        if token.kind != "kw" or token.text not in _TYPE_KEYWORDS:
            raise ParseError(f"expected a type, found {token.text!r}", token.line, token.column)
        base: CType
        if token.text == "int":
            base = INT_TYPE
        elif token.text == "void":
            base = VOID_TYPE
        elif token.text == "fnptr":
            base = FNPTR_TYPE
        else:  # struct
            name = self.expect("ident").text
            base = self.structs.declare(name)
        while self.accept("op", "*"):
            base = CPtr(base)
        return base

    def parse_array_suffix(self, base: CType) -> CType:
        if self.accept("op", "["):
            size_token = self.expect("num")
            self.expect("op", "]")
            return CArray(base, int(size_token.text))
        return base

    # ------------------------------------------------------------- top level

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.peek().kind != "eof":
            if (
                self.peek().kind == "kw"
                and self.peek().text == "struct"
                and self.peek(2).kind == "op"
                and self.peek(2).text == "{"
            ):
                program.structs.append(self.parse_struct())
                continue
            ctype = self.parse_type()
            name_token = self.expect("ident")
            if self.peek().kind == "op" and self.peek().text == "(":
                program.functions.append(self.parse_function(ctype, name_token))
            else:
                ctype = self.parse_array_suffix(ctype)
                init = None
                if self.accept("op", "="):
                    init = self.parse_expr()
                self.expect("op", ";")
                program.globals.append(
                    ast.GlobalDecl(name_token.line, name_token.column, name_token.text, ctype, init)
                )
        return program

    def parse_struct(self) -> ast.StructDecl:
        start = self.expect("kw", "struct")
        name = self.expect("ident").text
        struct = self.structs.declare(name)
        self.expect("op", "{")
        fields: List[Tuple[str, CType]] = []
        while not self.accept("op", "}"):
            ftype = self.parse_type()
            fname = self.expect("ident").text
            ftype = self.parse_array_suffix(ftype)
            self.expect("op", ";")
            fields.append((fname, ftype))
        self.expect("op", ";")
        struct.define(fields)
        return ast.StructDecl(start.line, start.column, name, fields)

    def parse_function(self, ret_type: CType, name_token: Token) -> ast.FuncDef:
        self.expect("op", "(")
        params: List[ast.ParamDecl] = []
        if not self.accept("op", ")"):
            if self.peek().kind == "kw" and self.peek().text == "void" \
                    and self.peek(1).text == ")":
                self.next()
                self.expect("op", ")")
            else:
                while True:
                    ptype = self.parse_type()
                    pname = self.expect("ident")
                    params.append(ast.ParamDecl(pname.line, pname.column, pname.text, ptype))
                    if self.accept("op", ")"):
                        break
                    self.expect("op", ",")
        body = None
        if not self.accept("op", ";"):
            body = self.parse_block()
        return ast.FuncDef(
            name_token.line, name_token.column, name_token.text, ret_type, params, body
        )

    # ------------------------------------------------------------ statements

    def parse_block(self) -> ast.Block:
        start = self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_stmt())
        return ast.Block(start.line, start.column, stmts)

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "op" and token.text == "{":
            return self.parse_block()
        if self.at_type():
            return self.parse_decl_stmt()
        if token.kind == "kw" and token.text == "if":
            return self.parse_if()
        if token.kind == "kw" and token.text == "while":
            return self.parse_while()
        if token.kind == "kw" and token.text == "do":
            return self.parse_do_while()
        if token.kind == "kw" and token.text == "for":
            return self.parse_for()
        if token.kind == "kw" and token.text == "break":
            self.next()
            self.expect("op", ";")
            return ast.Break(token.line, token.column)
        if token.kind == "kw" and token.text == "continue":
            self.next()
            self.expect("op", ";")
            return ast.Continue(token.line, token.column)
        if token.kind == "kw" and token.text == "return":
            self.next()
            value = None
            if not (self.peek().kind == "op" and self.peek().text == ";"):
                value = self.parse_expr()
            self.expect("op", ";")
            return ast.Return(token.line, token.column, value)
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.ExprStmt(token.line, token.column, expr)

    def parse_decl_stmt(self) -> ast.DeclStmt:
        token = self.peek()
        ctype = self.parse_type()
        name = self.expect("ident").text
        ctype = self.parse_array_suffix(ctype)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return ast.DeclStmt(token.line, token.column, name, ctype, init)

    def parse_if(self) -> ast.If:
        token = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        els = None
        if self.accept("kw", "else"):
            els = self.parse_stmt()
        return ast.If(token.line, token.column, cond, then, els)

    def parse_while(self) -> ast.While:
        token = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.While(token.line, token.column, cond, body)

    def parse_do_while(self) -> ast.DoWhile:
        token = self.expect("kw", "do")
        body = self.parse_stmt()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(token.line, token.column, body, cond)

    def parse_for(self) -> ast.For:
        token = self.expect("kw", "for")
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.accept("op", ";"):
            if self.at_type():
                init = self.parse_decl_stmt()  # consumes ';'
            else:
                init = ast.ExprStmt(token.line, token.column, self.parse_expr())
                self.expect("op", ";")
        cond = None
        if not (self.peek().kind == "op" and self.peek().text == ";"):
            cond = self.parse_expr()
        self.expect("op", ";")
        step = None
        if not (self.peek().kind == "op" and self.peek().text == ")"):
            step = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.For(token.line, token.column, init, cond, step, body)

    # ----------------------------------------------------------- expressions

    def parse_expr(self) -> ast.Expr:
        return self.parse_assign()

    _COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/",
                     "%=": "%", "&=": "&", "|=": "|", "^=": "^"}

    def parse_assign(self) -> ast.Expr:
        lhs = self.parse_binary(0)
        token = self.peek()
        if token.kind == "op" and token.text == "=":
            self.next()
            value = self.parse_assign()
            return ast.Assign(token.line, token.column, lhs, value)
        if token.kind == "op" and token.text in self._COMPOUND_OPS:
            # Desugar `a op= b` to `a = a op b`.  The target expression is
            # evaluated twice; mini-C index/member expressions are
            # effect-free enough for this to be harmless.
            self.next()
            value = self.parse_assign()
            binop = ast.Binary(token.line, token.column,
                               self._COMPOUND_OPS[token.text], lhs, value)
            return ast.Assign(token.line, token.column, lhs, binop)
        return lhs

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        lhs = self.parse_binary(level + 1)
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ops:
                self.next()
                rhs = self.parse_binary(level + 1)
                lhs = ast.Binary(token.line, token.column, token.text, lhs, rhs)
            else:
                return lhs

    @staticmethod
    def _incdec(token, target: ast.Expr) -> ast.Expr:
        """Desugar ``++x``/``x--`` etc. to ``x = x ± 1``.

        The expression value is the *new* value in both positions — for
        points-to purposes the distinction is irrelevant (pointer bumps stay
        within the same collapsed abstract object).
        """
        op = "+" if token.text == "++" else "-"
        one = ast.IntLit(token.line, token.column, 1)
        binop = ast.Binary(token.line, token.column, op, target, one)
        return ast.Assign(token.line, token.column, target, binop)

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("++", "--"):
            self.next()
            return self._incdec(token, self.parse_unary())
        if token.kind == "op" and token.text in ("*", "&", "-", "!", "~"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(token.line, token.column, token.text, operand)
        # Cast: '(' followed by a type keyword.
        if token.kind == "op" and token.text == "(" and self.peek(1).kind == "kw" \
                and self.peek(1).text in _TYPE_KEYWORDS:
            self.next()
            ctype = self.parse_type()
            self.expect("op", ")")
            operand = self.parse_unary()
            return ast.Cast(token.line, token.column, ctype, operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text == "[":
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(token.line, token.column, expr, index)
            elif token.kind == "op" and token.text == ".":
                self.next()
                name = self.expect("ident").text
                expr = ast.Member(token.line, token.column, expr, name, arrow=False)
            elif token.kind == "op" and token.text == "->":
                self.next()
                name = self.expect("ident").text
                expr = ast.Member(token.line, token.column, expr, name, arrow=True)
            elif token.kind == "op" and token.text == "(":
                self.next()
                args: List[ast.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                expr = ast.Call(token.line, token.column, expr, args)
            elif token.kind == "op" and token.text in ("++", "--"):
                self.next()
                expr = self._incdec(token, expr)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "num":
            return ast.IntLit(token.line, token.column, int(token.text))
        if token.kind == "kw" and token.text == "null":
            return ast.NullLit(token.line, token.column)
        if token.kind == "kw" and token.text == "malloc":
            self.expect("op", "(")
            ctype: Optional[CType] = None
            if self.accept("kw", "sizeof"):
                self.expect("op", "(")
                ctype = self.parse_type()
                self.expect("op", ")")
            elif not (self.peek().kind == "op" and self.peek().text == ")"):
                self.parse_expr()  # raw byte count; ignored
            self.expect("op", ")")
            return ast.Malloc(token.line, token.column, ctype)
        if token.kind == "ident":
            return ast.Ident(token.line, token.column, token.text)
        if token.kind == "op" and token.text == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line, token.column)


def parse_c(source: str) -> Tuple[ast.Program, StructTable]:
    """Parse mini-C *source*; return the AST and the struct table."""
    parser = CParser(source)
    program = parser.parse_program()
    return program, parser.structs
