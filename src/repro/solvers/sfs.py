"""Staged flow-sensitive analysis (SFS) — the paper's baseline.

Every SVFG node that touches address-taken memory keeps an ``IN`` map
(object id → points-to mask); ``STORE`` nodes additionally keep an ``OUT``
map.  Points-to sets propagate along indirect edges from the OUT (or IN,
for non-store nodes) of the source into the IN of the destination —
Equations (6)/(7) of the paper.  This is *multiple-object* sparsity only:
two nodes using identical points-to sets of the same object each store and
receive their own copy, which is exactly the redundancy VSFS removes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.datastructs.bitset import count_bits, iter_bits
from repro.ir.instructions import LoadInst, StoreInst
from repro.ir.values import Variable
from repro.solvers.base import FlowSensitiveResult, StagedSolverBase
from repro.svfg.builder import SVFG
from repro.svfg.nodes import InstNode, SVFGNode


class SFSAnalysis(StagedSolverBase):
    """Staged flow-sensitive points-to analysis on the SVFG."""

    analysis_name = "sfs"

    def __init__(self, svfg: SVFG):
        super().__init__(svfg)
        # IN/OUT maps, lazily created per node id: {obj id -> mask}.
        self.in_sets: Dict[int, Dict[int, int]] = {}
        self.out_sets: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------ propagation

    def _in(self, node_id: int) -> Dict[int, int]:
        in_set = self.in_sets.get(node_id)
        if in_set is None:
            in_set = {}
            self.in_sets[node_id] = in_set
        return in_set

    def _propagate(self, node_id: int, oid: int, mask: int) -> None:
        """A-PROP: push *mask* of object *oid* into successors' IN sets."""
        if not mask:
            return
        succs = self.svfg.ind_succs[node_id].get(oid)
        if not succs:
            return
        for succ in succs:
            self.stats.propagations += 1
            in_set = self._in(succ)
            old = in_set.get(oid, 0)
            new = old | mask
            if new != old:
                self.stats.unions += 1
                in_set[oid] = new
                self.worklist.push(succ)

    # -------------------------------------------------------------- mem rules

    def _process_load(self, node: InstNode, inst: LoadInst) -> None:
        """[LOAD]: pt(p) ⊇ IN(o) for each o the pointer may target."""
        in_set = self.in_sets.get(node.id)
        if in_set is None:
            return
        mask = 0
        for oid in iter_bits(self.value_mask(inst.ptr)):
            value = in_set.get(oid)
            if value:
                mask |= value
        if mask:
            self.set_pt(inst.dst, mask)

    def _process_store(self, node: InstNode, inst: StoreInst) -> None:
        """[STORE] + [SU/WU]: OUT(o) = Gen ∪ (IN(o) − Kill), then A-PROP."""
        ptr_mask = self.value_mask(inst.ptr)
        gen = self.value_mask(inst.value)
        su_oid = self.strong_update_target(ptr_mask)
        in_set = self.in_sets.get(node.id, {})
        out_set = self.out_sets.setdefault(node.id, {})
        # The objects this store is responsible for are its χ annotations
        # (over-approximated by the auxiliary analysis) — they must flow
        # through even when the store does not (yet) write them.
        for chi in self.memssa.store_chis.get(inst, ()):
            oid = chi.obj.id
            incoming = in_set.get(oid, 0)
            if oid == su_oid:
                out = gen  # strong update: kill the incoming set
                self.stats.strong_updates += 1
            elif ptr_mask >> oid & 1:
                out = incoming | gen  # weak update
                self.stats.weak_updates += 1
            else:
                out = incoming  # pass-through
            old = out_set.get(oid, 0)
            if out | old != old:
                self.stats.unions += 1
            out_set[oid] = out | old  # monotone: already-propagated stays
            self._propagate(node.id, oid, out_set[oid])

    def _process_mem_node(self, node: SVFGNode) -> None:
        """MEMPHI / ActualIN / ActualOUT / FormalIN / FormalOUT: OUT = IN."""
        in_set = self.in_sets.get(node.id)
        if not in_set:
            return
        for oid, mask in in_set.items():
            self._propagate(node.id, oid, mask)

    # --------------------------------------------------------------- summary

    def _memory_footprint(self) -> None:
        sets = 0
        bits = 0
        for table in self.in_sets.values():
            for mask in table.values():
                if mask:
                    sets += 1
                    bits += count_bits(mask)
        for table in self.out_sets.values():
            for mask in table.values():
                if mask:
                    sets += 1
                    bits += count_bits(mask)
        self.stats.stored_ptsets = sets
        self.stats.stored_ptset_bits = bits


def run_sfs(svfg: SVFG) -> FlowSensitiveResult:
    """Run staged flow-sensitive analysis over a built SVFG."""
    return SFSAnalysis(svfg).run()
