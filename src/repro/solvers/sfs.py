"""Staged flow-sensitive analysis (SFS) — the paper's baseline.

Every SVFG node that touches address-taken memory keeps an ``IN`` map
(object id → points-to set); ``STORE`` nodes additionally keep an ``OUT``
map.  Points-to sets propagate along indirect edges from the OUT (or IN,
for non-store nodes) of the source into the IN of the destination —
Equations (6)/(7) of the paper.  This is *multiple-object* sparsity only:
two nodes using identical points-to sets of the same object each store and
receive their own copy, which is exactly the redundancy VSFS removes.

Two layered optimisations (see :class:`StagedSolverBase`) attack that
redundancy *within* SFS without changing its results:

- the **delta kernel** forwards only the new bits (``new & ~old``) along
  indirect edges and revisits a popped memory node only for the objects
  whose sets actually grew (the worklist carries the dirty map);
- the **points-to repository** stores every distinct set once — IN/OUT
  entries are dense ids into a shared :class:`PTRepo` with memoised
  pairwise unions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datastructs.bitset import iter_bits
from repro.ir.instructions import LoadInst, StoreInst
from repro.solvers.base import FlowSensitiveResult, StagedSolverBase
from repro.svfg.builder import SVFG
from repro.svfg.nodes import InstNode, SVFGNode


class SFSAnalysis(StagedSolverBase):
    """Staged flow-sensitive points-to analysis on the SVFG."""

    analysis_name = "sfs"

    def __init__(self, svfg: SVFG, delta: bool = True, ptrepo: bool = True,
                 meter=None, faults=None, checkpointer=None, ctx=None,
                 mde=None, mde_batch=None):
        super().__init__(svfg, delta=delta, ptrepo=ptrepo, meter=meter,
                         faults=faults, checkpointer=checkpointer, ctx=ctx,
                         mde=mde, mde_batch=mde_batch)
        # IN/OUT maps, lazily created per node id: {obj id -> entry}, where
        # an entry is a PTRepo id (ptrepo on) or a raw mask (ptrepo off).
        self.in_sets: Dict[int, Dict[int, int]] = {}
        self.out_sets: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------ propagation

    def _in(self, node_id: int) -> Dict[int, int]:
        in_set = self.in_sets.get(node_id)
        if in_set is None:
            in_set = {}
            self.in_sets[node_id] = in_set
        return in_set

    def _propagate(self, node_id: int, oid: int, mask: int) -> None:
        """A-PROP: push *mask* of object *oid* into successors' IN sets.

        Under the delta kernel *mask* is just the newly grown bits; only
        the part a successor has not seen is merged and forwarded, so no
        union is applied (or counted) for already-known information.

        With the batch memo on, the whole per-successor step — "what does
        this entry become under this delta, and what grew?" — is one
        ``BatchMemo.apply`` lookup keyed by (entry id, delta id).  The
        mask is interned once per call, so the k successors sharing an
        entry id cost one recomputation at most, and a batch any node
        anywhere already executed costs none.
        """
        if not mask:
            return
        succs = self.svfg.ind_succs[node_id].get(oid)
        if not succs:
            return
        faults = self.faults
        if faults is not None:
            faults.fire("propagate", self.analysis_name)
        repo = self.ptrepo
        batch = self.batch
        stats = self.stats
        in_sets = self.in_sets
        unions = 0
        if self.delta:
            push_delta = self.worklist.push_delta
            if batch is not None:
                mask_id = repo.intern(mask)
                for succ in succs:
                    in_set = in_sets.get(succ)
                    if in_set is None:
                        in_set = in_sets[succ] = {}
                    new, added_id = batch.apply(in_set.get(oid, 0), mask_id)
                    if added_id:
                        unions += 1
                        if faults is not None:
                            faults.fire("ptrepo_union", self.analysis_name)
                        in_set[oid] = new
                        push_delta(succ, oid, repo.mask(added_id))
            else:
                for succ in succs:
                    in_set = in_sets.get(succ)
                    if in_set is None:
                        in_set = in_sets[succ] = {}
                    entry = in_set.get(oid, 0)
                    old = repo.mask(entry) if repo is not None else entry
                    added = mask & ~old
                    if added:
                        unions += 1
                        if repo is not None:
                            if faults is not None:
                                faults.fire("ptrepo_union", self.analysis_name)
                            in_set[oid] = repo.union_mask(entry, added)
                        else:
                            in_set[oid] = old | added
                        push_delta(succ, oid, added)
        else:
            push = self.worklist.push
            if batch is not None:
                mask_id = repo.intern(mask)
                for succ in succs:
                    in_set = in_sets.get(succ)
                    if in_set is None:
                        in_set = in_sets[succ] = {}
                    unions += 1  # eager: a union is applied per target
                    if faults is not None:
                        faults.fire("ptrepo_union", self.analysis_name)
                    new, added_id = batch.apply(in_set.get(oid, 0), mask_id)
                    if added_id:
                        in_set[oid] = new
                        push(succ)
            else:
                for succ in succs:
                    in_set = in_sets.get(succ)
                    if in_set is None:
                        in_set = in_sets[succ] = {}
                    unions += 1  # eager: a union is applied per target
                    entry = in_set.get(oid, 0)
                    if repo is not None:
                        if faults is not None:
                            faults.fire("ptrepo_union", self.analysis_name)
                        new = repo.union_mask(entry, mask)
                    else:
                        new = entry | mask
                    if new != entry:
                        in_set[oid] = new
                        push(succ)
        stats.propagations += len(succs)
        stats.unions += unions

    # -------------------------------------------------------------- mem rules

    def _process_load(self, node: InstNode, inst: LoadInst,
                      dirty: Optional[Dict[int, int]] = None) -> None:
        """[LOAD]: pt(p) ⊇ IN(o) for each o the pointer may target."""
        ptr_mask = self.value_mask(inst.ptr)
        if dirty is not None:
            # Only IN grew (by the recorded deltas); the pointer operand is
            # unchanged, so the new bits are all that can reach pt(dst).
            mask = 0
            for oid, delta in dirty.items():
                if ptr_mask >> oid & 1:
                    mask |= delta
            if mask:
                self.set_pt(inst.dst, mask)
            return
        in_set = self.in_sets.get(node.id)
        if in_set is None:
            return
        batch = self.batch
        if batch is not None:
            # The n-way gather over the pointees' entry ids is itself a
            # recurring batch (every load over the same IN entries).
            mask = batch.gather_mask(
                in_set.get(oid, 0) for oid in iter_bits(ptr_mask))
        else:
            entry_mask = self._entry_mask
            mask = 0
            for oid in iter_bits(ptr_mask):
                entry = in_set.get(oid)
                if entry:
                    mask |= entry_mask(entry)
        if mask:
            self.set_pt(inst.dst, mask)

    def _process_store(self, node: InstNode, inst: StoreInst,
                       dirty: Optional[Dict[int, int]] = None) -> None:
        """[STORE] + [SU/WU]: OUT(o) = Gen ∪ (IN(o) − Kill), then A-PROP."""
        ptr_mask = self.value_mask(inst.ptr)
        su_oid = self.strong_update_target(ptr_mask)
        out_set = self.out_sets.setdefault(node.id, {})
        repo = self.ptrepo
        batch = self.batch
        if dirty is not None:
            # Only IN grew: the gen set and pointer are unchanged, so each
            # dirty object's delta flows straight through OUT (unless this
            # store strong-updates that object, which kills it).
            for oid, delta in dirty.items():
                if oid == su_oid:
                    continue  # killed: the incoming set does not survive
                if self.defers_passthrough(ptr_mask, oid):
                    continue  # deferred until pt(ptr) resolves (full revisit)
                entry = out_set.get(oid, 0)
                if batch is not None:
                    new, added_id = batch.apply(entry, repo.intern(delta))
                    if not added_id:
                        continue
                    self.stats.unions += 1
                    if ptr_mask >> oid & 1:
                        self.stats.weak_updates += 1
                    out_set[oid] = new
                    self._propagate(node.id, oid, repo.mask(added_id))
                    continue
                old = repo.mask(entry) if repo is not None else entry
                added = delta & ~old
                if not added:
                    continue
                self.stats.unions += 1
                if ptr_mask >> oid & 1:
                    self.stats.weak_updates += 1
                if repo is not None:
                    out_set[oid] = repo.union_mask(entry, added)
                else:
                    out_set[oid] = old | added
                self._propagate(node.id, oid, added)
            return
        gen = self.value_mask(inst.value)
        in_set = self.in_sets.get(node.id, {})
        entry_mask = self._entry_mask
        # The objects this store is responsible for are its χ annotations
        # (over-approximated by the auxiliary analysis) — they must flow
        # through even when the store does not (yet) write them.
        for chi in self.memssa.store_chis.get(inst, ()):
            oid = chi.obj.id
            incoming = entry_mask(in_set.get(oid, 0))
            if oid == su_oid:
                out = gen  # strong update: kill the incoming set
                self.stats.strong_updates += 1
            elif ptr_mask >> oid & 1:
                out = incoming | gen  # weak update
                self.stats.weak_updates += 1
            elif self.defers_passthrough(ptr_mask, oid):
                continue  # deferred until pt(ptr) resolves (full revisit)
            else:
                out = incoming  # pass-through
            entry = out_set.get(oid, 0)
            if batch is not None:
                new, added_id = batch.apply(entry, repo.intern(out))
                if self.delta:
                    if not added_id:
                        continue
                    self.stats.unions += 1
                    out_set[oid] = new
                    self._propagate(node.id, oid, repo.mask(added_id))
                else:
                    self.stats.unions += 1  # eager: union applied every visit
                    out_set[oid] = new
                    self._propagate(node.id, oid, repo.mask(new))
                continue
            old = entry_mask(entry)
            added = out & ~old  # monotone: already-propagated stays
            if self.delta:
                if not added:
                    continue
                self.stats.unions += 1
                if repo is not None:
                    out_set[oid] = repo.union_mask(entry, added)
                else:
                    out_set[oid] = old | added
                self._propagate(node.id, oid, added)
            else:
                self.stats.unions += 1  # eager: union applied every visit
                if repo is not None:
                    out_set[oid] = repo.union_mask(entry, out)
                else:
                    out_set[oid] = old | out
                self._propagate(node.id, oid, old | added)

    def _process_mem_node(self, node: SVFGNode,
                          dirty: Optional[Dict[int, int]] = None) -> None:
        """MEMPHI / ActualIN / ActualOUT / FormalIN / FormalOUT: OUT = IN.

        With the delta kernel a pop caused by set growth re-propagates
        only the dirty objects' new bits; a full revisit (new edges wired
        in by on-the-fly call graph resolution) pushes the whole IN map.
        """
        if dirty is not None:
            for oid, delta in dirty.items():
                self._propagate(node.id, oid, delta)
            return
        in_set = self.in_sets.get(node.id)
        if not in_set:
            return
        entry_mask = self._entry_mask
        for oid, entry in in_set.items():
            self._propagate(node.id, oid, entry_mask(entry))

    # ------------------------------------------------------- warm re-solve

    def _preload_memory(self, plan) -> None:
        """Install clean-region IN/OUT maps and clean→dirty boundaries.

        Plan values are raw masks; they are interned here when the repo
        is on.  Boundary values land in the *dirty* receiver's IN map —
        exactly what propagation over the clean→dirty indirect edge
        would have delivered — and the planner queued those receivers,
        so their transfer rules run over the joined view.
        """
        repo = self.ptrepo
        for sets, preload in ((self.in_sets, plan.node_in),
                              (self.out_sets, plan.node_out)):
            for nid, table in preload.items():
                sets[nid] = {
                    oid: repo.intern(mask) if repo is not None else mask
                    for oid, mask in table.items()
                }
        for nid, table in plan.boundary.items():
            in_set = self._in(nid)
            for oid, mask in table.items():
                entry = in_set.get(oid)
                merged = mask | (self._entry_mask(entry)
                                 if entry is not None else 0)
                in_set[oid] = (repo.intern(merged) if repo is not None
                               else merged)

    def export_node_memory(self):
        entry_mask = self._entry_mask
        return tuple(
            {
                nid: {oid: entry_mask(entry) for oid, entry in table.items()}
                for nid, table in sets.items()
            }
            for sets in (self.in_sets, self.out_sets)
        )

    # ----------------------------------------------------------- persistence

    def _snapshot_memory(self) -> Dict[str, object]:
        """IN/OUT maps plus the PTRepo interning table.

        With the repo on, entries are small dense ids and the repo's mask
        list carries each distinct set exactly once — the deduplicated
        representation is also the compact wire format (the MDE storage
        story).  Entries are hex-encoded either way; repo ids just make
        for very short strings.
        """
        def encode(sets: Dict[int, Dict[int, int]]) -> Dict[str, Dict[str, str]]:
            return {
                str(node_id): {str(oid): format(entry, "x")
                               for oid, entry in table.items()}
                for node_id, table in sets.items()
            }

        return {
            "repo": self.ptrepo.snapshot() if self.ptrepo is not None else None,
            "in": encode(self.in_sets),
            "out": encode(self.out_sets),
        }

    def _restore_memory(self, mem: Dict[str, object]) -> None:
        from repro.datastructs.ptrepo import PTRepo
        from repro.errors import CheckpointError

        if self.ptrepo is not None:
            if mem["repo"] is None:
                raise CheckpointError(
                    "checkpoint lacks the ptrepo interning table")
            self.ptrepo = PTRepo.from_snapshot(mem["repo"])
            self._rebind_mde()  # memo keys/arena positions are per-repo

        def decode(sets: Dict[str, Dict[str, str]]) -> Dict[int, Dict[int, int]]:
            return {
                int(node_id): {int(oid): int(entry, 16)
                               for oid, entry in table.items()}
                for node_id, table in sets.items()
            }

        self.in_sets = decode(mem["in"])
        self.out_sets = decode(mem["out"])

    # --------------------------------------------------------------- summary

    def _memory_footprint(self) -> None:
        self._finish_footprint(
            entry
            for sets in (self.in_sets, self.out_sets)
            for table in sets.values()
            for entry in table.values()
        )


def run_sfs(svfg: SVFG, delta: bool = True, ptrepo: bool = True,
            meter=None, faults=None, checkpointer=None) -> FlowSensitiveResult:
    """Run staged flow-sensitive analysis over a built SVFG."""
    return SFSAnalysis(svfg, delta=delta, ptrepo=ptrepo, meter=meter,
                       faults=faults, checkpointer=checkpointer).run()
