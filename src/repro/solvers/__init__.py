"""Flow-sensitive points-to solvers.

- :mod:`repro.solvers.base` — machinery shared by SFS and VSFS: top-level
  (direct) propagation, on-the-fly call graph resolution, statistics.
- :mod:`repro.solvers.sfs` — staged flow-sensitive analysis (Hardekopf &
  Lin), the paper's baseline: per-node IN/OUT maps on the SVFG.
- :mod:`repro.solvers.icfg_fs` — classic iterative dataflow flow-sensitive
  analysis on the interprocedural CFG (§IV-A); precision ground truth for
  tests (slow, small programs only).

The paper's solver, VSFS, lives in :mod:`repro.core.vsfs`.
"""

from repro.solvers.base import FlowSensitiveResult, SolverStats
from repro.solvers.sfs import SFSAnalysis, run_sfs
from repro.solvers.icfg_fs import ICFGFlowSensitive, run_icfg_fs

__all__ = [
    "SolverStats",
    "FlowSensitiveResult",
    "SFSAnalysis",
    "run_sfs",
    "ICFGFlowSensitive",
    "run_icfg_fs",
]
