"""Machinery shared by the staged flow-sensitive solvers (SFS and VSFS).

Both solvers walk the same SVFG with the same top-level (direct) rules —
``ADDR``, ``COPY``, ``PHI``, ``FIELD-ADDR``, ``CALL``, ``RET`` of Figure 10 —
and the same on-the-fly call graph resolution.  They differ only in how the
points-to set of an address-taken object is *stored and propagated*:

- SFS keeps an ``IN``/``OUT`` map per SVFG node (multiple-object sparsity);
- VSFS keys one global table by ``(object, version)`` (adds single-object
  sparsity).

Subclasses implement the five memory hooks (`_process_load`,
`_process_store`, `_process_mem_node`, `_on_new_call_edge`, and
`_memory_footprint`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.datastructs.bitset import count_bits, iter_bits
from repro.datastructs.mde import BatchMemo, MdeEngine
from repro.datastructs.ptrepo import PTRepo
from repro.datastructs.worklist import DeltaWorkList, FIFOWorkList
from repro.errors import BudgetExceeded
from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    CallInst,
    CopyInst,
    FieldInst,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.values import FunctionObject, MemObject, Variable
from repro.svfg.builder import SVFG
from repro.svfg.nodes import (
    ActualINNode,
    ActualOUTNode,
    FormalINNode,
    FormalOUTNode,
    InstNode,
    MemPhiNode,
    SVFGNode,
)


@dataclass
class SolverStats:
    """Counters describing one flow-sensitive solve.

    ``propagations`` counts indirect (per-object) set propagations along
    SVFG edges / version constraints — the quantity VSFS reduces.
    ``unions`` counts set-union operations *applied* to stored
    address-taken points-to data: the eager path performs one per
    propagation target, the delta kernel only when the forwarded bits
    contain something new, so the gap between the two is exactly the
    redundant set work the kernel removes.
    ``stored_ptsets``/``stored_ptset_bits`` describe the final memory
    footprint of address-taken points-to data, the paper's memory story;
    ``unique_ptsets``/``unique_ptset_bits`` are the deduplicated
    counterparts (what a :class:`~repro.datastructs.ptrepo.PTRepo`
    actually keeps), and ``union_cache_hits``/``union_cache_misses``
    describe its memoised-union cache.
    """

    analysis: str = ""
    solve_time: float = 0.0
    pre_time: float = 0.0  # versioning time for VSFS, 0 for SFS
    nodes_processed: int = 0
    propagations: int = 0
    unions: int = 0
    strong_updates: int = 0
    weak_updates: int = 0
    stored_ptsets: int = 0
    stored_ptset_bits: int = 0
    unique_ptsets: int = 0
    unique_ptset_bits: int = 0
    union_cache_hits: int = 0
    union_cache_misses: int = 0
    top_level_bits: int = 0
    callgraph_edges: int = 0
    indirect_calls_resolved: int = 0
    delta_kernel: bool = False  # delta propagation enabled for this run
    ptrepo_enabled: bool = False  # deduplicated storage enabled for this run
    #: Pops inherited from a restored checkpoint.  ``nodes_processed`` is
    #: the *logical solve's* total (restored runs continue the count), so
    #: the work this attempt actually performed is :meth:`own_steps`.
    #: Per-attempt aggregators (stage traces, batch totals) must use that
    #: difference — summing ``nodes_processed`` over the attempts of a
    #: crashed-and-resumed run counts every pre-crash pop once per resume.
    resumed_steps: int = 0
    #: Propagation-batch memoisation (repro.datastructs.mde) enabled,
    #: plus its hit/miss counters — a hit is one whole transfer step
    #: answered from the memo instead of recomputed.
    mde_batch: bool = False
    batch_memo_hits: int = 0
    batch_memo_misses: int = 0
    #: Dedup *memory* cost gauges: how many rows the interner holds, how
    #: many entries the pairwise-union and batch memos have accumulated
    #: (both grow without bound), the estimated resident bytes of the
    #: deduplicated mask content, and the size of the memory-mapped
    #: arena this solve was attached to (0 when arena-less).
    interner_entries: int = 0
    union_cache_entries: int = 0
    batch_cache_entries: int = 0
    dedup_resident_bytes: int = 0
    arena_masks: int = 0
    arena_resident_bytes: int = 0

    #: Work counters that add across disjoint units of work (parallel
    #: shard workers, independent programs).  Times sum to aggregate CPU
    #: seconds; wall clock is the caller's to measure.
    ADDITIVE_FIELDS = (
        "solve_time", "pre_time", "nodes_processed", "propagations",
        "unions", "strong_updates", "weak_updates", "stored_ptsets",
        "stored_ptset_bits", "unique_ptsets", "unique_ptset_bits",
        "union_cache_hits", "union_cache_misses",
        "batch_memo_hits", "batch_memo_misses",
        "indirect_calls_resolved", "resumed_steps",
    )
    #: Final-state gauges over structures the units may share (each
    #: parallel worker converges on the same global call graph, and the
    #: merged top-level table is the OR of the workers') — summing would
    #: multiply shared state by the worker count, so a merge takes the
    #: max and the driver overwrites them with globally recomputed values.
    #: The dedup-memory gauges behave the same way: workers attached to a
    #: shared arena would sum its bytes once per worker.
    GAUGE_FIELDS = ("top_level_bits", "callgraph_edges",
                    "interner_entries", "union_cache_entries",
                    "batch_cache_entries", "dedup_resident_bytes",
                    "arena_masks", "arena_resident_bytes")

    @classmethod
    def merge(cls, parts: "List[SolverStats]") -> "SolverStats":
        """Fold per-worker (or per-program) stats into one aggregate.

        Each input must describe a *disjoint* unit of work.  In
        particular, never merge the attempts of one crashed-and-resumed
        solve: a resumed attempt's counters already include everything
        restored from the checkpoint, so the final attempt alone is the
        whole logical solve (its own new work is :meth:`own_steps`).

        ``unique_ptsets``/``unique_ptset_bits`` sum the per-unit dedup
        counts; a set interned by two workers counts twice, so the sum is
        an upper bound on the global unique count (the parallel driver
        recomputes the exact global figure over the merged tables).
        """
        merged = cls()
        if not parts:
            return merged
        merged.analysis = parts[0].analysis
        merged.delta_kernel = all(p.delta_kernel for p in parts)
        merged.ptrepo_enabled = all(p.ptrepo_enabled for p in parts)
        merged.mde_batch = all(p.mde_batch for p in parts)
        for name in cls.ADDITIVE_FIELDS:
            setattr(merged, name, sum(getattr(p, name) for p in parts))
        for name in cls.GAUGE_FIELDS:
            setattr(merged, name, max(getattr(p, name) for p in parts))
        return merged

    def own_steps(self) -> int:
        """Pops performed by this attempt itself (excludes pops replayed
        into ``nodes_processed`` from a restored checkpoint)."""
        return self.nodes_processed - self.resumed_steps

    def total_time(self) -> float:
        return self.pre_time + self.solve_time

    def dedup_ratio(self) -> float:
        """Referenced sets per unique set (1.0 = no sharing at all)."""
        return self.stored_ptsets / self.unique_ptsets if self.unique_ptsets else 0.0

    def union_cache_hit_rate(self) -> float:
        calls = self.union_cache_hits + self.union_cache_misses
        return self.union_cache_hits / calls if calls else 0.0

    def batch_memo_hit_rate(self) -> float:
        calls = self.batch_memo_hits + self.batch_memo_misses
        return self.batch_memo_hits / calls if calls else 0.0


class FlowSensitiveResult:
    """Final points-to information exposed by SFS/VSFS.

    Top-level variables have one global points-to set each (partial SSA);
    address-taken precision is observable through the loads that read it.
    """

    def __init__(self, module: Module, pt: List[int], callgraph: CallGraph,
                 stats: SolverStats, precision_level: Optional[str] = None,
                 degraded_from: Optional[str] = None, report=None,
                 complete: bool = True):
        self.module = module
        self._pt = pt
        self.callgraph = callgraph
        self.stats = stats
        #: Precision actually delivered ("vsfs", "sfs", "icfg-fs",
        #: "andersen"); differs from the requested analysis after the
        #: degradation ladder took a fallback.
        self.precision_level = precision_level or stats.analysis
        #: The analysis originally requested, when this result is a
        #: graceful degradation of it (None otherwise).
        self.degraded_from = degraded_from
        #: RunReport of the governed run that produced this result.
        self.report = report
        #: False only on the diagnostic partial state attached to a
        #: BudgetExceeded — an under-approximation, never a sound answer.
        self.complete = complete

    def pts_mask(self, var: Variable) -> int:
        if var.id < 0 or var.id >= len(self._pt):
            return 0
        return self._pt[var.id]

    def points_to(self, var: Variable) -> Set[MemObject]:
        return {self.module.objects[oid] for oid in iter_bits(self.pts_mask(var))}

    def may_alias(self, a: Variable, b: Variable) -> bool:
        return bool(self.pts_mask(a) & self.pts_mask(b))

    def snapshot(self) -> Dict[int, int]:
        """var id -> mask for every non-empty top-level set (for tests)."""
        return {vid: mask for vid, mask in enumerate(self._pt) if mask}


class StagedSolverBase:
    """Worklist solver over the SVFG; see module docstring.

    Two orthogonal performance features are configurable (both on by
    default; the ablation benchmarks switch them off):

    - ``delta``: the **delta propagation kernel** — the worklist carries
      object-granular dirty deltas (:class:`DeltaWorkList`) so a popped
      node re-propagates only the objects whose sets actually grew, and
      propagation forwards only the new bits (``new & ~old``) instead of
      whole masks;
    - ``ptrepo``: **deduplicated storage** — IN/OUT / version-table
      entries hold dense :class:`~repro.datastructs.ptrepo.PTRepo` ids
      instead of raw masks, so byte-identical sets are stored once and
      repeated unions hit a memoised cache.

    On top of ``ptrepo`` sits the multi-level dedup engine
    (:class:`~repro.datastructs.mde.MdeEngine`): passing ``mde`` makes
    this solver share its interner, batch memo and arena with other
    solvers built over the same engine (the degradation ladder's rungs),
    and ``mde_batch`` ablates the propagation-batch memo alone.  All of
    it is bit-identity-preserving — only recomputation is avoided.
    """

    analysis_name = "base"

    #: Instruction kinds whose SVFG nodes carry a transfer rule and so
    #: seed the worklist (memory nodes only act once data reaches them).
    SEED_TYPES = (AllocInst, CopyInst, PhiInst, FieldInst, LoadInst,
                  StoreInst, CallInst, RetInst)

    def __init__(self, svfg: SVFG, delta: bool = True, ptrepo: bool = True,
                 meter=None, faults=None, checkpointer=None, ctx=None,
                 mde: Optional[MdeEngine] = None,
                 mde_batch: Optional[bool] = None):
        if ctx is not None:
            # Engine path: governance defaults come from the StageContext
            # instead of per-constructor keyword threading; explicit
            # keywords still win.
            meter = ctx.meter if meter is None else meter
            faults = ctx.faults if faults is None else faults
            checkpointer = ctx.checkpointer if checkpointer is None else checkpointer
            mde = getattr(ctx, "mde", None) if mde is None else mde
            if mde_batch is None:
                mde_batch = getattr(ctx, "mde_batch", None)
        self.svfg = svfg
        self.module = svfg.module
        self.andersen = svfg.andersen
        self.memssa = svfg.memssa
        self.pt: List[int] = [0] * len(self.module.variables)
        self.callgraph = CallGraph(self.module)
        self.delta = bool(delta)
        # Dedup stack: the repo always comes from an MdeEngine so ladder
        # rungs handed the same engine hash-cons into one interner; the
        # batch memo is on by default and ablated via mde_batch=False.
        if ptrepo:
            self.mde: Optional[MdeEngine] = mde if mde is not None else MdeEngine()
            self.ptrepo: Optional[PTRepo] = self.mde.repo
            use_batch = True if mde_batch is None else bool(mde_batch)
            self.batch: Optional[BatchMemo] = self.mde.batch if use_batch else None
        else:
            self.mde = None
            self.ptrepo = None
            self.batch = None
        # A shared engine's counters accumulate across the rungs solved
        # on it; remember where they stood when *this* solver started so
        # its stats stay per-solve.
        self._repo_counter_base = ((self.ptrepo.union_hits,
                                    self.ptrepo.union_misses)
                                   if self.ptrepo is not None else (0, 0))
        self._batch_counter_base = ((self.batch.hits, self.batch.misses)
                                    if self.batch is not None else (0, 0))
        self._batch_baseline = (0, 0)  # pre-resume batch-memo hits/misses
        # Resource governance (repro.runtime): a BudgetMeter ticked once
        # per worklist pop, and a FaultPlan fired at the instrumented
        # trigger points.  Both default to None, leaving the hot loops of
        # an ungoverned run untouched.
        self.meter = meter
        self.faults = faults
        # Crash safety (repro.runtime.checkpoint): when a Checkpointer is
        # attached, the solve loop offers the solver for snapshotting on
        # the configured cadence and on budget exhaustion; restore_state()
        # reloads a snapshot and run() continues the fixpoint from it.
        self.checkpointer = checkpointer
        self._resumed = False
        # Warm re-solve (repro.incremental): a WarmPlan installed via
        # warm_start() replaces cold seeding — clean-region values are
        # preloaded and only the dirty closure is recomputed.
        self._warm_plan = None
        self._steps_done = 0  # pops completed in earlier (resumed) runs
        self._union_baseline = (0, 0)  # pre-resume repo cache hits/misses
        self.stats = SolverStats(
            analysis=self.analysis_name,
            delta_kernel=self.delta,
            ptrepo_enabled=ptrepo,
            mde_batch=self.batch is not None,
        )
        # Worklist of SVFG node ids with O(1) dedup; the delta kernel's
        # variant additionally carries per-(node, object) dirty masks.
        if self.delta:
            self.worklist: "DeltaWorkList | FIFOWorkList[int]" = DeltaWorkList()
        else:
            self.worklist = FIFOWorkList()
        self._function_objects: Dict[int, Function] = {
            obj.id: obj.function
            for obj in self.module.objects
            if isinstance(obj, FunctionObject)
        }

    def _entry_mask(self, entry: int) -> int:
        """The mask a stored table entry denotes (repo id or raw mask)."""
        return self.ptrepo.mask(entry) if self.ptrepo is not None else entry

    # ------------------------------------------------------------- top level

    def set_pt(self, var: Variable, mask: int) -> bool:
        """Grow pt(var); on growth, push every node reading *var*."""
        vid = var.id
        new = self.pt[vid] | mask
        if new == self.pt[vid]:
            return False
        self.pt[vid] = new
        for user in self.svfg.var_uses.get(vid, ()):
            self.worklist.push(user)
        return True

    def value_mask(self, value: object) -> int:
        """pt of an operand (constants and unregistered values are empty)."""
        if isinstance(value, Variable) and 0 <= value.id < len(self.pt):
            return self.pt[value.id]
        return 0

    # ------------------------------------------------------------ main solve

    def run(self) -> FlowSensitiveResult:
        meter = self.meter
        checkpointer = self.checkpointer
        processed = 0
        begun = time.perf_counter()
        start = begun
        try:
            if meter is not None:
                meter.start()
                meter.check()  # a zero budget trips before any work
            if not self._resumed:
                if self.faults is not None:
                    # Pre-solve stage boundary (immediately before the
                    # versioning pre-analysis, for VSFS).
                    self.faults.fire("pre_meld", self.analysis_name)
                self._prepare()  # fills stats.pre_time (versioning, for VSFS)
                start = time.perf_counter()
                if self._warm_plan is not None:
                    self._apply_warm(self._warm_plan)
                else:
                    self._seed()
            worklist = self.worklist
            nodes = self.svfg.nodes
            tick = meter.tick if meter is not None else None
            process = self._process
            if checkpointer is not None:
                # Governed + checkpointed loop: the cadence probe runs
                # *before* the pop, so a snapshot always captures a state
                # whose worklist still holds the next node.
                maybe = checkpointer.maybe
                base_steps = self._steps_done
                if isinstance(worklist, DeltaWorkList):
                    pop_with_dirty = worklist.pop_with_dirty
                    while worklist:
                        if tick is not None:
                            tick()
                        maybe(self, base_steps + processed)
                        node_id, dirty = pop_with_dirty()
                        processed += 1
                        process(nodes[node_id], dirty)
                else:
                    pop = worklist.pop
                    while worklist:
                        if tick is not None:
                            tick()
                        maybe(self, base_steps + processed)
                        processed += 1
                        process(nodes[pop()], None)
            elif isinstance(worklist, DeltaWorkList):
                pop_with_dirty = worklist.pop_with_dirty
                if tick is None:
                    while worklist:
                        node_id, dirty = pop_with_dirty()
                        processed += 1
                        process(nodes[node_id], dirty)
                else:
                    while worklist:
                        tick()
                        node_id, dirty = pop_with_dirty()
                        processed += 1
                        process(nodes[node_id], dirty)
            else:
                pop = worklist.pop
                if tick is None:
                    while worklist:
                        processed += 1
                        process(nodes[pop()], None)
                else:
                    while worklist:
                        tick()
                        processed += 1
                        process(nodes[pop()], None)
        except BudgetExceeded as exc:
            self.stats.nodes_processed = self._steps_done + processed
            self.stats.solve_time = time.perf_counter() - begun
            exc.attach(
                stage=self.analysis_name, stats=self.stats,
                partial_result=FlowSensitiveResult(
                    self.module, self.pt, self.callgraph, self.stats,
                    complete=False))
            if checkpointer is not None:
                try:
                    exc.checkpoint_path = checkpointer.save(
                        self, self._steps_done + processed, reason="budget")
                except OSError:
                    pass  # a full disk must not mask the budget signal
            raise
        self.stats.nodes_processed = self._steps_done + processed
        self.stats.solve_time = time.perf_counter() - start
        self.stats.callgraph_edges = self.callgraph.num_edges()
        self.stats.top_level_bits = sum(count_bits(mask) for mask in self.pt)
        self._memory_footprint()
        return FlowSensitiveResult(self.module, self.pt, self.callgraph, self.stats)

    def _prepare(self) -> None:
        """Hook: pre-solve setup (VSFS runs versioning here)."""

    def _seed(self) -> None:
        """Seed the worklist with the rule-bearing instruction nodes.

        Memory nodes (MEMPHI, actual/formal IN/OUT) only act once
        points-to data reaches them, which pushes them again.  A resumed
        run restores the mid-solve worklist instead of seeding.  Sharded
        workers override this to seed only the nodes they own.
        """
        seed_types = self.SEED_TYPES
        for node in self.svfg.nodes:
            if isinstance(node, InstNode) and isinstance(node.inst, seed_types):
                self.worklist.push(node.id)

    # ------------------------------------------------------- warm re-solve

    def warm_start(self, plan) -> None:
        """Install a :class:`~repro.incremental.WarmPlan` before run().

        Mutually exclusive with restore_state(): a warm start replays a
        *finished* solution onto an edited program, a resume continues an
        *unfinished* one on the same program.
        """
        if self._resumed:
            from repro.errors import SolverError

            raise SolverError("cannot warm-start a resumed solver")
        self._warm_plan = plan

    def _apply_warm(self, plan) -> None:
        """Preload clean-region state and seed only the dirty closure.

        Top-level preloads are direct writes — no use pushes; the plan
        already lists the dirty consumers among its seeds, and clean
        consumers have their outputs preloaded too.  Clean call sites
        are pushed so on-the-fly call-graph edges (and the memory/return
        flow they carry) are rediscovered; with every input preloaded at
        its fixpoint value this replays without recomputation.
        """
        pt = self.pt
        for vid, mask in plan.pt_preload.items():
            if 0 <= vid < len(pt):
                pt[vid] |= mask
        self._preload_memory(plan)
        push = self.worklist.push
        for nid in plan.seed_nodes:
            push(nid)
        for nid in plan.call_nodes:
            push(nid)

    def _preload_memory(self, plan) -> None:
        """Hook: install the plan's clean-region memory values."""

    def export_node_memory(self):
        """Hook: ``(node_in, node_out)`` as ``{nid: {oid: raw mask}}``.

        The per-node view of the solver's memory state, used to capture
        a finished solution for later warm re-solves.  Base solvers
        without a memory layer export nothing.
        """
        return {}, {}

    # ----------------------------------------------------------- persistence

    def snapshot_state(self) -> Dict[str, object]:
        """Everything needed to continue this solve in a fresh process.

        Top-level masks are hex strings; the memory layer (IN/OUT maps or
        the versioned global table, plus the PTRepo interning table) comes
        from the subclass hook ``_snapshot_memory``; call edges and field
        objects are stored as replayable references (see
        :mod:`repro.store.codec`).
        """
        from repro.store.codec import snapshot_call_edges, snapshot_fields

        stats = self.stats
        union_hits, union_misses = self._union_counters()
        batch_hits, batch_misses = self._batch_counters()
        return {
            "pt": [format(mask, "x") for mask in self.pt],
            "worklist": self.worklist.snapshot(),
            "call_edges": snapshot_call_edges(self.callgraph),
            "fields": snapshot_fields(self.module),
            "mem": self._snapshot_memory(),
            "counters": {
                "pre_time": stats.pre_time,
                "propagations": stats.propagations,
                "unions": stats.unions,
                "strong_updates": stats.strong_updates,
                "weak_updates": stats.weak_updates,
                "indirect_calls_resolved": stats.indirect_calls_resolved,
                # Union-cache and batch-memo tallies live on the repo /
                # engine, whose snapshots are deliberately content-only;
                # carrying the cumulative per-solve figures here keeps
                # them consistent with the cumulative ``unions`` across
                # a resume.
                "union_cache_hits": union_hits,
                "union_cache_misses": union_misses,
                "batch_memo_hits": batch_hits,
                "batch_memo_misses": batch_misses,
            },
        }

    def restore_state(self, payload: Dict[str, object], step: int) -> None:
        """Reload :meth:`snapshot_state` output; the next :meth:`run`
        continues the fixpoint instead of starting one.

        Any structural mismatch in the payload surfaces as a typed
        :class:`CheckpointError` — a damaged file must never half-restore
        or leak a ``KeyError`` out of the solver.
        """
        from repro.errors import CheckpointError
        from repro.store.codec import replay_fields

        try:
            replay_fields(self.module, payload["fields"])
            self._replay_call_edges(payload["call_edges"])
            pt = [int(text, 16) for text in payload["pt"]]
            if len(pt) != len(self.pt):
                raise CheckpointError(
                    f"top-level table has {len(pt)} entries, module has "
                    f"{len(self.pt)} variables")
            self.pt = pt
            self._restore_pre(payload)
            self._restore_memory(payload["mem"])
            self.worklist.restore(payload["worklist"])
            counters = payload["counters"]
            stats = self.stats
            stats.pre_time = counters["pre_time"]
            stats.propagations = counters["propagations"]
            stats.unions = counters["unions"]
            stats.strong_updates = counters["strong_updates"]
            stats.weak_updates = counters["weak_updates"]
            stats.indirect_calls_resolved = counters["indirect_calls_resolved"]
            # The restored repo's live tallies start at zero; remember the
            # pre-crash ones so _finish_footprint reports cumulative
            # cache numbers matching the cumulative union count.
            self._union_baseline = (counters.get("union_cache_hits", 0),
                                    counters.get("union_cache_misses", 0))
            self._batch_baseline = (counters.get("batch_memo_hits", 0),
                                    counters.get("batch_memo_misses", 0))
        except CheckpointError:
            raise
        except (KeyError, ValueError, TypeError, IndexError, AttributeError) as err:
            raise CheckpointError(
                f"checkpoint payload does not restore cleanly: "
                f"{type(err).__name__}: {err}", reason="corrupt") from err
        self._steps_done = step
        self.stats.resumed_steps = step
        self._resumed = True
        if self.checkpointer is not None:
            self.checkpointer.mark_resumed(step)

    def _replay_call_edges(self, edges) -> None:
        """Re-wire OTF-discovered call edges into the fresh SVFG.

        Rebuilds the call graph and the SVFG's interprocedural indirect
        edges (``connect_callsite``); the versioning constraints those
        edges induced for VSFS are restored wholesale from the snapshot, so
        ``_on_new_call_edge`` is deliberately *not* replayed.
        """
        from repro.store.codec import call_sites_by_id, resolve_call_edge

        sites = call_sites_by_id(self.module)
        for inst_id, callee_name in edges:
            call, callee = resolve_call_edge(self.module, sites, inst_id,
                                             callee_name)
            if self.callgraph.add_edge(call, callee):
                self.svfg.connect_callsite(call, callee)

    def _restore_pre(self, payload: Dict[str, object]) -> None:
        """Hook: restore pre-analysis state (VSFS: versioning + readers)."""

    def _snapshot_memory(self) -> Dict[str, object]:
        """Hook: the solver's address-taken memory representation."""
        raise NotImplementedError

    def _restore_memory(self, mem: Dict[str, object]) -> None:
        """Hook: inverse of ``_snapshot_memory``."""
        raise NotImplementedError

    def _rebind_mde(self) -> None:
        """Re-key the dedup layers after ``self.ptrepo`` was swapped.

        Both memo layers are keyed by one repository instance's dense
        ids; a checkpoint restore installs a repository rebuilt from the
        snapshot, whose ids share nothing with the previous repo, any
        engine peer, or any arena record positions.  Consulting a stale
        memo (or flushing to a stale arena) would alias unrelated sets,
        so the restored solver gets a private engine over the restored
        repo — warm sharing simply starts over, correctness first.
        Subclass ``_restore_memory`` implementations must call this
        right after swapping the repo in.
        """
        if self.ptrepo is None:
            return
        use_batch = self.batch is not None
        self.mde = MdeEngine(repo=self.ptrepo)
        self.batch = self.mde.batch if use_batch else None
        # The fresh repo's live counters start at zero.
        self._repo_counter_base = (0, 0)
        self._batch_counter_base = (0, 0)

    def _process(self, node: SVFGNode, dirty: Optional[Dict[int, int]] = None) -> None:
        """Apply *node*'s transfer rule.

        *dirty* is the delta kernel's per-object dirty map (``None`` means
        a full revisit): only the memory hooks consume it — the top-level
        rules are cheap enough that re-running them fully is the faster
        option under CPython.
        """
        if isinstance(node, InstNode):
            inst = node.inst
            if isinstance(inst, AllocInst):
                self.set_pt(inst.dst, 1 << inst.obj.id)
            elif isinstance(inst, CopyInst):
                self.set_pt(inst.dst, self.value_mask(inst.src))
            elif isinstance(inst, PhiInst):
                mask = 0
                for __, value in inst.incomings:
                    mask |= self.value_mask(value)
                self.set_pt(inst.dst, mask)
            elif isinstance(inst, FieldInst):
                self._process_field(inst)
            elif isinstance(inst, LoadInst):
                self._process_load(node, inst, dirty)
            elif isinstance(inst, StoreInst):
                self._process_store(node, inst, dirty)
            elif isinstance(inst, CallInst):
                self._process_call(node, inst)
            elif isinstance(inst, RetInst):
                self._process_ret(node, inst)
            # other instructions (binop/cmp/br/funentry) are pointer-neutral
        else:
            self._process_mem_node(node, dirty)

    def _process_field(self, inst: FieldInst) -> None:
        base_mask = self.value_mask(inst.base)
        mask = 0
        for oid in iter_bits(base_mask):
            obj = self.module.objects[oid]
            if isinstance(obj, FunctionObject):
                continue
            mask |= 1 << self.module.field_object(obj, inst.field).id
        self.set_pt(inst.dst, mask)

    # ----------------------------------------------------------------- calls

    def _process_call(self, node: InstNode, call: CallInst) -> None:
        callees: List[Function] = []
        if call.is_indirect():
            for oid in iter_bits(self.value_mask(call.callee)):
                func = self._function_objects.get(oid)
                if func is not None:
                    callees.append(func)
        else:
            assert isinstance(call.callee, Function)
            callees.append(call.callee)
        for callee in callees:
            if callee.is_declaration:
                continue
            if self.callgraph.add_edge(call, callee):
                if self.faults is not None:
                    self.faults.fire("otf_edge", self.analysis_name)
                if call.is_indirect():
                    self.stats.indirect_calls_resolved += 1
                touched = self.svfg.connect_callsite(call, callee)
                self._on_new_call_edge(call, callee, touched)
                for src in touched:
                    self.worklist.push(src)
                # The RET rule spreads over callsites_of(callee), which
                # just grew — replay it even when the SVFG edges already
                # existed (build-time-wired direct calls leave *touched*
                # empty, and a ret processed before this edge was
                # registered never saw this callsite).
                exit_inst = callee.exit_inst()
                if exit_inst is not None and call.dst is not None:
                    self.worklist.push(self.svfg.inst_node[exit_inst].id)
        # Bind actual arguments to formal parameters (CALL rule).
        for callee in self.callgraph.callees_of(call):
            for arg, param in zip(call.args, callee.params):
                mask = self.value_mask(arg)
                if mask:
                    self.set_pt(param, mask)

    def _process_ret(self, node: InstNode, ret: RetInst) -> None:
        if not isinstance(ret.value, Variable):
            return
        mask = self.value_mask(ret.value)
        if not mask:
            return
        function = node.function
        assert function is not None
        for call in self.callgraph.callsites_of(function):
            if call.dst is not None:
                self.set_pt(call.dst, mask)

    # ------------------------------------------------------------- mem hooks

    def _process_load(self, node: InstNode, inst: LoadInst,
                      dirty: Optional[Dict[int, int]] = None) -> None:
        raise NotImplementedError

    def _process_store(self, node: InstNode, inst: StoreInst,
                       dirty: Optional[Dict[int, int]] = None) -> None:
        raise NotImplementedError

    def _process_mem_node(self, node: SVFGNode,
                          dirty: Optional[Dict[int, int]] = None) -> None:
        raise NotImplementedError

    def _on_new_call_edge(self, call: CallInst, callee: Function, touched: List[int]) -> None:
        """Hook: a flow-sensitively discovered call edge was wired in."""

    def _memory_footprint(self) -> None:
        """Hook: fill ``stats.stored_ptsets`` / ``stats.stored_ptset_bits``."""
        raise NotImplementedError

    # --------------------------------------------------------------- helpers

    def _union_counters(self) -> Tuple[int, int]:
        """This solve's cumulative union-cache (hits, misses): any
        pre-resume baseline plus the shared repo's growth since this
        solver was constructed."""
        base_hits, base_misses = self._union_baseline
        if self.ptrepo is None:
            return base_hits, base_misses
        hits0, misses0 = self._repo_counter_base
        return (base_hits + self.ptrepo.union_hits - hits0,
                base_misses + self.ptrepo.union_misses - misses0)

    def _batch_counters(self) -> Tuple[int, int]:
        """This solve's cumulative batch-memo (hits, misses)."""
        base_hits, base_misses = self._batch_baseline
        if self.batch is None:
            return base_hits, base_misses
        hits0, misses0 = self._batch_counter_base
        return (base_hits + self.batch.hits - hits0,
                base_misses + self.batch.misses - misses0)

    def _finish_footprint(self, entries) -> None:
        """Fill storage stats from every stored table entry (id or mask).

        ``stored_ptsets`` counts referenced non-empty sets, ``unique_*``
        their exact deduplication (what a repo physically keeps), and the
        union-cache counters come from the repo when one is attached.
        """
        entry_mask = self._entry_mask
        sets = 0
        bits = 0
        seen: Set[int] = set()
        for entry in entries:
            mask = entry_mask(entry)
            if mask:
                sets += 1
                bits += count_bits(mask)
                seen.add(mask)
        self.stats.stored_ptsets = sets
        self.stats.stored_ptset_bits = bits
        self.stats.unique_ptsets = len(seen)
        self.stats.unique_ptset_bits = sum(count_bits(mask) for mask in seen)
        if self.ptrepo is not None:
            stats = self.stats
            stats.union_cache_hits, stats.union_cache_misses = \
                self._union_counters()
            stats.batch_memo_hits, stats.batch_memo_misses = \
                self._batch_counters()
            repo = self.ptrepo
            stats.interner_entries = repo.size
            stats.union_cache_entries = repo.union_cache_size
            stats.batch_cache_entries = (self.batch.entries
                                         if self.batch is not None else 0)
            stats.dedup_resident_bytes = repo.content_bytes()
            arena = self.mde.arena if self.mde is not None else None
            if arena is not None:
                stats.arena_masks = len(arena)
                stats.arena_resident_bytes = arena.resident_bytes

    def strong_update_target(self, ptr_mask: int) -> Optional[int]:
        """If a store through *ptr_mask* may strong-update, the object id.

        Requires pt(p) to be exactly one object which is a singleton
        (SU/WU rule interacting with the kill function, §IV-D).
        """
        if ptr_mask and not ptr_mask & (ptr_mask - 1):  # exactly one bit
            oid = ptr_mask.bit_length() - 1
            if self.module.objects[oid].is_singleton:
                return oid
        return None

    def defers_passthrough(self, ptr_mask: int, oid: int) -> bool:
        """Schedule-independence gate for the store pass-through rule.

        A store visited while its pointer operand is still unresolved
        (pt(p) = ∅) must not pass a *singleton* object's incoming set
        through: if pt(p) later resolves to exactly that object the store
        strong-updates, and the already-leaked set can never be retracted
        (OUT accumulation is monotone) — so whether the leak happens would
        depend on the visit schedule.  Deferring is lossless whenever the
        pointer eventually resolves: any growth of pt(p) re-pushes the
        store for a full revisit (``set_pt`` pushes ``var_uses``), which
        replays the strong/weak/pass-through decision against the full
        incoming set.  Non-singleton objects can never be strong-updated,
        so their pass-through is safe from the first visit.  With this
        gate every transfer function's contribution is bounded by its
        value at the final fixpoint, making the solve confluent: any
        fair schedule — FIFO, LIFO, or the sharded parallel one — reaches
        the same least fixpoint bit for bit (DESIGN.md §10).
        """
        return not ptr_mask and self.module.objects[oid].is_singleton
