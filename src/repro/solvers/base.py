"""Machinery shared by the staged flow-sensitive solvers (SFS and VSFS).

Both solvers walk the same SVFG with the same top-level (direct) rules —
``ADDR``, ``COPY``, ``PHI``, ``FIELD-ADDR``, ``CALL``, ``RET`` of Figure 10 —
and the same on-the-fly call graph resolution.  They differ only in how the
points-to set of an address-taken object is *stored and propagated*:

- SFS keeps an ``IN``/``OUT`` map per SVFG node (multiple-object sparsity);
- VSFS keys one global table by ``(object, version)`` (adds single-object
  sparsity).

Subclasses implement the five memory hooks (`_process_load`,
`_process_store`, `_process_mem_node`, `_on_new_call_edge`, and
`_memory_footprint`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.datastructs.bitset import count_bits, iter_bits
from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    CallInst,
    CopyInst,
    FieldInst,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.values import FunctionObject, MemObject, Variable
from repro.svfg.builder import SVFG
from repro.svfg.nodes import (
    ActualINNode,
    ActualOUTNode,
    FormalINNode,
    FormalOUTNode,
    InstNode,
    MemPhiNode,
    SVFGNode,
)


@dataclass
class SolverStats:
    """Counters describing one flow-sensitive solve.

    ``propagations`` counts indirect (per-object) set propagations along
    SVFG edges / version constraints — the quantity VSFS reduces.
    ``stored_ptsets``/``stored_ptset_bits`` describe the final memory
    footprint of address-taken points-to data, the paper's memory story.
    """

    analysis: str = ""
    solve_time: float = 0.0
    pre_time: float = 0.0  # versioning time for VSFS, 0 for SFS
    nodes_processed: int = 0
    propagations: int = 0
    unions: int = 0
    strong_updates: int = 0
    weak_updates: int = 0
    stored_ptsets: int = 0
    stored_ptset_bits: int = 0
    top_level_bits: int = 0
    callgraph_edges: int = 0
    indirect_calls_resolved: int = 0

    def total_time(self) -> float:
        return self.pre_time + self.solve_time


class FlowSensitiveResult:
    """Final points-to information exposed by SFS/VSFS.

    Top-level variables have one global points-to set each (partial SSA);
    address-taken precision is observable through the loads that read it.
    """

    def __init__(self, module: Module, pt: List[int], callgraph: CallGraph, stats: SolverStats):
        self.module = module
        self._pt = pt
        self.callgraph = callgraph
        self.stats = stats

    def pts_mask(self, var: Variable) -> int:
        if var.id < 0 or var.id >= len(self._pt):
            return 0
        return self._pt[var.id]

    def points_to(self, var: Variable) -> Set[MemObject]:
        return {self.module.objects[oid] for oid in iter_bits(self.pts_mask(var))}

    def may_alias(self, a: Variable, b: Variable) -> bool:
        return bool(self.pts_mask(a) & self.pts_mask(b))

    def snapshot(self) -> Dict[int, int]:
        """var id -> mask for every non-empty top-level set (for tests)."""
        return {vid: mask for vid, mask in enumerate(self._pt) if mask}


class StagedSolverBase:
    """Worklist solver over the SVFG; see module docstring."""

    analysis_name = "base"

    def __init__(self, svfg: SVFG):
        self.svfg = svfg
        self.module = svfg.module
        self.andersen = svfg.andersen
        self.memssa = svfg.memssa
        self.pt: List[int] = [0] * len(self.module.variables)
        self.callgraph = CallGraph(self.module)
        self.stats = SolverStats(analysis=self.analysis_name)
        # FIFO worklist of SVFG node ids with O(1) dedup.
        from repro.datastructs.worklist import FIFOWorkList

        self.worklist: FIFOWorkList[int] = FIFOWorkList()
        self._function_objects: Dict[int, Function] = {
            obj.id: obj.function
            for obj in self.module.objects
            if isinstance(obj, FunctionObject)
        }

    # ------------------------------------------------------------- top level

    def set_pt(self, var: Variable, mask: int) -> bool:
        """Grow pt(var); on growth, push every node reading *var*."""
        vid = var.id
        new = self.pt[vid] | mask
        if new == self.pt[vid]:
            return False
        self.pt[vid] = new
        for user in self.svfg.var_uses.get(vid, ()):
            self.worklist.push(user)
        return True

    def value_mask(self, value: object) -> int:
        """pt of an operand (constants and unregistered values are empty)."""
        if isinstance(value, Variable) and 0 <= value.id < len(self.pt):
            return self.pt[value.id]
        return 0

    # ------------------------------------------------------------ main solve

    def run(self) -> FlowSensitiveResult:
        self._prepare()  # fills stats.pre_time (versioning, for VSFS)
        start = time.perf_counter()
        # Seed the worklist with the rule-bearing instruction nodes; memory
        # nodes (MEMPHI, actual/formal IN/OUT) only act once points-to data
        # reaches them, which pushes them again.
        seed_types = (AllocInst, CopyInst, PhiInst, FieldInst, LoadInst,
                      StoreInst, CallInst, RetInst)
        for node in self.svfg.nodes:
            if isinstance(node, InstNode) and isinstance(node.inst, seed_types):
                self.worklist.push(node.id)
        while self.worklist:
            node_id = self.worklist.pop()
            self.stats.nodes_processed += 1
            self._process(self.svfg.nodes[node_id])
        self.stats.solve_time = time.perf_counter() - start
        self.stats.callgraph_edges = self.callgraph.num_edges()
        self.stats.top_level_bits = sum(count_bits(mask) for mask in self.pt)
        self._memory_footprint()
        return FlowSensitiveResult(self.module, self.pt, self.callgraph, self.stats)

    def _prepare(self) -> None:
        """Hook: pre-solve setup (VSFS runs versioning here)."""

    def _process(self, node: SVFGNode) -> None:
        if isinstance(node, InstNode):
            inst = node.inst
            if isinstance(inst, AllocInst):
                self.set_pt(inst.dst, 1 << inst.obj.id)
            elif isinstance(inst, CopyInst):
                self.set_pt(inst.dst, self.value_mask(inst.src))
            elif isinstance(inst, PhiInst):
                mask = 0
                for __, value in inst.incomings:
                    mask |= self.value_mask(value)
                self.set_pt(inst.dst, mask)
            elif isinstance(inst, FieldInst):
                self._process_field(inst)
            elif isinstance(inst, LoadInst):
                self._process_load(node, inst)
            elif isinstance(inst, StoreInst):
                self._process_store(node, inst)
            elif isinstance(inst, CallInst):
                self._process_call(node, inst)
            elif isinstance(inst, RetInst):
                self._process_ret(node, inst)
            # other instructions (binop/cmp/br/funentry) are pointer-neutral
        else:
            self._process_mem_node(node)

    def _process_field(self, inst: FieldInst) -> None:
        base_mask = self.value_mask(inst.base)
        mask = 0
        for oid in iter_bits(base_mask):
            obj = self.module.objects[oid]
            if isinstance(obj, FunctionObject):
                continue
            mask |= 1 << self.module.field_object(obj, inst.field).id
        self.set_pt(inst.dst, mask)

    # ----------------------------------------------------------------- calls

    def _process_call(self, node: InstNode, call: CallInst) -> None:
        callees: List[Function] = []
        if call.is_indirect():
            for oid in iter_bits(self.value_mask(call.callee)):
                func = self._function_objects.get(oid)
                if func is not None:
                    callees.append(func)
        else:
            assert isinstance(call.callee, Function)
            callees.append(call.callee)
        for callee in callees:
            if callee.is_declaration:
                continue
            if self.callgraph.add_edge(call, callee):
                if call.is_indirect():
                    self.stats.indirect_calls_resolved += 1
                touched = self.svfg.connect_callsite(call, callee)
                self._on_new_call_edge(call, callee, touched)
                for src in touched:
                    self.worklist.push(src)
        # Bind actual arguments to formal parameters (CALL rule).
        for callee in self.callgraph.callees_of(call):
            for arg, param in zip(call.args, callee.params):
                mask = self.value_mask(arg)
                if mask:
                    self.set_pt(param, mask)

    def _process_ret(self, node: InstNode, ret: RetInst) -> None:
        if not isinstance(ret.value, Variable):
            return
        mask = self.value_mask(ret.value)
        if not mask:
            return
        function = node.function
        assert function is not None
        for call in self.callgraph.callsites_of(function):
            if call.dst is not None:
                self.set_pt(call.dst, mask)

    # ------------------------------------------------------------- mem hooks

    def _process_load(self, node: InstNode, inst: LoadInst) -> None:
        raise NotImplementedError

    def _process_store(self, node: InstNode, inst: StoreInst) -> None:
        raise NotImplementedError

    def _process_mem_node(self, node: SVFGNode) -> None:
        raise NotImplementedError

    def _on_new_call_edge(self, call: CallInst, callee: Function, touched: List[int]) -> None:
        """Hook: a flow-sensitively discovered call edge was wired in."""

    def _memory_footprint(self) -> None:
        """Hook: fill ``stats.stored_ptsets`` / ``stats.stored_ptset_bits``."""
        raise NotImplementedError

    # --------------------------------------------------------------- helpers

    def strong_update_target(self, ptr_mask: int) -> Optional[int]:
        """If a store through *ptr_mask* may strong-update, the object id.

        Requires pt(p) to be exactly one object which is a singleton
        (SU/WU rule interacting with the kill function, §IV-D).
        """
        if ptr_mask and not ptr_mask & (ptr_mask - 1):  # exactly one bit
            oid = ptr_mask.bit_length() - 1
            if self.module.objects[oid].is_singleton:
                return oid
        return None
