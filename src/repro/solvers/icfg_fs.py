"""Classic flow-sensitive points-to analysis on the interprocedural CFG.

This is the textbook iterative dataflow formulation of §IV-A (Equations
(4)/(5)): every instruction keeps an IN and OUT map over *all* address-taken
objects, joined over CFG predecessors — no sparsity at all.  It is far too
slow for real programs (which is the paper's starting point) but serves as
the precision ground truth for the test suite: on any program,

    pt_ICFG(v)  ⊆  pt_SFS(v) = pt_VSFS(v)  ⊆  pt_Andersen(v)

Top-level variables are in partial SSA form (single static definition), so
they keep one global points-to set — flow-sensitive treatment would not
change them.

Call handling matches the staged solvers: a call site has edges to resolved
callee entries, callee exits flow to the instruction after the call, and a
*bypass* edge call → return-site preserves objects callees do not modify
(the staged solvers get the same effect from the χ bypass; keeping the two
treatments aligned makes the precision comparison exact).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.datastructs.bitset import count_bits, iter_bits
from repro.datastructs.worklist import FIFOWorkList
from repro.errors import BudgetExceeded
from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    BranchInst,
    CallInst,
    CopyInst,
    FieldInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.values import FunctionObject, Variable
from repro.solvers.base import FlowSensitiveResult, SolverStats


class ICFGFlowSensitive:
    """Dense iterative dataflow solver on the interprocedural CFG."""

    analysis_name = "icfg-fs"

    def __init__(self, module: Module, meter=None, checkpointer=None,
                 ctx=None):
        if ctx is not None:
            meter = ctx.meter if meter is None else meter
            checkpointer = ctx.checkpointer if checkpointer is None else checkpointer
        self.module = module
        self.meter = meter
        self.checkpointer = checkpointer
        self._resumed = False
        self.pt: List[int] = [0] * len(module.variables)
        self.in_sets: Dict[Instruction, Dict[int, int]] = {}
        self.out_sets: Dict[Instruction, Dict[int, int]] = {}
        self.callgraph = CallGraph(module)
        self.stats = SolverStats(analysis=self.analysis_name)
        self.worklist: FIFOWorkList[Instruction] = FIFOWorkList()
        self._succs: Dict[Instruction, List[Instruction]] = {}
        self._var_uses: Dict[int, List[Instruction]] = {}
        self._function_objects: Dict[int, Function] = {
            obj.id: obj.function
            for obj in module.objects
            if isinstance(obj, FunctionObject)
        }
        self._build_intraprocedural_cfg()
        self._index_var_uses()

    # -------------------------------------------------------------- structure

    def _build_intraprocedural_cfg(self) -> None:
        for function in self.module.functions.values():
            for block in function.blocks:
                insts = block.instructions
                for prev, nxt in zip(insts, insts[1:]):
                    self._succs.setdefault(prev, []).append(nxt)
                term = block.terminator()
                if isinstance(term, BranchInst):
                    for target in term.targets:
                        if target.instructions:
                            self._succs.setdefault(term, []).append(target.instructions[0])

    def _index_var_uses(self) -> None:
        for inst in self.module.instructions():
            for operand in inst.operands():
                if isinstance(operand, Variable):
                    self._var_uses.setdefault(operand.id, []).append(inst)

    def _add_icfg_edge(self, src: Instruction, dst: Instruction) -> None:
        succs = self._succs.setdefault(src, [])
        if dst not in succs:
            succs.append(dst)
            self.worklist.push(src)

    def _return_site(self, call: CallInst) -> Instruction:
        block = call.block
        assert block is not None
        index = block.instructions.index(call)
        return block.instructions[index + 1]

    # ------------------------------------------------------------- utilities

    def set_pt(self, var: Variable, mask: int) -> bool:
        new = self.pt[var.id] | mask
        if new == self.pt[var.id]:
            return False
        self.pt[var.id] = new
        for user in self._var_uses.get(var.id, ()):
            self.worklist.push(user)
        return True

    def value_mask(self, value: object) -> int:
        if isinstance(value, Variable) and 0 <= value.id < len(self.pt):
            return self.pt[value.id]
        return 0

    def _join_out_into(self, src: Instruction, dst: Instruction) -> None:
        out = self.out_sets.get(src)
        if not out:
            return
        in_set = self.in_sets.setdefault(dst, {})
        changed = False
        for oid, mask in out.items():
            old = in_set.get(oid, 0)
            self.stats.propagations += 1
            if mask | old != old:
                in_set[oid] = mask | old
                changed = True
                self.stats.unions += 1
        if changed:
            self.worklist.push(dst)

    # ------------------------------------------------------------------ solve

    def run(self) -> FlowSensitiveResult:
        start = time.perf_counter()
        meter = self.meter
        checkpointer = self.checkpointer
        try:
            if meter is not None:
                meter.start()
                meter.check()
            if not self._resumed:
                for inst in self.module.instructions():
                    self.worklist.push(inst)
            if checkpointer is not None:
                tick = meter.tick if meter is not None else None
                while self.worklist:
                    if tick is not None:
                        tick()
                    checkpointer.maybe(self, self.stats.nodes_processed)
                    inst = self.worklist.pop()
                    self.stats.nodes_processed += 1
                    self._transfer(inst)
                    for succ in self._succs.get(inst, ()):
                        self._join_out_into(inst, succ)
            elif meter is not None:
                tick = meter.tick
                while self.worklist:
                    tick()
                    inst = self.worklist.pop()
                    self.stats.nodes_processed += 1
                    self._transfer(inst)
                    for succ in self._succs.get(inst, ()):
                        self._join_out_into(inst, succ)
            else:
                while self.worklist:
                    inst = self.worklist.pop()
                    self.stats.nodes_processed += 1
                    self._transfer(inst)
                    for succ in self._succs.get(inst, ()):
                        self._join_out_into(inst, succ)
        except BudgetExceeded as exc:
            self.stats.solve_time = time.perf_counter() - start
            exc.attach(
                stage=self.analysis_name,
                stats=self.stats,
                partial_result=FlowSensitiveResult(
                    self.module, self.pt, self.callgraph, self.stats,
                    complete=False),
            )
            if checkpointer is not None:
                try:
                    exc.checkpoint_path = checkpointer.save(
                        self, self.stats.nodes_processed, reason="budget")
                except OSError:
                    pass  # a full disk must not mask the budget signal
            raise
        self.stats.solve_time = time.perf_counter() - start
        self.stats.callgraph_edges = self.callgraph.num_edges()
        self.stats.top_level_bits = sum(count_bits(mask) for mask in self.pt)
        self._memory_footprint()
        return FlowSensitiveResult(self.module, self.pt, self.callgraph, self.stats)

    # ----------------------------------------------------------- persistence

    def snapshot_state(self) -> Dict[str, object]:
        """Dense IN/OUT maps keyed by instruction id, plus the worklist in
        queue order, the OTF call edges, and lazily created field objects."""
        from repro.store.codec import snapshot_call_edges, snapshot_fields

        def encode(sets: Dict[Instruction, Dict[int, int]]
                   ) -> Dict[str, Dict[str, str]]:
            return {
                str(inst.id): {str(oid): format(mask, "x")
                               for oid, mask in table.items()}
                for inst, table in sets.items()
            }

        stats = self.stats
        return {
            "pt": [format(mask, "x") for mask in self.pt],
            "in": encode(self.in_sets),
            "out": encode(self.out_sets),
            "worklist": [inst.id for inst in self.worklist.snapshot()["items"]],
            "call_edges": snapshot_call_edges(self.callgraph),
            "fields": snapshot_fields(self.module),
            "counters": {
                "nodes_processed": stats.nodes_processed,
                "propagations": stats.propagations,
                "unions": stats.unions,
                "strong_updates": stats.strong_updates,
                "weak_updates": stats.weak_updates,
                "indirect_calls_resolved": stats.indirect_calls_resolved,
            },
        }

    def restore_state(self, payload: Dict[str, object], step: int) -> None:
        """Reload :meth:`snapshot_state`; :meth:`run` then continues it."""
        from repro.errors import CheckpointError
        from repro.store.codec import (
            call_sites_by_id,
            replay_fields,
            resolve_call_edge,
        )

        try:
            replay_fields(self.module, payload["fields"])
            by_id: Dict[int, Instruction] = {
                inst.id: inst for inst in self.module.instructions()}

            def decode(sets: Dict[str, Dict[str, str]]
                       ) -> Dict[Instruction, Dict[int, int]]:
                decoded: Dict[Instruction, Dict[int, int]] = {}
                for inst_id, table in sets.items():
                    inst = by_id.get(int(inst_id))
                    if inst is None:
                        raise CheckpointError(
                            f"IN/OUT table refers to unknown instruction "
                            f"{inst_id}")
                    decoded[inst] = {int(oid): int(mask, 16)
                                     for oid, mask in table.items()}
                return decoded

            pt = [int(text, 16) for text in payload["pt"]]
            if len(pt) != len(self.pt):
                raise CheckpointError(
                    f"top-level table has {len(pt)} entries, module has "
                    f"{len(self.pt)} variables")
            self.pt = pt
            self.in_sets = decode(payload["in"])
            self.out_sets = decode(payload["out"])
            # Call edges also re-wire the interprocedural CFG edges that
            # _transfer_call added when it discovered them (entry/exit →
            # return-site); _add_icfg_edge pushes onto the worklist, which
            # is harmless because the recorded worklist is restored below.
            sites = call_sites_by_id(self.module)
            for inst_id, callee_name in payload["call_edges"]:
                call, callee = resolve_call_edge(self.module, sites, inst_id,
                                                 callee_name)
                if self.callgraph.add_edge(call, callee):
                    self._add_icfg_edge(call, callee.entry_inst)
                    exit_inst = callee.exit_inst()
                    if exit_inst is not None:
                        self._add_icfg_edge(exit_inst, self._return_site(call))
            items: List[Instruction] = []
            for inst_id in payload["worklist"]:
                inst = by_id.get(int(inst_id))
                if inst is None:
                    raise CheckpointError(
                        f"worklist refers to unknown instruction {inst_id}")
                items.append(inst)
            self.worklist.restore({"items": items})
            counters = payload["counters"]
            stats = self.stats
            stats.nodes_processed = counters["nodes_processed"]
            stats.propagations = counters["propagations"]
            stats.unions = counters["unions"]
            stats.strong_updates = counters["strong_updates"]
            stats.weak_updates = counters["weak_updates"]
            stats.indirect_calls_resolved = counters["indirect_calls_resolved"]
        except CheckpointError:
            raise
        except (KeyError, ValueError, TypeError, IndexError, AttributeError) as err:
            raise CheckpointError(
                f"checkpoint payload does not restore cleanly: "
                f"{type(err).__name__}: {err}", reason="corrupt") from err
        self.stats.resumed_steps = self.stats.nodes_processed
        self._resumed = True
        if self.checkpointer is not None:
            self.checkpointer.mark_resumed(step)

    def _transfer(self, inst: Instruction) -> None:
        in_set = self.in_sets.get(inst, {})

        if isinstance(inst, AllocInst):
            self.set_pt(inst.dst, 1 << inst.obj.id)
        elif isinstance(inst, CopyInst):
            self.set_pt(inst.dst, self.value_mask(inst.src))
        elif isinstance(inst, PhiInst):
            mask = 0
            for __, value in inst.incomings:
                mask |= self.value_mask(value)
            self.set_pt(inst.dst, mask)
        elif isinstance(inst, FieldInst):
            mask = 0
            for oid in iter_bits(self.value_mask(inst.base)):
                obj = self.module.objects[oid]
                if not isinstance(obj, FunctionObject):
                    mask |= 1 << self.module.field_object(obj, inst.field).id
            self.set_pt(inst.dst, mask)
        elif isinstance(inst, LoadInst):
            mask = 0
            for oid in iter_bits(self.value_mask(inst.ptr)):
                mask |= in_set.get(oid, 0)
            if mask:
                self.set_pt(inst.dst, mask)
        elif isinstance(inst, CallInst):
            self._transfer_call(inst)
        elif isinstance(inst, RetInst):
            function = inst.function
            if isinstance(inst.value, Variable):
                mask = self.value_mask(inst.value)
                if mask:
                    for call in self.callgraph.callsites_of(function):
                        if call.dst is not None:
                            self.set_pt(call.dst, mask)

        # OUT = Gen ∪ (IN − Kill); identity for everything but stores.
        # run() propagates OUT into successors right after this returns.
        if isinstance(inst, StoreInst):
            self._transfer_store(inst, in_set)
        else:
            out_set = self.out_sets.setdefault(inst, {})
            for oid, mask in in_set.items():
                old = out_set.get(oid, 0)
                if mask | old != old:
                    out_set[oid] = mask | old

    def _transfer_store(self, inst: StoreInst, in_set: Dict[int, int]) -> None:
        ptr_mask = self.value_mask(inst.ptr)
        gen = self.value_mask(inst.value)
        su_oid: Optional[int] = None
        if ptr_mask and not ptr_mask & (ptr_mask - 1):
            oid = ptr_mask.bit_length() - 1
            if self.module.objects[oid].is_singleton:
                su_oid = oid
        out_set = self.out_sets.setdefault(inst, {})
        touched = set(in_set) | set(iter_bits(ptr_mask))
        for oid in touched:
            incoming = in_set.get(oid, 0)
            if oid == su_oid:
                out = gen
                self.stats.strong_updates += 1
            elif ptr_mask >> oid & 1:
                out = incoming | gen
                self.stats.weak_updates += 1
            else:
                out = incoming
            out_set[oid] = out_set.get(oid, 0) | out

    def _transfer_call(self, call: CallInst) -> None:
        callees: List[Function] = []
        if call.is_indirect():
            for oid in iter_bits(self.value_mask(call.callee)):
                func = self._function_objects.get(oid)
                if func is not None:
                    callees.append(func)
        else:
            assert isinstance(call.callee, Function)
            callees.append(call.callee)
        for callee in callees:
            if callee.is_declaration:
                continue
            if self.callgraph.add_edge(call, callee):
                entry = callee.entry_inst
                self._add_icfg_edge(call, entry)
                exit_inst = callee.exit_inst()
                if exit_inst is not None:
                    self._add_icfg_edge(exit_inst, self._return_site(call))
                self.worklist.push(call)
        for callee in self.callgraph.callees_of(call):
            for arg, param in zip(call.args, callee.params):
                mask = self.value_mask(arg)
                if mask:
                    self.set_pt(param, mask)

    def _memory_footprint(self) -> None:
        sets = 0
        bits = 0
        for table in list(self.in_sets.values()) + list(self.out_sets.values()):
            for mask in table.values():
                if mask:
                    sets += 1
                    bits += count_bits(mask)
        self.stats.stored_ptsets = sets
        self.stats.stored_ptset_bits = bits


def run_icfg_fs(module: Module, meter=None,
                checkpointer=None) -> FlowSensitiveResult:
    """Run the dense ICFG flow-sensitive analysis (small programs only)."""
    return ICFGFlowSensitive(module, meter=meter,
                             checkpointer=checkpointer).run()
