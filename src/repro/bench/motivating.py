"""The paper's motivating example (Figures 2 and 9) as a runnable program.

Figure 2 shows an SVFG fragment (from GNU ``true``) where one object ``o``
is defined by two stores and read by four loads: two loads before a
conditional weak store see ``{a}``, two loads after the join see ``{a, b}``.
SFS keeps six points-to sets for ``o`` (four INs + two OUTs) and six
propagation constraints; VSFS keeps **three** sets (κ₁, κ₂, κ₁⊙κ₂) and
**two** constraints (κ₁ → κ₁⊙κ₂ and κ₂ → κ₁⊙κ₂).

The mini-C program below compiles to an SVFG containing exactly that
shape for the global slot ``o1``:

- ``o1 = &a``                 — the κ₁-yielding store (ℓ₁);
- ``sink_l2(o1); sink_l3(o1)`` — the two loads consuming κ₁ (ℓ₂, ℓ₃);
- a *may*-store ``*p = &b`` on a branch (p ∈ {&o1, &o2}), weak, yielding κ₂;
- ``sink_l4(o1); sink_l5(o1)`` — the two loads after the join, both
  consuming the meld κ₁⊙κ₂ (ℓ₄, ℓ₅).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.versioning import ObjectVersioning
from repro.frontend import compile_c
from repro.ir.instructions import LoadInst
from repro.pipeline import AnalysisPipeline
from repro.svfg.nodes import InstNode

MOTIVATING_SOURCE = """
int *o1; int *o2;
int a; int b;
void sink_l2(int *v) { }
void sink_l3(int *v) { }
void sink_l4(int *v) { }
void sink_l5(int *v) { }
int main(int c) {
    o1 = &a;
    sink_l2(o1);
    sink_l3(o1);
    if (c) {
        int **p;
        if (c) { p = &o1; } else { p = &o2; }
        *p = &b;
    }
    sink_l4(o1);
    sink_l5(o1);
    return 0;
}
"""


@dataclass
class MotivatingReport:
    """What Figure 2b compares, measured on this implementation."""

    #: pt observed at each sink (ℓ₂..ℓ₅), by sink name.
    observed: Dict[str, Set[str]]
    #: distinct non-ε versions of o1 (the paper's 3: κ₁, κ₂, κ₁⊙κ₂).
    vsfs_ptsets_for_o1: int
    #: deduplicated VSFS propagation constraints for o1 (the paper's 2).
    vsfs_constraints_for_o1: int
    #: SFS points-to set copies held for o1 across IN/OUT maps (≥ 6).
    sfs_ptsets_for_o1: int
    #: SFS propagations performed for o1 (≥ 6).
    sfs_propagations_for_o1: int
    #: version of o1 consumed per sink's load (ℓ₂/ℓ₃ share; ℓ₄/ℓ₅ share).
    consumed_versions: Dict[str, int]


def run_motivating_example() -> MotivatingReport:
    """Compile, analyse, and measure the motivating example."""
    module = compile_c(MOTIVATING_SOURCE)
    pipeline = AnalysisPipeline(module)
    o1 = next(obj for obj in module.objects if obj.name == "o1")

    # --- VSFS side: versions and constraints for o1.
    svfg = pipeline.fresh_svfg()
    versioning = ObjectVersioning(svfg, keep_all_versions=True).run()
    vsfs_sets = max(versioning.num_versions(o1.id) - 1, 0)  # minus ε
    vsfs_constraints = sum(
        len(dsts)
        for (oid, __), dsts in versioning.constraints.items()
        if oid == o1.id
    )

    # Which version each sink's load consumes (loads of o1 in main).
    consumed: Dict[str, int] = {}
    main = module.functions["main"]
    o1_var = next(v for v in module.variables if v.name == "o1")
    sink_order = ["sink_l2", "sink_l3", "sink_l4", "sink_l5"]
    loads = [
        node
        for node in svfg.nodes
        if isinstance(node, InstNode)
        and isinstance(node.inst, LoadInst)
        and node.function is main
        and node.inst.ptr is o1_var
    ]
    for sink, node in zip(sink_order, loads):
        consumed[sink] = versioning.consumed_version(node.id, o1.id)

    # --- SFS side: count IN/OUT entries and propagations for o1.
    from repro.solvers.sfs import SFSAnalysis

    sfs_svfg = pipeline.fresh_svfg()
    sfs = SFSAnalysis(sfs_svfg)
    sfs_result = sfs.run()
    sfs_sets = sum(1 for table in sfs.in_sets.values() if table.get(o1.id))
    sfs_sets += sum(1 for table in sfs.out_sets.values() if table.get(o1.id))
    sfs_props = sum(
        len(succs)
        for node_id in range(len(sfs_svfg.nodes))
        for oid, succs in sfs_svfg.ind_succs[node_id].items()
        if oid == o1.id
    )

    # --- Observed precision at the sinks (from the VSFS run; SFS agrees,
    # asserted by the test suite).
    vsfs_result = pipeline.vsfs()
    observed = {
        sink: {obj.name for obj in vsfs_result.points_to(module.functions[sink].params[0])}
        for sink in sink_order
    }

    return MotivatingReport(
        observed=observed,
        vsfs_ptsets_for_o1=vsfs_sets,
        vsfs_constraints_for_o1=vsfs_constraints,
        sfs_ptsets_for_o1=sfs_sets,
        sfs_propagations_for_o1=sfs_props,
        consumed_versions=consumed,
    )
