"""Benchmark harness: workloads, metrics, and paper-table reproduction.

- :mod:`repro.bench.workloads` — a seeded mini-C program generator plus the
  15-program ``SUITE`` standing in for the paper's open-source benchmarks
  (Table II), scaled to pure-Python solver speed.
- :mod:`repro.bench.metrics` — measurement helpers (wall time, tracemalloc
  peaks, solver counters).
- :mod:`repro.bench.tables` — text rendering of Tables II/III and geometric
  means.
- :mod:`repro.bench.runner` — end-to-end experiment driver used by the
  pytest benches and :mod:`examples.suite_report`.
"""

from repro.bench.workloads import SUITE, WorkloadConfig, generate_program, suite_program
from repro.bench.metrics import BenchmarkMeasurement, measure_analysis
from repro.bench.runner import SuiteResult, run_suite_program
from repro.bench.tables import format_table2, format_table3, geometric_mean

__all__ = [
    "SUITE",
    "WorkloadConfig",
    "generate_program",
    "suite_program",
    "BenchmarkMeasurement",
    "measure_analysis",
    "SuiteResult",
    "run_suite_program",
    "format_table2",
    "format_table3",
    "geometric_mean",
]
