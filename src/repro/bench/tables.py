"""Text rendering of the paper's tables (II and III)."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.bench.runner import SuiteResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive entries (paper's averaging)."""
    logs = [math.log(value) for value in values if value > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def _render(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    table = [list(map(str, headers))] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_table2(results: List[SuiteResult]) -> str:
    """Benchmark characteristics (the paper's Table II columns)."""
    headers = ["Bench.", "LOC", "#Nodes", "#D.Edges", "#I.Edges",
               "Top-Level", "Addr-Taken", "Description"]
    rows = []
    for res in results:
        stats = res.svfg_stats
        rows.append([
            res.name, res.loc, stats.num_nodes, stats.num_direct_edges,
            stats.num_indirect_edges, stats.num_top_level_vars,
            stats.num_address_taken_vars, res.description,
        ])
    return _render(headers, rows)


def _dedup_cell(meas) -> str:
    """``unique/referenced`` stored sets, '-' when the repo was off."""
    stats = meas.stats
    if stats is None or not stats.ptrepo_enabled:
        return "-"
    return f"{stats.unique_ptsets}/{stats.stored_ptsets}"


def format_table3(results: List[SuiteResult]) -> str:
    """Main results (the paper's Table III): time and memory, SFS vs VSFS,
    plus the repository's dedup evidence (unique vs referenced sets and
    memoised-union cache hit rate)."""
    headers = [
        "Bench.",
        "Ander(s)", "SFS(s)", "VSFS ver.(s)", "VSFS main(s)",
        "SFS mem(KiB)", "VSFS mem(KiB)",
        "Time diff.", "Mem diff.", "Prop diff.", "Sets diff.",
        "SFS uniq/ref", "VSFS uniq/ref", "U-cache hit",
    ]
    rows = []
    time_diffs: List[float] = []
    mem_diffs: List[float] = []
    prop_diffs: List[float] = []
    set_diffs: List[float] = []
    hit_rates: List[float] = []
    for res in results:
        time_diff = res.time_speedup()
        mem_diff = res.memory_ratio()
        prop_diff = res.propagation_ratio()
        sets_diff = res.stored_sets_ratio()
        time_diffs.append(time_diff)
        mem_diffs.append(mem_diff)
        prop_diffs.append(prop_diff)
        set_diffs.append(sets_diff)
        hit_rate = res.sfs.union_cache_hit_rate
        hit_rates.append(hit_rate)
        rows.append([
            res.name,
            f"{res.andersen_time:.3f}",
            f"{res.sfs.wall_time:.3f}",
            f"{res.vsfs.stats.pre_time:.3f}" if res.vsfs.stats else "-",
            f"{res.vsfs_main_time():.3f}",
            f"{res.sfs.peak_bytes / 1024:.0f}",
            f"{res.vsfs.peak_bytes / 1024:.0f}",
            f"{time_diff:.2f}x",
            f"{mem_diff:.2f}x",
            f"{prop_diff:.2f}x",
            f"{sets_diff:.2f}x",
            _dedup_cell(res.sfs),
            _dedup_cell(res.vsfs),
            f"{hit_rate:.1%}" if res.sfs.stats and res.sfs.stats.ptrepo_enabled else "-",
        ])
    rows.append([
        "Average", "", "", "", "", "", "",
        f"{geometric_mean(time_diffs):.2f}x",
        f"{geometric_mean(mem_diffs):.2f}x",
        f"{geometric_mean(prop_diffs):.2f}x",
        f"{geometric_mean(set_diffs):.2f}x",
        "", "",
        f"{sum(hit_rates) / len(hit_rates):.1%}" if hit_rates else "-",
    ])
    return _render(headers, rows)
