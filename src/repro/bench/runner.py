"""End-to-end experiment driver for the suite benchmarks.

Replicates the paper's measurement protocol: the auxiliary (Andersen)
analysis, memory SSA and SVFG construction are *excluded* from the SFS/VSFS
"main phase" times; VSFS's versioning time is reported separately (Table
III's "ver." column).  Solves run through the stage-graph engine, so each
solver gets its own copy of the shared SVFG build (on-the-fly call graph
resolution mutates the graph) and every run is traced — the JSON output
embeds the per-stage wall/steps breakdown with substrate stages marked
``main_phase: false``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.metrics import BenchmarkMeasurement, measure_analysis
from repro.bench.workloads import SUITE, suite_program, suite_source_loc
from repro.pipeline import AnalysisPipeline
from repro.runtime.budget import Budget
from repro.runtime.degrade import andersen_as_flow_sensitive, run_ladder
from repro.svfg.builder import SVFGStats


@dataclass
class SuiteResult:
    """All measurements for one benchmark program."""

    name: str
    description: str
    loc: int
    svfg_stats: SVFGStats
    andersen_time: float
    sfs: BenchmarkMeasurement
    vsfs: BenchmarkMeasurement

    def vsfs_main_time(self) -> float:
        if self.vsfs.stats is not None:
            return self.vsfs.stats.solve_time
        return self.vsfs.wall_time

    def time_speedup(self) -> float:
        """SFS main-phase time over VSFS total (versioning + main) time."""
        vsfs_total = self.vsfs.wall_time
        return self.sfs.wall_time / vsfs_total if vsfs_total > 0 else 0.0

    def memory_ratio(self) -> float:
        return (
            self.sfs.peak_bytes / self.vsfs.peak_bytes
            if self.vsfs.peak_bytes > 0
            else 0.0
        )

    def propagation_ratio(self) -> float:
        """SFS indirect propagations over VSFS's — the core saving."""
        vsfs_props = max(self.vsfs.propagations, 1)
        return self.sfs.propagations / vsfs_props

    def stored_sets_ratio(self) -> float:
        vsfs_sets = max(self.vsfs.stored_ptsets, 1)
        return self.sfs.stored_ptsets / vsfs_sets

    def precision_identical(self) -> bool:
        """Filled by run_suite_program: SFS and VSFS agree on every var."""
        return self._identical

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record: per-program times, counters, dedup stats."""

        def measurement(meas: BenchmarkMeasurement) -> Dict[str, object]:
            record: Dict[str, object] = {
                "wall_time_s": meas.wall_time,
                "peak_bytes": meas.peak_bytes,
            }
            stats = meas.stats
            if stats is not None:
                record.update(
                    pre_time_s=stats.pre_time,
                    solve_time_s=stats.solve_time,
                    nodes_processed=stats.nodes_processed,
                    propagations=stats.propagations,
                    unions=stats.unions,
                    strong_updates=stats.strong_updates,
                    weak_updates=stats.weak_updates,
                    stored_ptsets=stats.stored_ptsets,
                    stored_ptset_bits=stats.stored_ptset_bits,
                    unique_ptsets=stats.unique_ptsets,
                    unique_ptset_bits=stats.unique_ptset_bits,
                    dedup_ratio=stats.dedup_ratio(),
                    union_cache_hits=stats.union_cache_hits,
                    union_cache_misses=stats.union_cache_misses,
                    union_cache_hit_rate=stats.union_cache_hit_rate(),
                    delta_kernel=stats.delta_kernel,
                    ptrepo_enabled=stats.ptrepo_enabled,
                    mde_batch=stats.mde_batch,
                    batch_memo_hits=stats.batch_memo_hits,
                    batch_memo_misses=stats.batch_memo_misses,
                    batch_memo_hit_rate=stats.batch_memo_hit_rate(),
                    interner_entries=stats.interner_entries,
                    union_cache_entries=stats.union_cache_entries,
                    batch_cache_entries=stats.batch_cache_entries,
                    dedup_resident_bytes=stats.dedup_resident_bytes,
                    arena_masks=stats.arena_masks,
                    arena_resident_bytes=stats.arena_resident_bytes,
                )
            if meas.report is not None:
                record["run_report"] = meas.report.to_dict()
            return record

        svfg = self.svfg_stats
        return {
            "name": self.name,
            "description": self.description,
            "loc": self.loc,
            "svfg": {
                "nodes": svfg.num_nodes,
                "direct_edges": svfg.num_direct_edges,
                "indirect_edges": svfg.num_indirect_edges,
                "top_level_vars": svfg.num_top_level_vars,
                "address_taken_vars": svfg.num_address_taken_vars,
            },
            "andersen_time_s": self.andersen_time,
            "sfs": measurement(self.sfs),
            "vsfs": measurement(self.vsfs),
            "ratios": {
                "time_speedup": self.time_speedup(),
                "memory_ratio": self.memory_ratio(),
                "propagation_ratio": self.propagation_ratio(),
                "stored_sets_ratio": self.stored_sets_ratio(),
            },
            "precision_identical": self.precision_identical(),
            "parallel": self.parallel_runs or None,
            "stages": self.stages,
        }

    _identical: bool = field(default=True, repr=False)
    #: Sharded-solve comparisons (``--jobs``): analysis -> list of
    #: per-worker-count records with wall times, speedups, the driver's
    #: :class:`~repro.parallel.driver.ParallelStats` (per-worker timings
    #: included) and a bit-identity check against the serial result.
    parallel_runs: Dict[str, List[Dict[str, object]]] = field(
        default_factory=dict, repr=False)
    #: Per-stage wall/steps trace from the pipeline's engine (substrate
    #: stages carry ``main_phase: false`` — excluded from the timed main
    #: phase, matching Table III's protocol).
    stages: Optional[List[Dict[str, object]]] = field(default=None, repr=False)


def run_suite_program(name: str, check_equivalence: bool = True,
                      budget: Optional[Budget] = None,
                      jobs: Sequence[int] = ()) -> SuiteResult:
    """Build, analyse, and measure one suite benchmark.

    Every solver run is governed by the degradation ladder so each
    measurement carries a :class:`~repro.runtime.diagnostics.RunReport`;
    with *budget*, a run that exhausts it degrades to the (already
    computed) Andersen floor instead of failing the suite.

    With *jobs* (e.g. ``(2, 4)``), each staged analysis is additionally
    solved on that many sharded workers (:mod:`repro.parallel`) and the
    parallel wall time, per-worker timings and bit-identity against the
    serial result are recorded under ``parallel_runs``.
    """
    config = SUITE[name]
    module = suite_program(name)
    pipeline = AnalysisPipeline(module)
    andersen = pipeline.andersen()
    pipeline.memssa()  # shared, excluded from main-phase time
    svfg_stats = pipeline.svfg().stats()

    # The paper excludes auxiliary analysis, memory SSA and SVFG
    # construction from the measured phase; the engine builds that
    # substrate once and hands every solve its own copy of the SVFG
    # (OTF call graph resolution mutates it).
    sfs_solver_holder = {}
    vsfs_solver_holder = {}

    def governed(label: str):
        """Run one engine solve under the ladder; tag the result."""
        # Fresh dedup engine per measurement: rungs *within* one governed
        # run still share it (that is the cross-rung hash-consing under
        # test), but the sfs and vsfs columns must not warm each other or
        # Table III's comparison loses meaning.
        pipeline.engine.ctx.mde = None
        method = pipeline.sfs if label == "sfs" else pipeline.vsfs
        result, report = run_ladder(
            [
                (label, lambda meter: method(meter=meter)),
                ("andersen",
                 lambda meter: andersen_as_flow_sensitive(
                     andersen, degraded_from=label)),
            ],
            budget=budget,
            requested=label,
        )
        result.precision_level = report.precision_level
        result.degraded_from = report.degraded_from
        result.report = report
        return result

    def run_sfs_time():
        sfs_solver_holder["result"] = governed("sfs")
        return sfs_solver_holder["result"]

    def run_vsfs_time():
        vsfs_solver_holder["result"] = governed("vsfs")
        return vsfs_solver_holder["result"]

    sfs_measure = measure_analysis(
        "sfs", run_sfs_time,
        memory_thunk=lambda: governed("sfs"),
    )
    vsfs_measure = measure_analysis(
        "vsfs", run_vsfs_time,
        memory_thunk=lambda: governed("vsfs"),
    )

    result = SuiteResult(
        name=name,
        description=config.description,
        loc=suite_source_loc(name),
        svfg_stats=svfg_stats,
        andersen_time=andersen.stats.solve_time,
        sfs=sfs_measure,
        vsfs=vsfs_measure,
    )
    if check_equivalence:
        sfs_pt = sfs_solver_holder["result"]._pt
        vsfs_pt = vsfs_solver_holder["result"]._pt
        result._identical = sfs_pt == vsfs_pt

    for label in ("sfs", "vsfs") if jobs else ():
        serial = (sfs_solver_holder if label == "sfs"
                  else vsfs_solver_holder).get("result")
        method = pipeline.sfs_par if label == "sfs" else pipeline.vsfs_par
        # Serial main phase = solve_time (+ versioning for VSFS, which the
        # parallel driver folds into its wall via the shared snapshot).
        serial_wall = (serial.stats.solve_time if serial is not None else 0.0)
        if label == "vsfs" and serial is not None:
            serial_wall += serial.stats.pre_time
        runs: List[Dict[str, object]] = []
        for n in jobs:
            pipeline.engine.ctx.mde = None  # cold per worker-count run
            par = method(jobs=n)
            pstats = par.parallel
            runs.append({
                "jobs": n,
                "wall_s": round(pstats.wall_s, 6),
                "serial_wall_s": round(serial_wall, 6),
                "speedup": round(serial_wall / pstats.wall_s, 4)
                if pstats.wall_s > 0 else 0.0,
                "identical": (serial is not None
                              and par._pt == serial._pt),
                "solve_time_s": round(par.stats.solve_time, 6),
                "parallel": pstats.to_dict(),
            })
        result.parallel_runs[label] = runs

    result.stages = pipeline.trace.to_dict()
    return result


def write_results_json(results: List[SuiteResult], path: str) -> None:
    """Write ``BENCH_table3.json``-style output for downstream tooling.

    Written atomically (temp file + fsync + rename): a crash or kill
    mid-write can never leave a truncated half-JSON where downstream
    tooling expects results — the previous file, if any, survives intact.
    """
    from repro.store.atomic import atomic_write_json

    import os

    payload = {
        "suite": [res.to_dict() for res in results],
        "programs": [res.name for res in results],
        #: Parallel speedups are bounded by the host: on one CPU the only
        #: win is the staged sweep's work reduction (see DESIGN.md §10).
        "cpus": os.cpu_count(),
    }
    atomic_write_json(path, payload)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.bench.runner [--json [PATH]] [PROGRAM ...]``."""
    import argparse

    from repro.bench.tables import format_table3

    parser = argparse.ArgumentParser(
        prog="repro.bench.runner",
        description="Run the suite benchmarks and print the Table III summary.",
    )
    parser.add_argument(
        "programs", nargs="*", metavar="PROGRAM",
        help=f"suite programs to run (default: all of {', '.join(SUITE)})",
    )
    parser.add_argument(
        "--json", nargs="?", const="BENCH_table3.json", default=None,
        metavar="PATH",
        help="also write per-program times, counters and dedup stats as "
             "JSON (default path: BENCH_table3.json)",
    )
    parser.add_argument("--budget-seconds", type=float, metavar="S",
                        help="per-run wall-clock budget (degrades to the "
                             "Andersen floor on exhaustion)")
    parser.add_argument("--budget-mb", type=float, metavar="MB",
                        help="per-run traced-memory budget")
    parser.add_argument("--max-steps", type=int, metavar="N",
                        help="per-run solver step budget")
    parser.add_argument("--jobs", default=None, metavar="N[,N...]",
                        help="additionally solve each program on these "
                             "sharded worker counts (e.g. 2,4) and record "
                             "parallel-vs-serial walls, per-worker timings "
                             "and bit-identity in the JSON output")
    args = parser.parse_args(argv)

    if args.json in SUITE:
        # argparse greedily binds "--json du" as the PATH; a bare suite
        # program name is never a sensible output file, so catch the slip
        # instead of silently running all 15 programs.
        parser.error(
            f"--json consumed suite program {args.json!r} as its PATH; "
            f"use --json=PATH or place --json after the program names"
        )
    names = args.programs or list(SUITE)
    unknown = [name for name in names if name not in SUITE]
    if unknown:
        parser.error(f"unknown suite program(s): {', '.join(unknown)}")

    budget = None
    if args.budget_seconds is not None or args.budget_mb is not None \
            or args.max_steps is not None:
        max_memory = None
        if args.budget_mb is not None:
            max_memory = int(args.budget_mb * 1024 * 1024)
        budget = Budget(wall_seconds=args.budget_seconds,
                        max_steps=args.max_steps,
                        max_memory_bytes=max_memory)

    jobs: List[int] = []
    if args.jobs:
        try:
            jobs = sorted({max(1, int(part))
                           for part in args.jobs.split(",") if part.strip()})
        except ValueError:
            parser.error(f"--jobs wants worker counts like 2,4; "
                         f"got {args.jobs!r}")

    results = [run_suite_program(name, budget=budget, jobs=jobs)
               for name in names]
    print(format_table3(results))
    for res in results:
        for label, runs in res.parallel_runs.items():
            for run in runs:
                marker = "" if run["identical"] else "  RESULT MISMATCH"
                print(f"parallel {res.name} {label} --jobs {run['jobs']}: "
                      f"{run['wall_s']:.3f}s vs serial "
                      f"{run['serial_wall_s']:.3f}s "
                      f"({run['speedup']:.2f}x){marker}")
    degradations = [
        (res.name, meas.report)
        for res in results
        for meas in (res.sfs, res.vsfs)
        if meas.report is not None and meas.report.degraded
    ]
    for name, report in degradations:
        print(f"NOTE: {name}: {report.summary()}")
    if args.json is not None:
        write_results_json(results, args.json)
        print(f"wrote {args.json}")
    parallel_ok = all(run["identical"]
                      for res in results
                      for runs in res.parallel_runs.values()
                      for run in runs)
    if budget is not None:
        # Degraded runs legitimately differ in precision; the budgeted
        # suite succeeds as long as every program produced an answer.
        return 0 if parallel_ok else 1
    return 0 if (parallel_ok
                 and all(res.precision_identical() for res in results)) else 1


if __name__ == "__main__":
    raise SystemExit(main())
