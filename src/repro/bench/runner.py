"""End-to-end experiment driver for the suite benchmarks.

Replicates the paper's measurement protocol: the auxiliary (Andersen)
analysis, memory SSA and SVFG construction are *excluded* from the SFS/VSFS
"main phase" times; VSFS's versioning time is reported separately (Table
III's "ver." column).  Each solver gets its own freshly built SVFG because
on-the-fly call graph resolution mutates the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.metrics import BenchmarkMeasurement, measure_analysis
from repro.bench.workloads import SUITE, suite_program, suite_source_loc
from repro.core.vsfs import VSFSAnalysis
from repro.pipeline import AnalysisPipeline
from repro.solvers.sfs import SFSAnalysis
from repro.svfg.builder import SVFGStats


@dataclass
class SuiteResult:
    """All measurements for one benchmark program."""

    name: str
    description: str
    loc: int
    svfg_stats: SVFGStats
    andersen_time: float
    sfs: BenchmarkMeasurement
    vsfs: BenchmarkMeasurement

    def vsfs_main_time(self) -> float:
        if self.vsfs.stats is not None:
            return self.vsfs.stats.solve_time
        return self.vsfs.wall_time

    def time_speedup(self) -> float:
        """SFS main-phase time over VSFS total (versioning + main) time."""
        vsfs_total = self.vsfs.wall_time
        return self.sfs.wall_time / vsfs_total if vsfs_total > 0 else 0.0

    def memory_ratio(self) -> float:
        return (
            self.sfs.peak_bytes / self.vsfs.peak_bytes
            if self.vsfs.peak_bytes > 0
            else 0.0
        )

    def propagation_ratio(self) -> float:
        """SFS indirect propagations over VSFS's — the core saving."""
        vsfs_props = max(self.vsfs.propagations, 1)
        return self.sfs.propagations / vsfs_props

    def stored_sets_ratio(self) -> float:
        vsfs_sets = max(self.vsfs.stored_ptsets, 1)
        return self.sfs.stored_ptsets / vsfs_sets

    def precision_identical(self) -> bool:
        """Filled by run_suite_program: SFS and VSFS agree on every var."""
        return self._identical

    _identical: bool = field(default=True, repr=False)


def run_suite_program(name: str, check_equivalence: bool = True) -> SuiteResult:
    """Build, analyse, and measure one suite benchmark."""
    config = SUITE[name]
    module = suite_program(name)
    pipeline = AnalysisPipeline(module)
    andersen = pipeline.andersen()
    pipeline.memssa()  # shared, excluded from main-phase time
    svfg_stats = pipeline.svfg().stats()

    # The paper excludes auxiliary analysis, memory SSA and SVFG
    # construction from the measured phase, so each run gets a pre-built
    # SVFG (fresh per run: OTF call graph resolution mutates it).
    sfs_solver_holder = {}
    vsfs_solver_holder = {}
    svfgs = {key: pipeline.fresh_svfg() for key in ("sfs-t", "sfs-m", "vsfs-t", "vsfs-m")}

    def run_sfs_time():
        sfs_solver_holder["result"] = SFSAnalysis(svfgs["sfs-t"]).run()
        return sfs_solver_holder["result"]

    def run_vsfs_time():
        vsfs_solver_holder["result"] = VSFSAnalysis(svfgs["vsfs-t"]).run()
        return vsfs_solver_holder["result"]

    sfs_measure = measure_analysis(
        "sfs", run_sfs_time, memory_thunk=lambda: SFSAnalysis(svfgs["sfs-m"]).run()
    )
    vsfs_measure = measure_analysis(
        "vsfs", run_vsfs_time, memory_thunk=lambda: VSFSAnalysis(svfgs["vsfs-m"]).run()
    )

    result = SuiteResult(
        name=name,
        description=config.description,
        loc=suite_source_loc(name),
        svfg_stats=svfg_stats,
        andersen_time=andersen.stats.solve_time,
        sfs=sfs_measure,
        vsfs=vsfs_measure,
    )
    if check_equivalence:
        sfs_pt = sfs_solver_holder["result"]._pt
        vsfs_pt = vsfs_solver_holder["result"]._pt
        result._identical = sfs_pt == vsfs_pt
    return result
