"""Seeded synthetic mini-C workloads.

The paper evaluates on 15 open-source C/C++ programs compiled to LLVM
bitcode — inputs we cannot ship or compile here (see DESIGN.md §2).  This
module generates *structurally equivalent* inputs: heap-intensive programs
full of stores/loads through may-alias pointers, control-flow joins, global
data structures shared across deep call chains, and function-pointer
dispatch — the ingredients that produce the single-object redundancy VSFS
removes.  Generation is deterministic per (name, seed, knobs).

``SUITE`` mirrors the paper's benchmark list (du … hyriseConsole) with
sizes that grow roughly like the paper's Table II (scaled down ~50× so a
pure-Python SFS finishes in seconds rather than hours).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import compile_c
from repro.ir.module import Module


@dataclass
class WorkloadConfig:
    """Knobs for the program generator.

    The defaults produce a small but non-trivial program; the ``SUITE``
    configs scale them per benchmark.
    """

    name: str = "workload"
    seed: int = 1
    num_fields: int = 4            # pointer fields per node struct
    num_globals: int = 6           # global `struct node *` roots
    num_handlers: int = 2          # global function-pointer slots
    num_functions: int = 10        # generated worker functions
    stmts_per_function: int = 12   # statement budget per function body
    max_call_depth: int = 3        # nesting of direct call chains
    indirect_call_rate: float = 0.1   # fraction of calls made through fnptrs
    store_rate: float = 0.25       # stores vs loads in the statement mix
    branch_rate: float = 0.25      # probability a statement is an if/else
    loop_rate: float = 0.1         # probability a statement is a loop
    malloc_rate: float = 0.15      # fresh heap objects in the mix
    recursion_rate: float = 0.02   # chance a call targets any function
    description: str = ""


class _Generator:
    """Emits one deterministic mini-C translation unit."""

    def __init__(self, config: WorkloadConfig):
        self.config = config
        self.rng = random.Random(config.seed)
        self.lines: List[str] = []
        self._label = 0

    # ------------------------------------------------------------ utilities

    def emit(self, line: str, indent: int = 0) -> None:
        self.lines.append("    " * indent + line)

    def fresh(self, hint: str) -> str:
        self._label += 1
        return f"{hint}{self._label}"

    def global_name(self, index: int) -> str:
        return f"g{index}"

    def any_global(self) -> str:
        return self.global_name(self.rng.randrange(self.config.num_globals))

    def field(self) -> str:
        return f"f{self.rng.randrange(self.config.num_fields)}"

    # ------------------------------------------------------------ generation

    def generate(self) -> str:
        cfg = self.config
        fields = "".join(f" struct node *f{i};" for i in range(cfg.num_fields))
        self.emit(f"struct node {{ int val;{fields} }};")
        self.emit("")
        for i in range(cfg.num_globals):
            self.emit(f"struct node *g{i};")
        for i in range(cfg.num_handlers):
            self.emit(f"fnptr h{i};")
        self.emit("")
        for index in range(cfg.num_functions):
            self._function(index)
        self._main()
        return "\n".join(self.lines) + "\n"

    def _ptr_expr(self, locals_: List[str]) -> str:
        """A pointer-valued expression over available locals/globals."""
        rng = self.rng
        choice = rng.random()
        pool = locals_ + [self.any_global()]
        base = rng.choice(pool)
        if choice < 0.35:
            return base
        if choice < 0.7:
            return f"{base}->{self.field()}"
        if choice < 0.85:
            return self.any_global()
        return f"{base}->{self.field()}->{self.field()}"

    def _statement(self, locals_: List[str], indent: int, depth: int, fn_index: int,
                   in_loop: bool = False) -> None:
        cfg = self.config
        rng = self.rng
        roll = rng.random()
        if roll < cfg.branch_rate and depth < 3:
            cond_var = rng.choice(locals_)
            # Nested blocks get a copy of the scope: their declarations must
            # not leak into statements emitted after the block.
            self.emit(f"if ({cond_var} != null) {{", indent)
            then_scope = list(locals_)
            for __ in range(rng.randrange(1, 3)):
                self._statement(then_scope, indent + 1, depth + 1, fn_index, in_loop)
            # Occasionally break/continue out of an enclosing loop from the
            # taken branch (exercises the frontend's loop-context lowering).
            if in_loop and rng.random() < 0.25:
                self.emit(rng.choice(["break;", "continue;"]), indent + 1)
            self.emit("} else {", indent)
            else_scope = list(locals_)
            for __ in range(rng.randrange(1, 3)):
                self._statement(else_scope, indent + 1, depth + 1, fn_index, in_loop)
            self.emit("}", indent)
            return
        roll -= cfg.branch_rate
        if roll < cfg.loop_rate and depth < 3:
            counter = self.fresh("i")
            bound = rng.randrange(2, 8)
            self.emit(f"int {counter};", indent)
            if rng.random() < 0.25:
                self.emit(f"{counter} = 0;", indent)
                self.emit("do {", indent)
                body_scope = list(locals_)
                for __ in range(rng.randrange(1, 3)):
                    self._statement(body_scope, indent + 1, depth + 1, fn_index, True)
                self.emit(f"{counter} += 1;", indent + 1)
                self.emit(f"}} while ({counter} < {bound});", indent)
            else:
                self.emit(f"for ({counter} = 0; {counter} < {bound}; {counter}++) {{",
                          indent)
                body_scope = list(locals_)
                for __ in range(rng.randrange(1, 3)):
                    self._statement(body_scope, indent + 1, depth + 1, fn_index, True)
                self.emit("}", indent)
            return
        roll -= cfg.loop_rate
        if roll < cfg.malloc_rate:
            name = self.fresh("m")
            self.emit(f"struct node *{name} = (struct node*)malloc(sizeof(struct node));",
                      indent)
            self.emit(f"{name}->{self.field()} = {rng.choice(locals_)};", indent)
            locals_.append(name)
            return
        roll -= cfg.malloc_rate
        call_rate = 0.2
        if roll < call_rate and fn_index > 0:
            self._call_stmt(locals_, indent, fn_index)
            return
        roll -= call_rate
        if rng.random() < cfg.store_rate:
            target = rng.choice(locals_ + [self.any_global()])
            if rng.random() < 0.5:
                self.emit(f"{target}->{self.field()} = {self._ptr_expr(locals_)};", indent)
            else:
                self.emit(f"{self.any_global()} = {self._ptr_expr(locals_)};", indent)
        else:
            name = self.fresh("v")
            self.emit(f"struct node *{name} = {self._ptr_expr(locals_)};", indent)
            locals_.append(name)

    def _call_stmt(self, locals_: List[str], indent: int, fn_index: int) -> None:
        cfg = self.config
        rng = self.rng
        args = f"{rng.choice(locals_)}, {self._ptr_expr(locals_)}"
        name = self.fresh("r")
        if rng.random() < cfg.indirect_call_rate and cfg.num_handlers:
            handler = f"h{rng.randrange(cfg.num_handlers)}"
            self.emit(f"struct node *{name} = {handler}({args});", indent)
        else:
            if rng.random() < cfg.recursion_rate:
                target = rng.randrange(cfg.num_functions)
            else:
                target = rng.randrange(fn_index)  # lower-indexed: mostly a DAG
            self.emit(f"struct node *{name} = fn{target}({args});", indent)
        locals_.append(name)

    def _function(self, index: int) -> None:
        cfg = self.config
        self.emit(f"struct node *fn{index}(struct node *a, struct node *b) {{")
        locals_ = ["a", "b"]
        for __ in range(cfg.stmts_per_function):
            self._statement(locals_, 1, 0, index)
        self.emit(f"return {self.rng.choice(locals_)};", 1)
        self.emit("}")
        self.emit("")

    def _main(self) -> None:
        cfg = self.config
        rng = self.rng
        self.emit("int main() {")
        # Seed the global roots with fresh heap structures.
        for i in range(cfg.num_globals):
            self.emit(f"g{i} = (struct node*)malloc(sizeof(struct node));", 1)
        # Link some globals into shared shapes (aliasing across roots).
        for __ in range(cfg.num_globals):
            self.emit(f"{self.any_global()}->{self.field()} = {self.any_global()};", 1)
        # Register function pointers.
        for i in range(cfg.num_handlers):
            target = rng.randrange(cfg.num_functions)
            self.emit(f"h{i} = fn{target};", 1)
        # Heap-intensive driver loop.
        self.emit("int i;", 1)
        self.emit("for (i = 0; i < 8; i = i + 1) {", 1)
        calls = max(2, cfg.num_functions // 3)
        for __ in range(calls):
            target = rng.randrange(cfg.num_functions)
            self.emit(f"{self.any_global()} = fn{target}({self.any_global()}, "
                      f"{self.any_global()});", 2)
        self.emit("}", 1)
        self.emit("return 0;", 1)
        self.emit("}")


def generate_source(config: WorkloadConfig) -> str:
    """Deterministically generate mini-C source for *config*."""
    return _Generator(config).generate()


def generate_program(config: WorkloadConfig) -> Module:
    """Generate and compile a workload into an analysis-ready module."""
    return compile_c(generate_source(config), name=config.name)


def _suite_config(
    name: str,
    seed: int,
    functions: int,
    stmts: int,
    globals_: int,
    handlers: int,
    indirect: float,
    description: str,
) -> WorkloadConfig:
    return WorkloadConfig(
        name=name,
        seed=seed,
        num_functions=functions,
        stmts_per_function=stmts,
        num_globals=globals_,
        num_handlers=handlers,
        indirect_call_rate=indirect,
        description=description,
    )


#: The 15-program suite mirroring the paper's Table II (scaled down).
#: Ordering and relative sizes follow the paper: du is the smallest,
#: hyriseConsole the largest; bake/janet/astyle are indirect-flow heavy.
SUITE: Dict[str, WorkloadConfig] = {
    cfg.name: cfg
    for cfg in [
        _suite_config("du", 101, 6, 8, 4, 1, 0.05, "Disk usage (GNU)"),
        _suite_config("ninja", 102, 8, 9, 5, 2, 0.10, "Build system"),
        _suite_config("bake", 103, 8, 10, 5, 3, 0.30, "Build system"),
        _suite_config("dpkg", 104, 9, 9, 5, 1, 0.05, "Package manager"),
        _suite_config("nano", 105, 10, 10, 6, 2, 0.15, "Text editor"),
        _suite_config("i3", 106, 11, 10, 6, 2, 0.08, "Window manager"),
        _suite_config("psql", 107, 12, 10, 6, 2, 0.08, "PostgreSQL frontend"),
        _suite_config("janet", 108, 12, 12, 7, 3, 0.30, "Janet compiler"),
        _suite_config("astyle", 109, 14, 12, 7, 3, 0.25, "Code formatter"),
        _suite_config("tmux", 110, 15, 12, 8, 2, 0.12, "Terminal multiplexer"),
        _suite_config("mruby", 111, 16, 11, 8, 2, 0.10, "Ruby interpreter"),
        _suite_config("mutt", 112, 17, 12, 8, 3, 0.18, "Terminal email client"),
        _suite_config("bash", 113, 19, 13, 9, 3, 0.15, "UNIX shell"),
        _suite_config("lynx", 114, 21, 13, 10, 3, 0.20, "Terminal web browser"),
        _suite_config("hyriseConsole", 115, 23, 14, 10, 4, 0.22, "Hyrise DB frontend"),
    ]
}

_module_cache: Dict[str, Module] = {}


def suite_program(name: str, cached: bool = True) -> Module:
    """Compile (and cache) one suite benchmark by name."""
    if cached and name in _module_cache:
        return _module_cache[name]
    module = generate_program(SUITE[name])
    if cached:
        _module_cache[name] = module
    return module


def suite_source_loc(name: str) -> int:
    """Lines of generated mini-C source (the Table II 'LOC' stand-in)."""
    return generate_source(SUITE[name]).count("\n")
