"""Measurement helpers for the benchmark harness.

The paper measures wall-clock seconds (C ``clock``) and maximum resident
size (GNU ``time``).  A Python reproduction's absolute numbers mean little,
so each measurement records three levels of evidence:

- wall-clock time of the measured phase (comparable within this repo);
- ``tracemalloc`` peak bytes during the phase (the "memory" column);
- the solver's own counters (propagations, stored sets, set bits) — the
  hardware-independent quantities the paper's speedups are made of.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.solvers.base import SolverStats


@dataclass
class BenchmarkMeasurement:
    """One analysis run on one program."""

    analysis: str
    wall_time: float
    peak_bytes: int
    stats: Optional[SolverStats] = None
    #: RunReport when the run was governed (budgets / degradation ladder).
    report: Optional[object] = None

    @property
    def propagations(self) -> int:
        return self.stats.propagations if self.stats else 0

    @property
    def stored_ptsets(self) -> int:
        return self.stats.stored_ptsets if self.stats else 0

    @property
    def unions(self) -> int:
        """Set-union operations applied during the solve."""
        return self.stats.unions if self.stats else 0

    @property
    def unique_ptsets(self) -> int:
        """Distinct points-to sets behind the stored references."""
        return self.stats.unique_ptsets if self.stats else 0

    @property
    def dedup_ratio(self) -> float:
        """Stored references per distinct set (1.0 = no sharing)."""
        return self.stats.dedup_ratio() if self.stats else 0.0

    @property
    def union_cache_hit_rate(self) -> float:
        return self.stats.union_cache_hit_rate() if self.stats else 0.0


def measure_analysis(
    label: str,
    thunk: Callable[[], object],
    memory_thunk: Optional[Callable[[], object]] = None,
) -> BenchmarkMeasurement:
    """Measure *thunk*: wall time untraced, then memory under tracemalloc.

    tracemalloc slows allocation-heavy code several-fold, so (like the
    paper, which also uses separate runs for time and memory) timing and
    memory use **separate runs**: *thunk* is timed without tracing and
    *memory_thunk* (a fresh, equivalent run; defaults to *thunk*) provides
    the traced peak.
    """
    start = time.perf_counter()
    result = thunk()
    wall = time.perf_counter() - start

    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    (memory_thunk or thunk)()
    __, peak = tracemalloc.get_traced_memory()
    if not was_tracing:
        tracemalloc.stop()

    stats = getattr(result, "stats", None)
    return BenchmarkMeasurement(
        analysis=label,
        wall_time=wall,
        peak_bytes=peak,
        stats=stats if isinstance(stats, SolverStats) else None,
        report=getattr(result, "report", None),
    )
