"""Object versioning of an SVFG via meld labelling (§IV-C).

Phase 1 — *prelabelling* (Figure 6):

- ``[STORE]ᴾ``: every STORE node yields a **fresh** version of each object
  it may define (its χ set), because a store may change that object's
  points-to set;
- ``[OTF-CG]ᴾ``: every *δ node* (FormalIN of a potential indirect-call
  target, ActualOUT of an indirect call site) consumes a fresh version of
  its object, because its incoming edges are only discovered during
  on-the-fly call graph resolution.

Phase 2 — *meld labelling* (Figure 8): versions propagate along
``o``-labelled indirect edges; ``[EXTERNAL]ⱽ`` melds the yielded version of
the source into the consumed version of the target (except into δ nodes,
whose prelabels are frozen), and ``[INTERNAL]ⱽ`` makes every non-STORE node
yield what it consumes.  Labels are bit masks over per-object prelabel
indices and the meld operator is bitwise-or, exactly the representation the
paper suggests (LLVM ``SparseBitVector``).

Phase 3 — *interning*: each distinct final mask of an object becomes a
dense version id, so "same version" is an int comparison and the global
``(object, version) → points-to set`` table is compact.  The identity ε
(mask 0) is version 0 of every object: it marks nodes unreachable from any
store, whose points-to set for that object is permanently empty.

Two propagation strategies are provided (cross-checked in the tests):

- ``"scc"`` (default): per object, collapse the cycles of the *relay*
  subgraph (nodes that forward what they consume — non-STORE, non-δ), then
  propagate prelabels in one topological pass; each object's label masks
  are interned and **released** before the next object is processed, so
  peak memory is bounded by the largest single object, mirroring SVF's
  conversion of SparseBitVector melds to plain version numbers.
- ``"fixpoint"``: the literal worklist reading of Figure 8.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.datastructs.interning import Interner
from repro.errors import AnalysisError
from repro.ir.instructions import LoadInst, StoreInst
from repro.svfg.builder import SVFG
from repro.svfg.nodes import (
    ActualINNode,
    ActualOUTNode,
    FormalINNode,
    FormalOUTNode,
    InstNode,
    SVFGNode,
)


def _node_needs_versions(node: SVFGNode) -> bool:
    """Nodes whose C/Y entries the solver consults after constraint
    collection: loads and stores (the rules of Figure 10) and the
    actual/formal IN/OUT nodes (on-the-fly call graph resolution)."""
    if isinstance(node, InstNode):
        return isinstance(node.inst, (LoadInst, StoreInst))
    return isinstance(node, (ActualINNode, ActualOUTNode, FormalINNode, FormalOUTNode))


@dataclass
class VersioningStats:
    """Cost and effect of the versioning pre-analysis."""

    time: float = 0.0
    prelabels: int = 0
    meld_steps: int = 0
    versions: int = 0          # distinct (object, version) pairs (incl. ε)
    consume_entries: int = 0   # C(o) entries across nodes
    yield_entries: int = 0     # Y(o) entries across nodes


class ObjectVersioning:
    """The versioning result: C/Y functions plus version-level constraints.

    - :meth:`consumed_version` / :meth:`yielded_version` are the paper's
      ``C_ℓ(o)`` and ``Y_ℓ(o)``;
    - :attr:`constraints` are the deduplicated propagation constraints
      ``pt_κ(o) ⊆ pt_κ'(o)`` induced by SVFG edges whose endpoint versions
      differ (the set whose size Figure 2b compares against SFS).
    """

    #: Version id of the identity label ε (always interned first).
    EPSILON = 0

    def __init__(self, svfg: SVFG, keep_all_versions: bool = False):
        self.svfg = svfg
        self.stats = VersioningStats()
        self.keep_all_versions = keep_all_versions
        self._is_store: List[bool] = [
            isinstance(node, InstNode) and isinstance(node.inst, StoreInst)
            for node in svfg.nodes
        ]
        # Dense version tables: per node, obj id -> version id.  After
        # constraint collection, versions are only consulted at LOAD/STORE
        # nodes ([LOAD]ⱽ/[STORE]ⱽ) and at actual/formal IN/OUT nodes (OTF
        # call graph resolution); entries elsewhere (MEMPHIs, mostly) are
        # dropped unless *keep_all_versions* — set it when introspecting
        # versions node-by-node (examples, tests).  Single-object nodes
        # store their pair on the node itself (see SVFGNode); dict tables
        # are allocated lazily and share one immutable empty dict.
        empty: Dict[int, int] = {}
        self._empty = empty
        self.consumed: List[Dict[int, int]] = [empty] * len(svfg.nodes)
        self.yielded: List[Dict[int, int]] = [empty] * len(svfg.nodes)
        self._keep: List[bool] = [
            keep_all_versions or _node_needs_versions(node) for node in svfg.nodes
        ]
        # Single-object nodes: versions live on the node (int slots).
        self._single: List[bool] = [
            not keep_all_versions
            and isinstance(node, (ActualINNode, ActualOUTNode, FormalINNode, FormalOUTNode))
            for node in svfg.nodes
        ]
        #: (oid, src version) -> [dst versions]: deduplicated A-PROP work.
        self.constraints: Dict[Tuple[int, int], List[int]] = {}
        self._constraint_set: Set[Tuple[int, int, int]] = set()
        self._version_counts: Dict[int, int] = {}
        # Raw label masks, kept only when run(release_masks=False).
        self.consumed_masks: Optional[List[Dict[int, int]]] = None
        self.yielded_masks: Optional[List[Dict[int, int]]] = None

    # ------------------------------------------------------------ public API

    def consumed_version(self, node_id: int, oid: int) -> int:
        """``C_ℓ(o)`` — the version node ℓ consumes for object *oid*."""
        if self._single[node_id]:
            return self.svfg.nodes[node_id].consumed_ver
        return self.consumed[node_id].get(oid, self.EPSILON)

    def yielded_version(self, node_id: int, oid: int) -> int:
        """``Y_ℓ(o)`` — the version node ℓ yields for object *oid*."""
        if self._single[node_id]:
            return self.svfg.nodes[node_id].yielded_ver
        if self._is_store[node_id]:
            return self.yielded[node_id].get(oid, self.EPSILON)
        return self.consumed[node_id].get(oid, self.EPSILON)

    def _set_consumed(self, node_id: int, oid: int, ver: int) -> None:
        if self._single[node_id]:
            self.svfg.nodes[node_id].consumed_ver = ver
            # Non-store single-object nodes yield what they consume.
            self.svfg.nodes[node_id].yielded_ver = ver
            return
        table = self.consumed[node_id]
        if table is self._empty:
            table = self.consumed[node_id] = {}
            if not self._is_store[node_id]:
                self.yielded[node_id] = table  # [INTERNAL]ⱽ sharing
        table[oid] = ver

    def _set_yielded(self, node_id: int, oid: int, ver: int) -> None:
        if self._single[node_id]:
            self.svfg.nodes[node_id].yielded_ver = ver
            return
        if not self._is_store[node_id]:
            self._set_consumed(node_id, oid, ver)
            return
        table = self.yielded[node_id]
        if table is self._empty:
            table = self.yielded[node_id] = {}
        table[oid] = ver

    def num_versions(self, oid: int) -> int:
        return self._version_counts.get(oid, 0)

    def add_constraint(self, oid: int, src_ver: int, dst_ver: int) -> bool:
        """Register an OTF-discovered constraint; return True if new."""
        if src_ver == dst_ver:
            return False
        key = (oid, src_ver, dst_ver)
        if key in self._constraint_set:
            return False
        self._constraint_set.add(key)
        self.constraints.setdefault((oid, src_ver), []).append(dst_ver)
        return True

    def num_constraints(self) -> int:
        return len(self._constraint_set)

    # ----------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Checkpointable versioning state (C/Y tables + constraints).

        Snapshotting — rather than re-running the meld pre-analysis on
        resume — matters for two reasons: the tables already contain every
        constraint discovered *on the fly* (which a fresh pre-analysis over
        the restored call graph would have to re-derive), and restoring is
        O(entries) where melding is the dominant pre-analysis cost.
        """
        single = []
        for node_id, is_single in enumerate(self._single):
            if not is_single:
                continue
            node = self.svfg.nodes[node_id]
            if node.consumed_ver or node.yielded_ver:
                single.append([node_id, node.consumed_ver, node.yielded_ver])
        consumed = {
            str(node_id): {str(oid): ver for oid, ver in table.items()}
            for node_id, table in enumerate(self.consumed)
            if table is not self._empty and not self._single[node_id]
        }
        # Non-store nodes share their yielded dict with consumed
        # ([INTERNAL]ⱽ); only store yields carry independent information.
        yielded_store = {
            str(node_id): {str(oid): ver for oid, ver in table.items()}
            for node_id, table in enumerate(self.yielded)
            if table is not self._empty and self._is_store[node_id]
        }
        return {
            "single": single,
            "consumed": consumed,
            "yielded_store": yielded_store,
            "constraints": sorted(self._constraint_set),
            "version_counts": {str(oid): count
                               for oid, count in self._version_counts.items()},
            "time": self.stats.time,
            "prelabels": self.stats.prelabels,
            "meld_steps": self.stats.meld_steps,
            "versions": self.stats.versions,
        }

    def restore(self, state: dict) -> "ObjectVersioning":
        """Reload :meth:`snapshot` output into this (freshly built) instance.

        The receiving object must wrap the same SVFG shape (same node count
        and δ set) as the snapshotting one — checkpoint metadata guarantees
        that by matching the IR hash and configuration before we get here.
        """
        for node_id, consumed_ver, yielded_ver in state["single"]:
            node = self.svfg.nodes[node_id]
            node.consumed_ver = consumed_ver
            node.yielded_ver = yielded_ver
        # _set_consumed recreates the [INTERNAL]ⱽ dict sharing for
        # non-store nodes; store yields land in their own tables after.
        for node_key, table in state["consumed"].items():
            node_id = int(node_key)
            for oid, ver in table.items():
                self._set_consumed(node_id, int(oid), ver)
        for node_key, table in state["yielded_store"].items():
            node_id = int(node_key)
            for oid, ver in table.items():
                self._set_yielded(node_id, int(oid), ver)
        for oid, src_ver, dst_ver in state["constraints"]:
            self.add_constraint(oid, src_ver, dst_ver)
        self._version_counts = {int(oid): count
                                for oid, count in state["version_counts"].items()}
        self.stats.time = state["time"]
        self.stats.prelabels = state["prelabels"]
        self.stats.meld_steps = state["meld_steps"]
        self.stats.versions = state["versions"]
        self.stats.consume_entries = sum(
            len(table) for table in self.consumed if table is not self._empty)
        self.stats.yield_entries = sum(
            len(table) for node_id, table in enumerate(self.yielded)
            if table is not self._empty and self._is_store[node_id])
        return self

    # ------------------------------------------------------------------- run

    def run(self, strategy: str = "scc", release_masks: bool = True) -> "ObjectVersioning":
        start = time.perf_counter()
        store_prelabels, delta_prelabels = self._prelabel()
        if strategy == "scc":
            self._run_per_object(store_prelabels, delta_prelabels, release_masks)
        elif strategy == "fixpoint":
            self._run_fixpoint(store_prelabels, delta_prelabels, release_masks)
            self.stats.consume_entries = sum(len(cons) for cons in self.consumed)
            self.stats.yield_entries = sum(len(y) for y in self.yielded)
        elif strategy == "hashcons":
            self._run_hashcons(store_prelabels, delta_prelabels)
            self.stats.consume_entries = sum(len(cons) for cons in self.consumed)
            self.stats.yield_entries = sum(len(y) for y in self.yielded)
        else:
            raise AnalysisError(f"unknown meld strategy {strategy!r}")
        self.stats.versions = sum(self._version_counts.values())
        self.stats.time = time.perf_counter() - start
        return self

    # ------------------------------------------------- strategy: hash-consing

    def _run_hashcons(
        self,
        store_prelabels: Dict[int, Dict[int, int]],
        delta_prelabels: Dict[int, Dict[int, int]],
    ) -> None:
        """Meld labelling with *hash-consed* labels — the paper's closing
        remark suggests "a data structure specifically catered to
        versioning rather than ... LLVM's SparseBitVector".

        Labels here are already-interned version ids: the meld of two ids
        is looked up in (or added to) a pairwise meld table, so labels stay
        machine ints regardless of how many prelabels meld into them, and
        interning happens *during* propagation instead of afterwards.
        Produces the same equivalence classes as the mask strategies
        (cross-checked in the test suite) with cost O(meld-table size)
        instead of O(set bits) per meld.
        """
        from collections import deque

        svfg = self.svfg
        is_store = self._is_store
        delta = svfg.delta_nodes
        ind_succs = svfg.ind_succs

        # Per object: version id <-> canonical frozenset of prelabel ids.
        tables: Dict[int, Dict[frozenset, int]] = {}
        sets_of: Dict[int, List[frozenset]] = {}
        meld_cache: Dict[Tuple[int, int, int], int] = {}

        def intern_set(oid: int, items: frozenset) -> int:
            table = tables.get(oid)
            if table is None:
                table = tables[oid] = {frozenset(): 0}
                sets_of[oid] = [frozenset()]
            ident = table.get(items)
            if ident is None:
                ident = len(sets_of[oid])
                table[items] = ident
                sets_of[oid].append(items)
            return ident

        def meld(oid: int, a: int, b: int) -> int:
            if a == b:
                return a
            if a > b:
                a, b = b, a
            key = (oid, a, b)
            cached = meld_cache.get(key)
            if cached is None:
                cached = intern_set(oid, sets_of[oid][a] | sets_of[oid][b])
                meld_cache[key] = cached
            return cached

        consumed: List[Dict[int, int]] = [{} for __ in svfg.nodes]
        yielded: List[Dict[int, int]] = [
            {} if store else consumed[node_id]
            for node_id, store in enumerate(is_store)
        ]
        seeds: List[Tuple[int, int]] = []
        prelabel_counters: Dict[int, int] = {}
        for labels, target in ((store_prelabels, yielded), (delta_prelabels, consumed)):
            for oid, per_node in labels.items():
                for node_id in per_node:
                    index = prelabel_counters.get(oid, 0)
                    prelabel_counters[oid] = index + 1
                    target[node_id][oid] = intern_set(oid, frozenset({index}))
                    seeds.append((node_id, oid))

        work = deque(seeds)
        in_work = set(seeds)
        while work:
            item = work.popleft()
            in_work.discard(item)
            node_id, oid = item
            label = yielded[node_id].get(oid, 0)
            if not label:
                continue
            succs = ind_succs[node_id].get(oid)
            if not succs:
                continue
            for succ in succs:
                if succ in delta:
                    continue
                old = consumed[succ].get(oid, 0)
                new = meld(oid, old, label)
                if new == old:
                    continue
                consumed[succ][oid] = new
                self.stats.meld_steps += 1
                if not is_store[succ]:
                    key = (succ, oid)
                    if key not in in_work:
                        in_work.add(key)
                        work.append(key)

        # Labels are already dense version ids: persist + collect constraints.
        epsilon = self.EPSILON
        for node_id in range(len(svfg.nodes)):
            for oid, ver in consumed[node_id].items():
                self._set_consumed(node_id, oid, ver)
            if is_store[node_id]:
                for oid, ver in yielded[node_id].items():
                    self._set_yielded(node_id, oid, ver)
        self._version_counts = {oid: len(sets) for oid, sets in sets_of.items()}
        for src in range(len(svfg.nodes)):
            for oid, dsts in ind_succs[src].items():
                src_ver = self.yielded_version(src, oid)
                if src_ver == epsilon:
                    continue
                for dst in dsts:
                    dst_ver = self.consumed_version(dst, oid)
                    if src_ver != dst_ver:
                        self.add_constraint(oid, src_ver, dst_ver)

    def _prelabel(self) -> Tuple[Dict[int, Dict[int, int]], Dict[int, Dict[int, int]]]:
        """Figure 6: fresh yield labels at stores, fresh consume labels at
        δ nodes.  Returns per-object ``{node: mask}`` maps."""
        svfg = self.svfg
        store_prelabels: Dict[int, Dict[int, int]] = {}
        delta_prelabels: Dict[int, Dict[int, int]] = {}
        counters: Dict[int, int] = {}

        def fresh(oid: int) -> int:
            index = counters.get(oid, 0)
            counters[oid] = index + 1
            self.stats.prelabels += 1
            return 1 << index

        for node in svfg.nodes:
            if self._is_store[node.id]:
                for chi in svfg.memssa.store_chis.get(node.inst, ()):  # type: ignore[attr-defined]
                    oid = chi.obj.id
                    store_prelabels.setdefault(oid, {})[node.id] = fresh(oid)
        for node_id in svfg.delta_nodes:
            oid = svfg.nodes[node_id].obj.id  # type: ignore[attr-defined]
            delta_prelabels.setdefault(oid, {})[node_id] = fresh(oid)
        return store_prelabels, delta_prelabels

    # ----------------------------------------------------- strategy: per-obj

    def _run_per_object(
        self,
        store_prelabels: Dict[int, Dict[int, int]],
        delta_prelabels: Dict[int, Dict[int, int]],
        release_masks: bool,
    ) -> None:
        svfg = self.svfg
        if not release_masks:
            self.consumed_masks = [{} for __ in svfg.nodes]
            self.yielded_masks = [{} for __ in svfg.nodes]
        # Group o-labelled edges per object.  Edges into δ nodes do not
        # meld (frozen prelabels) but still induce propagation constraints.
        edges_by_obj: Dict[int, List[Tuple[int, int]]] = {}
        for src in range(len(svfg.nodes)):
            for oid, dsts in svfg.ind_succs[src].items():
                bucket = edges_by_obj.setdefault(oid, [])
                for dst in dsts:
                    bucket.append((src, dst))
        oids = set(edges_by_obj) | set(store_prelabels) | set(delta_prelabels)
        for oid in oids:
            consumed, yielded = self._meld_one_object(
                oid,
                edges_by_obj.get(oid, []),
                store_prelabels.get(oid, {}),
                delta_prelabels.get(oid, {}),
            )
            self._intern_object(oid, consumed, yielded, edges_by_obj.get(oid, []))
            if self.consumed_masks is not None and self.yielded_masks is not None:
                for node_id, mask in consumed.items():
                    self.consumed_masks[node_id][oid] = mask
                for node_id, mask in yielded.items():
                    self.yielded_masks[node_id][oid] = mask

    def _meld_one_object(
        self,
        oid: int,
        edges: List[Tuple[int, int]],
        store_labels: Dict[int, int],
        delta_labels: Dict[int, int],
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """Meld labels for one object; returns (consumed, yielded) masks."""
        delta = self.svfg.delta_nodes
        is_store = self._is_store

        def is_relay(n: int) -> bool:
            return not is_store[n] and n not in delta

        # Relay adjacency and membership.
        relay_succs: Dict[int, List[int]] = {}
        relay_nodes: Set[int] = set()
        for src, dst in edges:
            if is_relay(src):
                relay_succs.setdefault(src, []).append(dst)
                relay_nodes.add(src)
            if is_relay(dst):
                relay_nodes.add(dst)

        # SCC over the relay-to-relay subgraph (iterative Tarjan).
        comp_of: Dict[int, int] = {}
        comps: List[List[int]] = []  # reverse topological (succs first)
        index: Dict[int, int] = {}
        low: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = 0
        for root in relay_nodes:
            if root in index:
                continue
            work = [(root, iter(relay_succs.get(root, ())))]
            index[root] = low[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, succs = work[-1]
                advanced = False
                for succ in succs:
                    if not is_relay(succ):
                        continue
                    if succ not in index:
                        index[succ] = low[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(relay_succs.get(succ, ()))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    comp: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp.append(member)
                        comp_of[member] = len(comps)
                        if member == node:
                            break
                    comps.append(comp)

        # Condensation DAG: fixed sources contribute prelabels; store
        # consumers are sinks (encoded as negative ids); δ targets are
        # frozen and receive nothing.
        comp_label = [0] * len(comps)
        comp_succs: List[Set[int]] = [set() for __ in comps]
        store_in: Dict[int, int] = {}
        for src, dst in edges:
            if dst in delta:
                continue  # frozen prelabel; constraint added later
            if is_relay(src):
                src_comp = comp_of[src]
                if is_relay(dst):
                    dst_comp = comp_of[dst]
                    if dst_comp != src_comp:
                        comp_succs[src_comp].add(dst_comp)
                else:
                    comp_succs[src_comp].add(-dst - 1)
            else:
                label = store_labels.get(src) or delta_labels.get(src) or 0
                if not label:
                    continue
                if is_relay(dst):
                    comp_label[comp_of[dst]] |= label
                else:
                    store_in[dst] = store_in.get(dst, 0) | label

        # One pass, predecessors first (Tarjan emits successors first).
        for comp_id in range(len(comps) - 1, -1, -1):
            label = comp_label[comp_id]
            if not label:
                continue
            self.stats.meld_steps += 1
            for succ in comp_succs[comp_id]:
                if succ < 0:
                    dst = -succ - 1
                    store_in[dst] = store_in.get(dst, 0) | label
                else:
                    comp_label[succ] |= label

        # Assemble consumed/yielded masks for this object.
        consumed: Dict[int, int] = {}
        yielded: Dict[int, int] = {}
        for comp_id, members in enumerate(comps):
            label = comp_label[comp_id]
            if not label:
                continue
            for member in members:
                consumed[member] = label
                yielded[member] = label  # [INTERNAL]ⱽ
        for node_id, label in store_in.items():
            if label:
                consumed[node_id] = label
        for node_id, label in store_labels.items():
            yielded[node_id] = label
        for node_id, label in delta_labels.items():
            consumed[node_id] = label
            yielded[node_id] = label  # δ nodes are non-store
        return consumed, yielded

    def _intern_object(
        self,
        oid: int,
        consumed: Dict[int, int],
        yielded: Dict[int, int],
        edges: List[Tuple[int, int]],
    ) -> None:
        """Phase 3 for one object: dense ids + constraints, then release."""
        interner: Interner = Interner()
        interner.intern(0)  # ε is version 0
        consumed_ver = {node_id: interner.intern(mask) for node_id, mask in consumed.items()}
        yielded_ver = {node_id: interner.intern(mask) for node_id, mask in yielded.items()}
        self._version_counts[oid] = len(interner)
        self.stats.consume_entries += len(consumed_ver)
        self.stats.yield_entries += len(yielded_ver)
        epsilon = self.EPSILON
        for src, dst in edges:
            src_ver = yielded_ver.get(src, epsilon)
            if src_ver == epsilon:
                continue
            dst_ver = consumed_ver.get(dst, epsilon)
            if src_ver != dst_ver:
                self.add_constraint(oid, src_ver, dst_ver)
        # Persist only the entries the solver will consult again.
        keep = self._keep
        for node_id, ver in consumed_ver.items():
            if keep[node_id]:
                self._set_consumed(node_id, oid, ver)
        for node_id, ver in yielded_ver.items():
            if keep[node_id]:
                self._set_yielded(node_id, oid, ver)

    # --------------------------------------------------- strategy: fixpoint

    def _run_fixpoint(
        self,
        store_prelabels: Dict[int, Dict[int, int]],
        delta_prelabels: Dict[int, Dict[int, int]],
        release_masks: bool,
    ) -> None:
        """The literal worklist reading of [EXTERNAL]ⱽ/[INTERNAL]ⱽ."""
        svfg = self.svfg
        is_store = self._is_store
        consumed_masks: List[Dict[int, int]] = [{} for __ in svfg.nodes]
        # Non-store nodes yield what they consume: share the dict.
        yielded_masks: List[Dict[int, int]] = [
            {} if store else consumed_masks[node_id]
            for node_id, store in enumerate(is_store)
        ]
        seeds: List[Tuple[int, int]] = []
        for oid, labels in store_prelabels.items():
            for node_id, mask in labels.items():
                yielded_masks[node_id][oid] = mask
                seeds.append((node_id, oid))
        for oid, labels in delta_prelabels.items():
            for node_id, mask in labels.items():
                consumed_masks[node_id][oid] = mask
                seeds.append((node_id, oid))

        delta = svfg.delta_nodes
        ind_succs = svfg.ind_succs
        work = deque(seeds)
        in_work = set(seeds)
        while work:
            item = work.popleft()
            in_work.discard(item)
            node_id, oid = item
            label = yielded_masks[node_id].get(oid, 0)
            if not label:
                continue
            succs = ind_succs[node_id].get(oid)
            if not succs:
                continue
            for succ in succs:
                if succ in delta:
                    continue  # prelabelled consumes are frozen
                consumed = consumed_masks[succ]
                old = consumed.get(oid, 0)
                new = old | label
                if new == old:
                    continue
                consumed[oid] = new
                self.stats.meld_steps += 1
                if not is_store[succ]:
                    key = (succ, oid)
                    if key not in in_work:
                        in_work.add(key)
                        work.append(key)

        # Intern whole-graph results object by object.
        interners: Dict[int, Interner] = {}

        def intern(oid: int, mask: int) -> int:
            interner = interners.get(oid)
            if interner is None:
                interner = Interner()
                interner.intern(0)
                interners[oid] = interner
            return interner.intern(mask)

        for node_id in range(len(svfg.nodes)):
            for oid, mask in consumed_masks[node_id].items():
                self._set_consumed(node_id, oid, intern(oid, mask))
            if is_store[node_id]:
                for oid, mask in yielded_masks[node_id].items():
                    self._set_yielded(node_id, oid, intern(oid, mask))
        self._version_counts = {oid: len(interner) for oid, interner in interners.items()}
        for src in range(len(svfg.nodes)):
            for oid, dsts in ind_succs[src].items():
                src_ver = self.yielded_version(src, oid)
                if src_ver == self.EPSILON:
                    continue
                for dst in dsts:
                    dst_ver = self.consumed_version(dst, oid)
                    if src_ver != dst_ver:
                        self.add_constraint(oid, src_ver, dst_ver)
        if not release_masks:
            self.consumed_masks = consumed_masks
            self.yielded_masks = yielded_masks


def version_objects(svfg: SVFG, strategy: str = "scc") -> ObjectVersioning:
    """Run the versioning pre-analysis (prelabel → meld → intern)."""
    return ObjectVersioning(svfg).run(strategy=strategy)
