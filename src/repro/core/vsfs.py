"""Versioned staged flow-sensitive points-to analysis (VSFS, §IV-D).

The solver of Figure 10.  Relative to SFS, the IN/OUT maps are gone:
address-taken points-to sets live in one global table keyed by
``(object, version)``, where versions come from the meld-labelling
pre-analysis (:mod:`repro.core.versioning`).

- ``[LOAD]ⱽ`` reads ``pt_{C_ℓ(o)}(o)`` for each object the pointer targets;
- ``[STORE]ⱽ`` + ``[SU/WU]ⱽ`` write ``pt_{Y_ℓ(o)}(o)``, observing
  ``pt_{C_ℓ(o)}(o)`` unless a strong update kills it;
- ``[A-PROP]ⱽ`` propagates along the *deduplicated version constraints*:
  an SVFG edge whose endpoints share a version needs no propagation at all
  — this is where the time saving comes from — and nodes sharing a version
  share storage — the memory saving.

MEMPHI/ActualIN/ActualOUT/FormalIN/FormalOUT nodes need no processing at
solve time: their behaviour is entirely compiled into version constraints.

On top of the versioned formulation sit the same two switchable
optimisations as SFS (:class:`StagedSolverBase`): the delta kernel, which
forwards only the new bits (``new & ~old``) along version constraints and
wakes a load/store only with the delta that concerns it, and the points-to
repository, which stores each distinct version set once behind a memoised
union cache.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.versioning import ObjectVersioning, version_objects
from repro.datastructs.bitset import iter_bits
from repro.ir.function import Function
from repro.ir.instructions import CallInst, LoadInst, StoreInst
from repro.solvers.base import FlowSensitiveResult, StagedSolverBase
from repro.svfg.builder import SVFG
from repro.svfg.nodes import InstNode, SVFGNode


class VSFSAnalysis(StagedSolverBase):
    """Versioned staged flow-sensitive points-to analysis."""

    analysis_name = "vsfs"

    def __init__(self, svfg: SVFG, versioning: Optional[ObjectVersioning] = None,
                 delta: bool = True, ptrepo: bool = True, meter=None,
                 faults=None, checkpointer=None, ctx=None,
                 mde=None, mde_batch=None):
        super().__init__(svfg, delta=delta, ptrepo=ptrepo, meter=meter,
                         faults=faults, checkpointer=checkpointer, ctx=ctx,
                         mde=mde, mde_batch=mde_batch)
        self._given_versioning = versioning
        self.versioning: Optional[ObjectVersioning] = versioning
        # Global points-to table: oid -> version id -> entry (a PTRepo id
        # when ptrepo is on, a raw mask otherwise).
        self.ptv: Dict[int, List[int]] = {}
        # (oid, version) -> nodes that must re-run when the set grows.
        self.readers: Dict[Tuple[int, int], List[int]] = {}

    # ----------------------------------------------------------------- setup

    def _prepare(self) -> None:
        start = time.perf_counter()
        if self.versioning is None:
            self.versioning = version_objects(self.svfg)
        self._build_readers()
        self.stats.pre_time = time.perf_counter() - start

    def _build_readers(self) -> None:
        """Index which load/store nodes consume each ``(object, version)``.

        Deterministic given the versioning tables (it walks nodes in id
        order and sorts each bucket), so a resumed run rebuilds the exact
        same index from the restored versioning state.
        """
        versioning = self.versioning
        assert versioning is not None
        memssa = self.memssa
        # Built as sets: a load/store touching the same (oid, ver) through
        # two μ/χ annotations must not be pushed twice per growth.
        readers: Dict[Tuple[int, int], set] = {}
        for node in self.svfg.nodes:
            if not isinstance(node, InstNode):
                continue
            inst = node.inst
            if isinstance(inst, LoadInst):
                for mu in memssa.load_mus.get(inst, ()):
                    ver = versioning.consumed_version(node.id, mu.obj.id)
                    readers.setdefault((mu.obj.id, ver), set()).add(node.id)
            elif isinstance(inst, StoreInst):
                for chi in memssa.store_chis.get(inst, ()):
                    ver = versioning.consumed_version(node.id, chi.obj.id)
                    readers.setdefault((chi.obj.id, ver), set()).add(node.id)
        self.readers = {key: sorted(nodes) for key, nodes in readers.items()}

    # ------------------------------------------------------- version tables

    def _table(self, oid: int) -> List[int]:
        table = self.ptv.get(oid)
        if table is None:
            assert self.versioning is not None
            table = [0] * max(self.versioning.num_versions(oid), 1)
            self.ptv[oid] = table
        return table

    def ptv_mask(self, oid: int, ver: int) -> int:
        table = self.ptv.get(oid)
        if table is None or ver >= len(table):
            return 0
        return self._entry_mask(table[ver])

    def _ptv_join(self, oid: int, ver: int, mask: int) -> None:
        """Grow pt_κ(o) and run [A-PROP]ⱽ transitively.

        The delta kernel forwards only the bits each version had not seen;
        the eager path re-merges and re-forwards whole masks.

        With the batch memo on, the whole per-version step is one
        ``BatchMemo.apply`` lookup, and — because global (object, version)
        keying makes identical (entry, delta) pairs recur across versions
        and nodes — the transitive closure walks the constraint chain in
        *id space*: a forwarded delta is never re-interned, and a chain
        the solver already walked anywhere costs one lookup per hop.
        """
        if not mask:
            return
        faults = self.faults
        if faults is not None:
            faults.fire("propagate", self.analysis_name)
        assert self.versioning is not None
        constraints = self.versioning.constraints
        readers = self.readers
        repo = self.ptrepo
        batch = self.batch
        delta_mode = self.delta
        worklist = self.worklist
        stats = self.stats
        if batch is not None:
            id_stack = [(oid, ver, repo.intern(mask))]
            while id_stack:
                oid, ver, mask_id = id_stack.pop()
                table = self._table(oid)
                while ver >= len(table):  # defensive: OTF-interned versions
                    table.append(0)
                new, added_id = batch.apply(table[ver], mask_id)
                if delta_mode:
                    if not added_id:
                        continue
                    stats.unions += 1
                else:
                    stats.unions += 1  # eager: union applied on every visit
                    if not added_id:
                        continue
                if faults is not None:
                    faults.fire("ptrepo_union", self.analysis_name)
                table[ver] = new
                if delta_mode:
                    added = repo.mask(added_id)
                    for reader in readers.get((oid, ver), ()):
                        worklist.push_delta(reader, oid, added)
                    forward_id = added_id
                else:
                    for reader in readers.get((oid, ver), ()):
                        worklist.push(reader)
                    forward_id = new  # old | added
                for dst_ver in constraints.get((oid, ver), ()):
                    stats.propagations += 1
                    id_stack.append((oid, dst_ver, forward_id))
            return
        stack = [(oid, ver, mask)]
        while stack:
            oid, ver, mask = stack.pop()
            table = self._table(oid)
            while ver >= len(table):  # defensive: OTF-interned versions
                table.append(0)
            entry = table[ver]
            old = repo.mask(entry) if repo is not None else entry
            added = mask & ~old
            if delta_mode:
                if not added:
                    continue
                stats.unions += 1
            else:
                stats.unions += 1  # eager: union applied on every visit
                if not added:
                    continue
            if repo is not None:
                if faults is not None:
                    faults.fire("ptrepo_union", self.analysis_name)
                table[ver] = repo.union_mask(entry, added)
            else:
                table[ver] = old | added
            if delta_mode:
                for reader in readers.get((oid, ver), ()):
                    worklist.push_delta(reader, oid, added)
                forward = added
            else:
                for reader in readers.get((oid, ver), ()):
                    worklist.push(reader)
                forward = old | added
            for dst_ver in constraints.get((oid, ver), ()):
                stats.propagations += 1
                stack.append((oid, dst_ver, forward))

    # -------------------------------------------------------------- mem rules

    def _process_load(self, node: InstNode, inst: LoadInst,
                      dirty: Optional[Dict[int, int]] = None) -> None:
        """[LOAD]ⱽ: pt(p) ⊇ pt_{C_ℓ(o)}(o) for each o ∈ pt(q)."""
        assert self.versioning is not None
        ptr_mask = self.value_mask(inst.ptr)
        if dirty is not None:
            # Deltas were pushed from exactly the (o, C_ℓ(o)) entries this
            # load reads, so the new bits are all that can flow to pt(p).
            mask = 0
            for oid, delta in dirty.items():
                if ptr_mask >> oid & 1:
                    mask |= delta
            if mask:
                self.set_pt(inst.dst, mask)
            return
        consumed = self.versioning.consumed[node.id]
        batch = self.batch
        if batch is not None:
            # The n-way gather over the consumed versions' entry ids is a
            # recurring batch (loads sharing versions share the gather).
            ids = []
            ptv = self.ptv
            for oid in iter_bits(ptr_mask):
                ver = consumed.get(oid)
                if ver is None:
                    continue
                table = ptv.get(oid)
                if table is not None and ver < len(table):
                    ids.append(table[ver])
            mask = batch.gather_mask(ids)
        else:
            mask = 0
            for oid in iter_bits(ptr_mask):
                ver = consumed.get(oid)
                if ver is not None:
                    mask |= self.ptv_mask(oid, ver)
        if mask:
            self.set_pt(inst.dst, mask)

    def _process_store(self, node: InstNode, inst: StoreInst,
                       dirty: Optional[Dict[int, int]] = None) -> None:
        """[STORE]ⱽ + [SU/WU]ⱽ: write the yielded versions."""
        assert self.versioning is not None
        versioning = self.versioning
        ptr_mask = self.value_mask(inst.ptr)
        su_oid = self.strong_update_target(ptr_mask)
        yielded = versioning.yielded[node.id]
        if dirty is not None:
            # Only consumed versions grew; gen and the pointer are
            # unchanged, so each surviving delta flows through unchanged.
            for oid, delta in dirty.items():
                if oid == su_oid:
                    continue  # killed: the consumed set does not survive
                if self.defers_passthrough(ptr_mask, oid):
                    continue  # deferred until pt(ptr) resolves (full revisit)
                y_ver = yielded.get(oid)
                if y_ver is None:
                    continue
                if ptr_mask >> oid & 1:
                    self.stats.weak_updates += 1
                self._ptv_join(oid, y_ver, delta)
            return
        gen = self.value_mask(inst.value)
        consumed = versioning.consumed[node.id]
        for chi in self.memssa.store_chis.get(inst, ()):
            oid = chi.obj.id
            y_ver = yielded.get(oid)
            if y_ver is None:
                continue
            c_ver = consumed.get(oid, ObjectVersioning.EPSILON)
            incoming = self.ptv_mask(oid, c_ver)
            if oid == su_oid:
                out = gen  # strong update kills the consumed set
                self.stats.strong_updates += 1
            elif ptr_mask >> oid & 1:
                out = incoming | gen
                self.stats.weak_updates += 1
            elif self.defers_passthrough(ptr_mask, oid):
                continue  # deferred until pt(ptr) resolves (full revisit)
            else:
                out = incoming  # pass-through (χ over-approximation)
            self._ptv_join(oid, y_ver, out)

    def _process_mem_node(self, node: SVFGNode,
                          dirty: Optional[Dict[int, int]] = None) -> None:
        """MEMPHI and actual/formal IN/OUT nodes are fully compiled into
        version constraints — nothing to do at solve time."""

    # -------------------------------------------------- on-the-fly call graph

    def _on_new_call_edge(self, call: CallInst, callee: Function, touched: List[int]) -> None:
        """Register version constraints for OTF-discovered μ/χ edges and
        replay already-computed points-to sets across them."""
        assert self.versioning is not None
        versioning = self.versioning
        for oid, ain in self.svfg.actual_in.get(call, {}).items():
            fin = self.svfg.formal_in.get(callee, {}).get(oid)
            if fin is None:
                continue
            src = versioning.yielded_version(ain, oid)
            dst = versioning.consumed_version(fin, oid)
            if versioning.add_constraint(oid, src, dst):
                self.stats.propagations += 1
                self._ptv_join(oid, dst, self.ptv_mask(oid, src))
        for oid, aout in self.svfg.actual_out.get(call, {}).items():
            fout = self.svfg.formal_out.get(callee, {}).get(oid)
            if fout is None:
                continue
            src = versioning.yielded_version(fout, oid)
            dst = versioning.consumed_version(aout, oid)
            if versioning.add_constraint(oid, src, dst):
                self.stats.propagations += 1
                self._ptv_join(oid, dst, self.ptv_mask(oid, src))

    # ------------------------------------------------------- warm re-solve

    def _version_of(self, nid: int, oid: int,
                    want_yield: bool) -> Optional[int]:
        """The version node *nid* genuinely consumes/yields for *oid*.

        ``None`` when the node carries no version for the object — the
        warm preloader must not mistake the ε default for a real
        version, or it would pollute the shared ε slot.
        """
        versioning = self.versioning
        if versioning._single[nid]:
            node = self.svfg.nodes[nid]
            obj = getattr(node, "obj", None)
            if obj is None or obj.id != oid:
                return None
            return node.yielded_ver if want_yield else node.consumed_ver
        if want_yield:
            if not versioning._is_store[nid]:
                return None  # yields what it consumes — node_in covers it
            return versioning.yielded[nid].get(oid)
        return versioning.consumed[nid].get(oid)

    def _preload_memory(self, plan) -> None:
        """Write clean-region values straight into the version table.

        Node-centric preload: the plan speaks in ``(node, object)``
        pairs, and the *new* versioning maps them to version indices —
        version numbering is global per object, so the numbers may have
        shifted even for untouched functions.  Direct joins, no
        propagation: constraints *among* preloaded versions were already
        satisfied at the captured fixpoint.  Constraints *leaving* the
        preloaded set carry clean values into dirty regions via
        :meth:`_ptv_join`, whose reader pushes and transitive walk do
        the delivery.
        """
        repo = self.ptrepo
        preloaded: "set[Tuple[int, int]]" = set()

        def write(oid: int, ver: int, mask: int) -> None:
            table = self._table(oid)
            while ver >= len(table):
                table.append(0)
            merged = self._entry_mask(table[ver]) | mask
            table[ver] = repo.intern(merged) if repo is not None else merged
            preloaded.add((oid, ver))

        for preload, want_yield in ((plan.node_in, False),
                                    (plan.node_out, True)):
            for nid, table in preload.items():
                for oid, mask in table.items():
                    if not mask:
                        continue
                    ver = self._version_of(nid, oid, want_yield)
                    if ver is not None:
                        write(oid, ver, mask)
        constraints = self.versioning.constraints
        for oid, ver in sorted(preloaded):
            for dst in constraints.get((oid, ver), ()):
                if (oid, dst) not in preloaded:
                    self._ptv_join(oid, dst, self.ptv_mask(oid, ver))

    def export_node_memory(self):
        versioning = self.versioning
        node_in: Dict[int, Dict[int, int]] = {}
        node_out: Dict[int, Dict[int, int]] = {}
        if versioning is None:
            return node_in, node_out
        for nid in range(len(self.svfg.nodes)):
            if versioning._single[nid]:
                node = self.svfg.nodes[nid]
                obj = getattr(node, "obj", None)
                if obj is None:
                    continue
                mask = self.ptv_mask(obj.id, node.consumed_ver)
                if mask:
                    node_in[nid] = {obj.id: mask}
                if node.yielded_ver != node.consumed_ver:
                    mask = self.ptv_mask(obj.id, node.yielded_ver)
                    if mask:
                        node_out[nid] = {obj.id: mask}
                continue
            consumed = versioning.consumed[nid]
            if consumed:
                table = {
                    oid: mask for oid, mask in
                    ((oid, self.ptv_mask(oid, ver))
                     for oid, ver in consumed.items())
                    if mask
                }
                if table:
                    node_in[nid] = table
            if versioning._is_store[nid]:
                yielded = versioning.yielded[nid]
                table = {
                    oid: mask for oid, mask in
                    ((oid, self.ptv_mask(oid, ver))
                     for oid, ver in yielded.items())
                    if mask
                }
                if table:
                    node_out[nid] = table
        return node_in, node_out

    # ----------------------------------------------------------- persistence

    def _snapshot_memory(self) -> Dict[str, object]:
        """The global ``(object, version)`` table, the PTRepo interning
        table, and the full versioning state (C/Y tables + constraints —
        including every constraint registered on the fly, which a re-run
        of the pre-analysis could not reproduce without re-discovering the
        call graph first).

        This is where the paper's global keying pays off at the
        persistence layer too: the address-taken state is one table with
        one entry per *live* ``(object, version)`` pair, not one map per
        SVFG node.
        """
        assert self.versioning is not None
        return {
            "repo": self.ptrepo.snapshot() if self.ptrepo is not None else None,
            "ptv": {str(oid): [format(entry, "x") for entry in table]
                    for oid, table in self.ptv.items()},
            "versioning": self.versioning.snapshot(),
        }

    def _restore_pre(self, payload: Dict[str, object]) -> None:
        """Restore versioning before memory: the version tables define the
        shape of the global table and of the readers index."""
        self.versioning = ObjectVersioning(self.svfg).restore(
            payload["mem"]["versioning"])
        self._build_readers()

    def _restore_memory(self, mem: Dict[str, object]) -> None:
        from repro.datastructs.ptrepo import PTRepo
        from repro.errors import CheckpointError

        if self.ptrepo is not None:
            if mem["repo"] is None:
                raise CheckpointError(
                    "checkpoint lacks the ptrepo interning table")
            self.ptrepo = PTRepo.from_snapshot(mem["repo"])
            self._rebind_mde()  # memo keys/arena positions are per-repo
        self.ptv = {int(oid): [int(entry, 16) for entry in table]
                    for oid, table in mem["ptv"].items()}

    # --------------------------------------------------------------- summary

    def _memory_footprint(self) -> None:
        self._finish_footprint(
            entry for table in self.ptv.values() for entry in table
        )


def run_vsfs(svfg: SVFG, versioning: Optional[ObjectVersioning] = None,
             delta: bool = True, ptrepo: bool = True, meter=None,
             faults=None, checkpointer=None) -> FlowSensitiveResult:
    """Run VSFS over a built SVFG (versioning is computed if not supplied)."""
    return VSFSAnalysis(svfg, versioning, delta=delta, ptrepo=ptrepo,
                        meter=meter, faults=faults,
                        checkpointer=checkpointer).run()
