"""The paper's contribution: meld labelling, object versioning, and VSFS.

- :mod:`repro.core.meld` — *meld labelling* (§IV-B), a prelabelling
  extension for arbitrary directed graphs with a pluggable meld operator.
- :mod:`repro.core.versioning` — object versioning of an SVFG via meld
  labelling (§IV-C): prelabel STORE yields and δ-node consumes, propagate,
  intern the melded label sets into dense version ids.
- :mod:`repro.core.vsfs` — versioned staged flow-sensitive points-to
  analysis (§IV-D): flow-sensitive solving with one *global* points-to set
  per ``(object, version)`` instead of per-node IN/OUT sets.
"""

from repro.core.meld import MeldLabelling, meld_label
from repro.core.versioning import ObjectVersioning, VersioningStats, version_objects
from repro.core.vsfs import VSFSAnalysis, run_vsfs

__all__ = [
    "MeldLabelling",
    "meld_label",
    "ObjectVersioning",
    "VersioningStats",
    "version_objects",
    "VSFSAnalysis",
    "run_vsfs",
]
