"""Meld labelling (§IV-B): a prelabelling extension for directed graphs.

Given a directed graph, a *prelabelling* of some nodes, and a *meld
operator* ``⊙`` that is commutative, associative, idempotent, and has an
identity ``ε``, meld labelling propagates labels until fixpoint::

    [MELD]  n' -> n  ⟹  κ(n) := κ(n') ⊙ κ(n)

The result partitions nodes into equivalence classes by *which prelabels
transitively reach them* — nodes with equal final labels depend on exactly
the same prelabelled nodes.  The paper's worst case is O(|E|·P) time
(P = number of prelabels) and O(|N|) space.

Two interfaces are provided:

- :func:`meld_label` — the fast path used by object versioning: labels are
  int bit masks over prelabel indices and ``⊙`` is bitwise-or (the paper
  explicitly names bitwise-or as a suitable operator);
- :class:`MeldLabelling` — a generic engine over any user-supplied operator
  (used by tests to check the algebraic requirements, e.g. with frozensets
  or the pattern domain of the paper's Figure 4).
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Hashable, Iterable, List, Mapping, Tuple, TypeVar

from repro.datastructs.graph import DiGraph
from repro.datastructs.worklist import FIFOWorkList

N = TypeVar("N", bound=Hashable)
K = TypeVar("K")


def meld_label(
    num_nodes: int,
    edges: Iterable[Tuple[int, int]],
    prelabels: Mapping[int, int],
    frozen: Iterable[int] = (),
) -> List[int]:
    """Meld-label a graph of dense int nodes with bit-mask labels.

    :param num_nodes: nodes are ``0 .. num_nodes-1``.
    :param edges: directed edges ``(src, dst)``.
    :param prelabels: node -> initial bit mask (non-identity prelabels).
    :param frozen: nodes whose label must never change (the paper keeps
        prelabelled δ nodes fixed); melds into them are skipped.
    :returns: final label mask per node (identity = 0).
    """
    labels = [0] * num_nodes
    succs: List[List[int]] = [[] for __ in range(num_nodes)]
    for src, dst in edges:
        succs[src].append(dst)
    for node, mask in prelabels.items():
        labels[node] |= mask
    frozen_set = set(frozen)
    work: FIFOWorkList[int] = FIFOWorkList(prelabels.keys())
    while work:
        node = work.pop()
        label = labels[node]
        for succ in succs[node]:
            if succ in frozen_set:
                continue
            new = labels[succ] | label
            if new != labels[succ]:
                labels[succ] = new
                work.push(succ)
    return labels


class MeldLabelling(Generic[N, K]):
    """Generic meld labelling over any meld operator.

    >>> g = DiGraph()
    >>> __ = g.add_edge("a", "b"); __ = g.add_edge("b", "c")
    >>> ml = MeldLabelling(g, meld=frozenset.union, identity=frozenset())
    >>> ml.prelabel("a", frozenset({"x"}))
    >>> labels = ml.run()
    >>> sorted(labels["c"])
    ['x']
    """

    def __init__(
        self,
        graph: DiGraph,
        meld: Callable[[K, K], K],
        identity: K,
    ):
        self.graph = graph
        self.meld = meld
        self.identity = identity
        self._prelabels: Dict[N, K] = {}
        self._frozen: set = set()

    def prelabel(self, node: N, label: K, frozen: bool = False) -> None:
        """Assign an initial label; *frozen* nodes never meld further."""
        if node in self._prelabels:
            self._prelabels[node] = self.meld(self._prelabels[node], label)
        else:
            self._prelabels[node] = label
        if frozen:
            self._frozen.add(node)

    def run(self) -> Dict[N, K]:
        """Propagate to fixpoint; return the final label of every node."""
        labels: Dict[N, K] = {node: self.identity for node in self.graph.nodes()}
        labels.update(self._prelabels)
        work: FIFOWorkList[N] = FIFOWorkList(self._prelabels.keys())
        while work:
            node = work.pop()
            label = labels[node]
            for succ in self.graph.successors(node):
                if succ in self._frozen:
                    continue
                melded = self.meld(labels[succ], label)
                if melded != labels[succ]:
                    labels[succ] = melded
                    work.push(succ)
        return labels

    def equivalence_classes(self, labels: Dict[N, K]) -> Dict[K, List[N]]:
        """Group nodes by final label (hashable label domains only)."""
        classes: Dict[K, List[N]] = {}
        for node, label in labels.items():
            classes.setdefault(label, []).append(node)
        return classes
