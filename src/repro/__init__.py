"""repro — Object Versioning for Flow-Sensitive Pointer Analysis (CGO 2021).

A complete Python reproduction of Barbar, Sui & Chen's *versioned staged
flow-sensitive points-to analysis* (VSFS), including every substrate it
stands on: an LLVM-like IR with a mini-C frontend, partial SSA, Andersen's
auxiliary analysis, memory SSA, the sparse value-flow graph (SVFG), the SFS
baseline, and the paper's meld-labelling-based object versioning.

Quickstart::

    from repro import analyze

    result = analyze('''
        int **p; int *q; int x;
        int main() { q = &x; p = &q; **p = 0; return 0; }
    ''', analysis="vsfs")

See :mod:`repro.pipeline` for staged access (shared SVFG, stats, etc.).
"""

from repro.errors import BudgetExceeded, InjectedFault, ReproError
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline, analyze, module_from
from repro.runtime import Budget, FaultPlan, RunReport, solve_with_ladder

__version__ = "1.0.0"

__all__ = [
    "analyze", "compile_c", "AnalysisPipeline", "module_from",
    "Budget", "FaultPlan", "RunReport", "solve_with_ladder",
    "ReproError", "BudgetExceeded", "InjectedFault",
    "__version__",
]
