"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Raised when an IR module is malformed (verifier failures, bad builder use)."""


class ParseError(ReproError):
    """Raised by the mini-C frontend and the textual IR parser.

    Carries the source position of the offending token when available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class AnalysisError(ReproError):
    """Raised when an analysis is mis-configured or run out of order."""


class SolverError(AnalysisError):
    """Raised when a points-to solver detects an internal inconsistency."""
