"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also catching programming errors.
The CLI maps the hierarchy onto exit codes: I/O problems are 1, front-end
failures (:class:`ParseError`, :class:`IRError`) are 2, and analysis-time
failures (:class:`AnalysisError` and below, including budget exhaustion and
injected faults) are 3.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Raised when an IR module is malformed (verifier failures, bad builder use)."""


class ParseError(ReproError):
    """Raised by the mini-C frontend and the textual IR parser.

    Carries the source position of the offending token when available:
    ``line``/``column`` (0 = unknown), the combined ``pos`` pair, and
    ``raw_message`` — the message without the position prefix, so callers
    that format positions themselves (CLI, reports) never double-prefix.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        self.raw_message = message
        if line or column:
            message = f"{line}:{column}: {message}"
        super().__init__(message)

    @property
    def pos(self) -> Tuple[int, int]:
        """``(line, column)`` of the offending token (0 = unknown)."""
        return (self.line, self.column)


class AnalysisError(ReproError):
    """Raised when an analysis is mis-configured or run out of order."""


class SolverError(AnalysisError):
    """Raised when a points-to solver detects an internal inconsistency."""


class CheckpointError(AnalysisError):
    """A persisted artifact (checkpoint or result-store entry) was rejected.

    Raised — instead of ``json``/``KeyError``/``ValueError`` tracebacks — for
    every way a file on disk can fail to be trustworthy: unreadable or
    truncated bytes, checksum mismatches, an unknown schema version, a
    manifest recorded for a different program (IR hash) or solver
    configuration, or a payload whose shape does not match what the solver
    expects.  ``reason`` is a stable machine-readable tag:

    - ``"missing"``: the file does not exist or cannot be read;
    - ``"corrupt"``: undecodable, truncated, checksum mismatch, or a
      well-formed file whose payload does not restore cleanly;
    - ``"schema"``: a schema version this build does not understand;
    - ``"kind"``: the sealed file is of a different artifact type;
    - ``"ir-mismatch"``: recorded for a different program (IR content hash);
    - ``"config-mismatch"``: recorded for a different solver or ablation
      configuration.

    The CLI maps it (like every :class:`AnalysisError`) to exit code 3 and
    never loads the rejected state.
    """

    def __init__(self, message: str, reason: str = "corrupt",
                 path: Optional[str] = None):
        self.reason = reason
        self.path = path
        if path:
            message = f"{path}: {message}"
        super().__init__(message)


class BudgetExceeded(AnalysisError):
    """A governed run exhausted its :class:`repro.runtime.budget.Budget`.

    Raised cooperatively at worklist-pop granularity by every solver.  The
    raising solver :meth:`attach`\\ es its context, so a caller holding the
    exception can observe what was abandoned:

    - ``resource``: which budget dimension ran out (``"wall"``, ``"steps"``
      or ``"memory"``), with ``limit`` and ``used`` quantifying it;
    - ``stage``: the analysis that was interrupted (``"vsfs"``, ``"sfs"``,
      ``"andersen"``, ``"icfg-fs"``);
    - ``stats``: the solver's counters at the moment of interruption;
    - ``partial_result``: the partially-solved state.  **Diagnostic only**
      — a partial fixpoint under-approximates the converged may-analysis
      and must never be consumed as a sound result; the degradation ladder
      (:mod:`repro.runtime.degrade`) exists to produce sound answers.
    """

    def __init__(self, message: str, resource: str = "", limit=None, used=None):
        super().__init__(message)
        self.resource = resource
        self.limit = limit
        self.used = used
        self.stage: Optional[str] = None
        self.stats = None
        self.partial_result = None
        self.run_report = None  # filled by the degradation ladder on re-raise
        #: Path of the checkpoint written when the budget tripped (None when
        #: the run was not checkpointed) — the handle a supervisor resumes from.
        self.checkpoint_path: Optional[str] = None

    def attach(self, stage: Optional[str] = None, stats=None,
               partial_result=None) -> "BudgetExceeded":
        """Record solver context; first writer wins (the innermost stage)."""
        if stage is not None and self.stage is None:
            self.stage = stage
        if stats is not None and self.stats is None:
            self.stats = stats
        if partial_result is not None and self.partial_result is None:
            self.partial_result = partial_result
        return self


class ServiceError(ReproError):
    """Base class for typed failures of the analysis daemon (`repro-wpa
    serve`).

    Every request the service cannot answer gets one of these — encoded
    as a typed error *response* on the wire, never a dropped connection
    or a traceback.  The subclasses map onto the admission-control
    contract: :class:`InvalidRequest` (the request itself is bad),
    :class:`ServiceOverloaded` (load was shed; retry after the hinted
    delay), :class:`DeadlineExceeded` (the request's deadline passed
    before an answer was ready).
    """


class InvalidRequest(ServiceError):
    """A service request that cannot be decoded or names an unknown
    operation/analysis/variable.  Deterministic: retrying the identical
    request cannot help, so clients must not."""


class ServiceOverloaded(ServiceError):
    """The admission queue shed this request (bounded-queue overflow, a
    tenant over its queued quota, or a draining server).

    ``retry_after_s`` is the backoff hint encoded in the response; the
    queue stays bounded so an overloaded daemon degrades by shedding,
    never by growing without limit.
    """

    def __init__(self, message: str, retry_after_s: float = 0.5,
                 draining: bool = False):
        self.retry_after_s = retry_after_s
        self.draining = draining
        super().__init__(message)


class DeadlineExceeded(ServiceError):
    """A request's deadline expired — in the queue or mid-execution.

    The solve itself is interrupted cooperatively (the deadline becomes
    the wall-clock :class:`~repro.runtime.budget.Budget` of the run), so
    a late request costs bounded work, and the typed response tells the
    client exactly which phase timed out.
    """

    def __init__(self, message: str, deadline_s: float = 0.0,
                 phase: str = "queue"):
        self.deadline_s = deadline_s
        self.phase = phase  # "queue" | "execute"
        super().__init__(message)


class WorkerCrash(SolverError):
    """A parallel worker slot spent its failure budget.

    The driver's watchdog kills and revives workers that die, hang past
    the heartbeat timeout, or lose a frontier exchange; each incident
    charges that worker's failure budget.  When the budget is spent the
    driver aborts the parallel rung with this error so the degradation
    ladder collapses onto the serial twin (``sfs-par → sfs``,
    ``vsfs-par → vsfs``) — same precision, bit-identical results, tagged
    ``degraded_from`` in the run report.
    """

    def __init__(self, message: str, worker: int = -1, failures: int = 0,
                 incident: str = ""):
        self.worker = worker
        self.failures = failures
        #: What spent the last budget unit: "died", "hung", "spawn",
        #: "frontier-send", "frontier-recv".
        self.incident = incident
        self.run_report = None  # filled by the degradation ladder on re-raise
        super().__init__(message)


class InjectedFault(SolverError):
    """A deterministic fault fired by :mod:`repro.runtime.faults`.

    Carries full stage context so tests can prove that faults never escape
    as untyped exceptions: ``point`` is the instrumented trigger point
    (one of :data:`repro.runtime.faults.FAULT_POINTS` — solver, I/O and
    parallel domains), ``stage`` the analysis it fired inside, and
    ``hit`` the 1-based count of times that point had been reached.
    """

    def __init__(self, point: str = "", stage: str = "", hit: int = 0):
        self.point = point
        self.stage = stage
        self.hit = hit
        self.run_report = None  # filled by the degradation ladder on re-raise
        super().__init__(
            f"injected fault at {point!r} (hit #{hit}, stage {stage or 'unknown'})"
        )
