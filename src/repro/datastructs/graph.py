"""A small adjacency-list directed graph with the algorithms the analyses need.

Used for the Andersen constraint graph, the call graph, and as the substrate
for generic meld labelling.  All algorithms are iterative (no recursion) so
they scale to SVFGs with hundreds of thousands of nodes without hitting
CPython's recursion limit.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Set, Tuple, TypeVar

N = TypeVar("N", bound=Hashable)


class DiGraph(Generic[N]):
    """Directed graph with hashable nodes and unlabelled edges.

    Parallel edges collapse (successor sets), which is the semantics every
    client here wants.

    >>> g = DiGraph()
    >>> g.add_edge(1, 2)
    True
    >>> g.add_edge(1, 2)
    False
    >>> sorted(g.successors(1))
    [2]
    """

    __slots__ = ("_succs", "_preds")

    def __init__(self) -> None:
        self._succs: Dict[N, Set[N]] = {}
        self._preds: Dict[N, Set[N]] = {}

    def add_node(self, node: N) -> None:
        if node not in self._succs:
            self._succs[node] = set()
            self._preds[node] = set()

    def add_edge(self, src: N, dst: N) -> bool:
        """Insert the edge ``src -> dst``; return True if it is new."""
        self.add_node(src)
        self.add_node(dst)
        if dst in self._succs[src]:
            return False
        self._succs[src].add(dst)
        self._preds[dst].add(src)
        return True

    def remove_edge(self, src: N, dst: N) -> None:
        self._succs[src].discard(dst)
        self._preds[dst].discard(src)

    def has_edge(self, src: N, dst: N) -> bool:
        return src in self._succs and dst in self._succs[src]

    def has_node(self, node: N) -> bool:
        return node in self._succs

    def successors(self, node: N) -> Set[N]:
        return self._succs.get(node, set())

    def predecessors(self, node: N) -> Set[N]:
        return self._preds.get(node, set())

    def nodes(self) -> Iterator[N]:
        return iter(self._succs)

    def edges(self) -> Iterator[Tuple[N, N]]:
        for src, dsts in self._succs.items():
            for dst in dsts:
                yield src, dst

    def num_nodes(self) -> int:
        return len(self._succs)

    def num_edges(self) -> int:
        return sum(len(dsts) for dsts in self._succs.values())

    def reachable_from(self, roots: Iterable[N]) -> Set[N]:
        """All nodes reachable from *roots* (inclusive)."""
        seen: Set[N] = set()
        stack = [root for root in roots if root in self._succs]
        seen.update(stack)
        while stack:
            node = stack.pop()
            for succ in self._succs[node]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def __contains__(self, node: N) -> bool:
        return node in self._succs

    def __len__(self) -> int:
        return len(self._succs)


def strongly_connected_components(graph: DiGraph[N]) -> List[List[N]]:
    """Tarjan's SCC algorithm, iterative, in reverse topological order.

    Components are returned callee-first: every edge leaving a component
    points to a component that appears *earlier* in the returned list.
    """
    index: Dict[N, int] = {}
    lowlink: Dict[N, int] = {}
    on_stack: Set[N] = set()
    stack: List[N] = []
    components: List[List[N]] = []
    counter = 0

    for root in list(graph.nodes()):
        if root in index:
            continue
        # Each work item is (node, iterator over successors).
        work: List[Tuple[N, Iterator[N]]] = [(root, iter(graph.successors(root)))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            for succ in succs:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[N] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(graph: DiGraph[N]) -> Tuple[Dict[N, int], List[List[N]], "DiGraph[int]"]:
    """SCC-condense *graph* into its component DAG.

    Returns ``(component_of, components, dag)`` where ``components`` lists
    every SCC exactly once in **topological order** (every edge of ``dag``
    goes from a lower component index to a higher one), ``component_of``
    maps each node to its component's index, and ``dag`` has one node per
    component and the collapsed inter-component edges (self-loops dropped).
    Every node of *graph* appears in exactly one component.
    """
    sccs = strongly_connected_components(graph)
    sccs.reverse()  # Tarjan yields callee-first; topological = reverse
    component_of: Dict[N, int] = {}
    for cid, members in enumerate(sccs):
        for node in members:
            component_of[node] = cid
    dag: DiGraph[int] = DiGraph()
    for cid in range(len(sccs)):
        dag.add_node(cid)
    for src, dst in graph.edges():
        a, b = component_of[src], component_of[dst]
        if a != b:
            dag.add_edge(a, b)
    return component_of, sccs, dag


def topological_order(graph: DiGraph[N]) -> List[N]:
    """Topological order of an acyclic graph (Kahn's algorithm).

    Raises ``ValueError`` if the graph has a cycle.
    """
    indegree: Dict[N, int] = {node: len(graph.predecessors(node)) for node in graph.nodes()}
    ready = [node for node, deg in indegree.items() if deg == 0]
    order: List[N] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in graph.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != graph.num_nodes():
        raise ValueError("graph has a cycle; topological order undefined")
    return order
