"""Low-level data structures shared by every analysis in the library.

The points-to solvers are propagation-heavy, so the representations here are
chosen for speed under CPython:

- :class:`~repro.datastructs.bitset.BitSet` wraps an arbitrary-precision
  integer used as a bit vector (union is a single ``|``), mirroring the role
  LLVM's ``SparseBitVector`` plays in SVF.
- :class:`~repro.datastructs.interning.Interner` deduplicates hashable values
  to dense integer ids; it is how meld-labelling results become version ids.
- :class:`~repro.datastructs.worklist.WorkList` /
  :class:`~repro.datastructs.worklist.PriorityWorkList` drive the fixed-point
  solvers; :class:`~repro.datastructs.worklist.DeltaWorkList` additionally
  carries per-``(node, object)`` dirty masks for the staged solvers' delta
  propagation kernel.
- :class:`~repro.datastructs.ptrepo.PTRepo` interns points-to masks to dense
  ids and memoises pairwise unions, so byte-identical sets are stored once.
- :class:`~repro.datastructs.mde.MdeEngine` stacks the multi-level dedup
  layers on one repository: :class:`~repro.datastructs.mde.BatchMemo`
  memoises whole propagation batches, and
  :class:`~repro.datastructs.arena.PTArena` persists the interned masks in
  a memory-mapped region fork workers attach read-shared.
- :class:`~repro.datastructs.unionfind.UnionFind` backs constraint-graph cycle
  collapsing in Andersen's analysis.
- :class:`~repro.datastructs.graph.DiGraph` is a small adjacency-list digraph
  with iterative SCC (Tarjan) and topological ordering, used by the call
  graph and the constraint graph.
"""

from repro.datastructs.arena import ArenaError, PTArena
from repro.datastructs.bitset import BitSet, bits_of, count_bits, iter_bits
from repro.datastructs.graph import DiGraph, strongly_connected_components, topological_order
from repro.datastructs.interning import Interner
from repro.datastructs.mde import BatchMemo, MdeEngine
from repro.datastructs.ptrepo import EMPTY_ID, PTRepo
from repro.datastructs.unionfind import UnionFind
from repro.datastructs.worklist import (
    DeltaWorkList,
    FIFOWorkList,
    PriorityWorkList,
    WorkList,
)

__all__ = [
    "ArenaError",
    "BatchMemo",
    "BitSet",
    "MdeEngine",
    "PTArena",
    "bits_of",
    "count_bits",
    "iter_bits",
    "DiGraph",
    "strongly_connected_components",
    "topological_order",
    "Interner",
    "EMPTY_ID",
    "PTRepo",
    "UnionFind",
    "DeltaWorkList",
    "FIFOWorkList",
    "PriorityWorkList",
    "WorkList",
]
