"""Bit-vector sets over small non-negative integers.

Two layers live here:

1. Free functions (:func:`iter_bits`, :func:`count_bits`, :func:`bits_of`)
   operating on plain Python ints used as bit masks.  The inner loops of the
   solvers use raw ints directly because attribute lookups dominate the cost
   of a wrapper under CPython.
2. :class:`BitSet`, a thin set-like wrapper over such a mask, which is the
   public, ergonomic face of the same representation (the counterpart of
   LLVM's ``SparseBitVector`` that SVF uses for both points-to sets and meld
   labels).
"""

from __future__ import annotations

from typing import Iterable, Iterator


def bits_of(items: Iterable[int]) -> int:
    """Build an int mask with one bit set per element of *items*."""
    mask = 0
    for item in items:
        if item < 0:
            raise ValueError(f"bit sets hold non-negative ints, got {item}")
        mask |= 1 << item
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits in *mask* in ascending order.

    Uses ``(mask & -mask).bit_length()`` to strip the lowest set bit, which is
    O(set bits) rather than O(universe size).
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


if hasattr(int, "bit_count"):  # Python >= 3.10: native popcount
    def count_bits(mask: int) -> int:
        """Population count of *mask*."""
        return mask.bit_count()
else:  # pragma: no cover — exercised on Python 3.9 in CI
    def count_bits(mask: int) -> int:
        """Population count of *mask*."""
        return bin(mask).count("1") if mask else 0


class BitSet:
    """A mutable set of non-negative integers backed by one Python int.

    Supports the usual set algebra. Union of two ``BitSet`` objects is a
    single big-int ``|``, which is what makes propagation fast.

    >>> s = BitSet([1, 5])
    >>> s.add(3)
    True
    >>> sorted(s)
    [1, 3, 5]
    >>> s |= BitSet([5, 9])
    >>> 9 in s
    True
    """

    __slots__ = ("mask",)

    def __init__(self, items: Iterable[int] = (), mask: int = 0):
        self.mask = mask | bits_of(items)

    @classmethod
    def from_mask(cls, mask: int) -> "BitSet":
        """Wrap an existing int mask without copying."""
        bitset = cls()
        bitset.mask = mask
        return bitset

    def add(self, item: int) -> bool:
        """Insert *item*; return True if it was not already present."""
        bit = 1 << item
        if self.mask & bit:
            return False
        self.mask |= bit
        return True

    def discard(self, item: int) -> None:
        self.mask &= ~(1 << item)

    def remove(self, item: int) -> None:
        bit = 1 << item
        if not self.mask & bit:
            raise KeyError(item)
        self.mask ^= bit

    def clear(self) -> None:
        self.mask = 0

    def copy(self) -> "BitSet":
        return BitSet.from_mask(self.mask)

    def update(self, other: "BitSet | Iterable[int]") -> bool:
        """In-place union; return True if the set grew."""
        mask = other.mask if isinstance(other, BitSet) else bits_of(other)
        new = self.mask | mask
        if new == self.mask:
            return False
        self.mask = new
        return True

    def intersection_update(self, other: "BitSet") -> None:
        self.mask &= other.mask

    def difference_update(self, other: "BitSet") -> None:
        self.mask &= ~other.mask

    def isdisjoint(self, other: "BitSet") -> bool:
        return not self.mask & other.mask

    def issubset(self, other: "BitSet") -> bool:
        return self.mask | other.mask == other.mask

    def issuperset(self, other: "BitSet") -> bool:
        return self.mask | other.mask == self.mask

    def pop_lowest(self) -> int:
        """Remove and return the smallest element."""
        if not self.mask:
            raise KeyError("pop from an empty BitSet")
        low = self.mask & -self.mask
        self.mask ^= low
        return low.bit_length() - 1

    def __contains__(self, item: int) -> bool:
        return item >= 0 and bool(self.mask >> item & 1)

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self.mask)

    def __len__(self) -> int:
        return count_bits(self.mask)

    def __bool__(self) -> bool:
        return bool(self.mask)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSet):
            return self.mask == other.mask
        if isinstance(other, (set, frozenset)):
            return self.mask == bits_of(other)
        return NotImplemented

    def __hash__(self) -> int:  # hashable snapshots are handy for interning
        return hash(self.mask)

    def __or__(self, other: "BitSet") -> "BitSet":
        return BitSet.from_mask(self.mask | other.mask)

    def __ior__(self, other: "BitSet") -> "BitSet":
        self.mask |= other.mask
        return self

    def __and__(self, other: "BitSet") -> "BitSet":
        return BitSet.from_mask(self.mask & other.mask)

    def __sub__(self, other: "BitSet") -> "BitSet":
        return BitSet.from_mask(self.mask & ~other.mask)

    def __repr__(self) -> str:
        return f"BitSet({sorted(self)})"
