"""Multi-level deduplication engine (MDE) for points-to solving.

The PTRepo pairwise-union cache (PR 1) dedups *single* unions; profiling
the staged kernels shows the same redundancy one level up: because meld
versioning keys memory by global (object, version), identical
(entry-id, delta-id) *propagation batches* recur across SVFG nodes,
degradation-ladder rungs, shards, and warm runs.  Following the
operation-level argument of *Points-to Analysis Using MDE*, this module
stacks three dedup layers on one interner:

1. :class:`BatchMemo` — memoises whole transfer/propagate steps.
   ``apply(entry, delta_id)`` answers "what does this entry become under
   this delta, and what actually grew?" with one dict lookup once any
   node anywhere has executed the same batch; ``gather_mask`` memoises
   the n-way gather a load performs over its pointees' entries.
2. Cross-rung hash-consing — :class:`MdeEngine` owns the
   :class:`~repro.datastructs.ptrepo.PTRepo`; every ladder rung solved
   on one engine shares the interner, the union cache, and the batch
   memo, so a vsfs→sfs fallback re-uses instead of re-interning.
3. A memory-mapped arena (:mod:`repro.datastructs.arena`) persisting the
   interned masks so fork workers attach them read-shared and warm runs
   reattach them.

Everything here is defined in terms of repo ids over masks that exist
either way, so results are bit-identical to MDE-off runs by
construction; only the amount of recomputation changes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.datastructs.arena import ArenaError, PTArena
from repro.datastructs.ptrepo import PTRepo


class BatchMemo:
    """Propagation-batch memo over one repository's id space.

    Keys are pure id tuples, so a hit is sound exactly because the repo
    hash-conses: equal ids ⇒ equal masks ⇒ equal batch outcome.  The
    memo must be dropped whenever the repository instance it was built
    over is swapped (see ``StagedSolverBase._rebind_mde``) — ids are
    meaningless across repositories.
    """

    __slots__ = ("repo", "_apply", "_gather", "hits", "misses")

    def __init__(self, repo: PTRepo):
        self.repo = repo
        self._apply: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._gather: Dict[Tuple[int, ...], int] = {}
        self.hits = 0
        self.misses = 0

    @property
    def entries(self) -> int:
        return len(self._apply) + len(self._gather)

    def apply(self, entry: int, delta_id: int) -> Tuple[int, int]:
        """One propagation batch: ``(new_entry_id, added_id)``.

        ``new_entry_id`` identifies ``entry | delta``; ``added_id``
        identifies ``delta & ~entry`` and is 0 (the empty set) exactly
        when the batch did not grow the entry — callers use its
        truthiness the way the raw kernel uses ``added``.
        """
        key = (entry, delta_id)
        got = self._apply.get(key)
        if got is not None:
            self.hits += 1
            return got
        self.misses += 1
        repo = self.repo
        added = repo.mask(delta_id) & ~repo.mask(entry)
        if added:
            got = (repo.union(entry, delta_id), repo.intern(added))
        else:
            got = (entry, 0)
        self._apply[key] = got
        return got

    def gather_mask(self, ids: Iterable[int]) -> int:
        """Union of the masks behind *ids* (a load's n-way gather).

        The key drops empties, dedups and sorts — all transformations
        that preserve the union — so permuted gathers over the same
        entries hit the same memo slot.
        """
        key = tuple(sorted(set(i for i in ids if i)))
        if not key:
            return 0
        repo = self.repo
        if len(key) == 1:
            return repo.mask(key[0])
        got = self._gather.get(key)
        if got is not None:
            self.hits += 1
            return repo.mask(got)
        self.misses += 1
        mask = 0
        for ident in key:
            mask |= repo.mask(ident)
        self._gather[key] = repo.intern(mask)
        return mask


class MdeEngine:
    """One shared deduplication domain: interner + batch memo + arena.

    The engine is what the stage graph shares across ladder rungs (the
    ``StageContext.mde`` slot): every solver constructed over it uses
    the same :class:`PTRepo` and :class:`BatchMemo`, and the optional
    arena persists that repository's masks across processes and runs.
    """

    def __init__(self, repo: Optional[PTRepo] = None,
                 arena: Optional[PTArena] = None):
        self.repo = repo if repo is not None else PTRepo()
        self.batch = BatchMemo(self.repo)
        self.arena: Optional[PTArena] = None
        self.arena_preloaded = 0
        #: Path the corrupt arena was quarantined to, when that happened.
        self.arena_quarantined: Optional[str] = None
        self._arena_aligned = False
        if arena is not None:
            self.bind_arena(arena)

    @classmethod
    def open(cls, arena_path: Optional[str] = None, *,
             attach_only: bool = False) -> "MdeEngine":
        """Build an engine, best-effort binding the arena at *arena_path*.

        The arena is a cache, so this never raises on its account: a
        corrupt file is quarantined (writers only — workers must not
        race the owning process) and the engine proceeds arena-less; a
        missing file in ``attach_only`` mode is simply skipped.
        """
        engine = cls()
        if not arena_path:
            return engine
        arena: Optional[PTArena] = None
        try:
            if attach_only:
                arena = PTArena.attach(arena_path)
            else:
                arena = PTArena.open(arena_path)
        except ArenaError:
            if not attach_only:
                from repro.store.atomic import quarantine_file

                engine.arena_quarantined = quarantine_file(arena_path)
                try:
                    arena = PTArena.open(arena_path)
                except (ArenaError, OSError):
                    arena = None
        except OSError:
            arena = None
        if arena is not None:
            engine.bind_arena(arena)
        return engine

    def bind_arena(self, arena: PTArena) -> None:
        """Adopt *arena*, pre-interning its records.

        When the repository was fresh, record *i* lands on repo id *i*
        and the arena stays positionally aligned with the repository —
        the invariant :meth:`flush` needs to append only the suffix.  A
        misaligned bind (non-empty repo, or an arena with duplicate
        records) still warms the interner but disables flushing.
        """
        before = self.repo.size
        for mask in arena.masks():
            self.repo.intern(mask)
        self.arena = arena
        self.arena_preloaded = self.repo.size - before
        self._arena_aligned = self.repo.size == len(arena)

    def flush(self) -> int:
        """Append masks interned since the arena watermark; returns count."""
        arena = self.arena
        if arena is None or not arena.writable or not self._arena_aligned:
            return 0
        fresh = self.repo.masks_since(len(arena))
        if not fresh:
            return 0
        return arena.append_masks(fresh)
