"""Interning of hashable values to dense integer ids.

Object versioning melds prelabels into label *sets*; two SVFG nodes share a
points-to set exactly when their melded label sets are equal.  Interning each
distinct label set to a small id makes "same version" a cheap int comparison
and makes the global ``(object, version) -> points-to set`` table compact.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, TypeVar

T = TypeVar("T", bound=Hashable)


class Interner(Generic[T]):
    """Assign consecutive ids (from 0) to distinct hashable values.

    >>> interner = Interner()
    >>> interner.intern("a"), interner.intern("b"), interner.intern("a")
    (0, 1, 0)
    >>> interner.value_of(1)
    'b'
    >>> len(interner)
    2
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: Dict[T, int] = {}
        self._values: List[T] = []

    def intern(self, value: T) -> int:
        """Return the id for *value*, allocating a new one if unseen."""
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
        return ident

    def get(self, value: T) -> "int | None":
        """Return *value*'s id, or None if it was never interned."""
        return self._ids.get(value)

    def value_of(self, ident: int) -> T:
        """Return the value interned under *ident*."""
        return self._values[ident]

    def __contains__(self, value: T) -> bool:
        return value in self._ids

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)
