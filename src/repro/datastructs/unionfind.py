"""Union-find (disjoint sets) over dense integer ids.

Andersen's analysis collapses strongly connected constraint-graph components
into a single representative; union-find keeps the node → representative map
near O(1) amortised via path halving and union by rank.
"""

from __future__ import annotations

from typing import List


class UnionFind:
    """Disjoint-set forest over the ids ``0 .. n-1`` (growable)."""

    __slots__ = ("_parent", "_rank")

    def __init__(self, size: int = 0):
        self._parent: List[int] = list(range(size))
        self._rank: List[int] = [0] * size

    def add(self) -> int:
        """Add a fresh singleton set and return its id."""
        ident = len(self._parent)
        self._parent.append(ident)
        self._rank.append(0)
        return ident

    def ensure(self, ident: int) -> None:
        """Grow the universe so that *ident* is a valid id."""
        while len(self._parent) <= ident:
            self.add()

    def find(self, ident: int) -> int:
        """Return the representative of *ident*'s set (path halving)."""
        parent = self._parent
        while parent[ident] != ident:
            parent[ident] = parent[parent[ident]]
            ident = parent[ident]
        return ident

    def union(self, a: int, b: int) -> int:
        """Merge the sets of *a* and *b*; return the surviving representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    # ----------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Checkpointable state: the parent/rank arrays verbatim.

        Path-halving mutations already applied are captured as-is; they
        change only lookup cost, never set membership, so a restored forest
        answers every :meth:`find`/:meth:`same` query identically.
        """
        return {"parent": list(self._parent), "rank": list(self._rank)}

    @classmethod
    def from_snapshot(cls, state: dict) -> "UnionFind":
        parent = [int(x) for x in state["parent"]]
        rank = [int(x) for x in state["rank"]]
        if len(parent) != len(rank):
            raise ValueError("union-find snapshot arrays disagree in length")
        if any(p < 0 or p >= len(parent) for p in parent):
            raise ValueError("union-find snapshot has out-of-range parent")
        uf = cls()
        uf._parent = parent
        uf._rank = rank
        return uf

    def __len__(self) -> int:
        return len(self._parent)
