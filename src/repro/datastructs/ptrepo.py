"""Deduplicated points-to set repository (interner + memoised unions).

Flow-sensitive analyses store the *same* points-to set many times: every
SVFG node holding ``{a, b}`` for object ``o`` keeps its own copy, and the
solver recomputes ``{a} ∪ {b}`` at each of them.  :class:`PTRepo` removes
both redundancies, following the dedup idea of *Points-to Analysis Using
MDE* (see PAPERS.md):

- every distinct mask is **interned** to a dense id, so byte-identical sets
  are stored once and solver tables hold small ids that all reference the
  single shared big-int;
- pairwise unions are **memoised**: ``union(a, b)`` consults an
  ``(a, b) -> result`` cache before touching the masks, so a union the
  solver already performed anywhere in the program costs one dict lookup.

Id ``0`` is always the empty set, which keeps the truthiness of a stored
entry identical to the truthiness of the mask it names.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.datastructs.bitset import count_bits

#: Id of the empty points-to set in every repository.
EMPTY_ID = 0


class PTRepo:
    """Intern points-to masks to dense ids and memoise their unions.

    >>> repo = PTRepo()
    >>> a, b = repo.intern(0b011), repo.intern(0b110)
    >>> repo.mask(repo.union(a, b))
    7
    >>> repo.union(a, b) == repo.union(b, a)  # cache is order-normalised
    True
    """

    __slots__ = ("_ids", "_masks", "_union_cache", "union_calls", "union_hits")

    def __init__(self) -> None:
        self._ids: Dict[int, int] = {0: EMPTY_ID}
        self._masks: List[int] = [0]
        self._union_cache: Dict[Tuple[int, int], int] = {}
        self.union_calls = 0
        self.union_hits = 0

    # ------------------------------------------------------------- interning

    def intern(self, mask: int) -> int:
        """Return the id naming *mask*, allocating one if unseen."""
        ident = self._ids.get(mask)
        if ident is None:
            ident = len(self._masks)
            self._ids[mask] = ident
            self._masks.append(mask)
        return ident

    def mask(self, ident: int) -> int:
        """The mask an id names (the single shared copy)."""
        return self._masks[ident]

    def get(self, mask: int) -> Optional[int]:
        """The id of *mask* if already interned, else None."""
        return self._ids.get(mask)

    # ---------------------------------------------------------------- unions

    def union(self, a: int, b: int) -> int:
        """Id of ``mask(a) | mask(b)``, memoised per unordered pair."""
        if a == b or b == EMPTY_ID:
            return a
        if a == EMPTY_ID:
            return b
        key = (a, b) if a < b else (b, a)
        self.union_calls += 1
        cached = self._union_cache.get(key)
        if cached is not None:
            self.union_hits += 1
            return cached
        result = self.intern(self._masks[a] | self._masks[b])
        self._union_cache[key] = result
        return result

    def union_mask(self, ident: int, mask: int) -> int:
        """Id of ``mask(ident) | mask`` (interns *mask* first)."""
        if not mask:
            return ident
        return self.union(ident, self.intern(mask))

    # ----------------------------------------------------------- persistence

    def snapshot(self) -> List[str]:
        """The interning table as hex masks, index = id (checkpointable).

        The union cache and its hit counters are deliberately *not* part of
        the snapshot: they are a performance memo, rebuilt for free as the
        resumed solve re-requests unions, and omitting them keeps the
        serialised form exactly the deduplicated content — one line per
        distinct set, the MDE-style storage story.
        """
        return [format(mask, "x") for mask in self._masks]

    @classmethod
    def from_snapshot(cls, masks: List[str]) -> "PTRepo":
        """Rebuild a repository from :meth:`snapshot` output.

        Validates the two structural invariants every live repo holds —
        id 0 names the empty set, and no mask appears twice — so a damaged
        snapshot cannot silently produce a repo whose ids alias each other.
        """
        repo = cls()
        if not masks or masks[0] != "0":
            raise ValueError("ptrepo snapshot must start with the empty set")
        for text in masks[1:]:
            mask = int(text, 16)
            if mask in repo._ids:
                raise ValueError(f"duplicate mask {text!r} in ptrepo snapshot")
            repo._ids[mask] = len(repo._masks)
            repo._masks.append(mask)
        return repo

    # ----------------------------------------------------- id-delta wire codec

    def export_ids(self, watermark: int) -> Tuple[List[str], int]:
        """The interning-table rows appended since *watermark*, plus the new
        watermark.

        This is the parallel frontier's **delta table**: because ids are
        dense and append-only, a sender that remembers how far it has
        already shipped its table needs to transmit only the suffix — each
        distinct points-to set crosses the wire exactly once, ever, no
        matter how many frontier entries reference it (they carry bare
        integer ids).
        """
        rows = [format(mask, "x") for mask in self._masks[watermark:]]
        return rows, len(self._masks)

    def import_ids(self, rows: List[str], watermark: int) -> int:
        """Append a peer's :meth:`export_ids` *rows* to a mirror table.

        The mirror is *positional*: row ``i`` of the peer's table denotes
        the same set as local index ``i`` — callers keep one importer repo
        per peer and resolve the peer's wire ids through :meth:`mask`.
        Raises ``ValueError`` on a gap or overlap, which would silently
        misalign every subsequent id.
        """
        if watermark != len(self._masks):
            raise ValueError(
                f"id-delta stream out of sync: expected watermark "
                f"{len(self._masks)}, got {watermark}")
        for text in rows:
            mask = int(text, 16)
            # Mirror tables replicate the peer's table positionally; the
            # peer never interns a duplicate, so neither do we — but a
            # corrupted stream could, and must not silently alias ids.
            if mask in self._ids and self._ids[mask] != len(self._masks):
                raise ValueError(f"duplicate mask {text!r} in id-delta stream")
            self._ids[mask] = len(self._masks)
            self._masks.append(mask)
        return len(self._masks)

    @property
    def size(self) -> int:
        """Number of table rows including the empty set (the watermark
        domain of :meth:`export_ids`/:meth:`import_ids`)."""
        return len(self._masks)

    def masks_since(self, watermark: int) -> List[int]:
        """Raw masks appended since *watermark* (arena flush suffix)."""
        return self._masks[watermark:]

    # ----------------------------------------------------------------- stats

    @property
    def union_misses(self) -> int:
        return self.union_calls - self.union_hits

    def hit_rate(self) -> float:
        """Fraction of union requests answered from the cache."""
        return self.union_hits / self.union_calls if self.union_calls else 0.0

    def __len__(self) -> int:
        """Number of distinct non-empty sets interned."""
        return len(self._masks) - 1

    def total_bits(self, idents: "Iterable[int] | None" = None) -> int:
        """Total set bits over *idents* (or every interned mask)."""
        if idents is not None:
            return sum(count_bits(self._masks[i]) for i in idents)
        return sum(count_bits(mask) for mask in self._masks)

    @property
    def union_cache_size(self) -> int:
        """Entries in the pairwise-union memo (it grows without bound)."""
        return len(self._union_cache)

    def content_bytes(self) -> int:
        """Estimated resident bytes of the deduplicated mask content.

        Counts each distinct mask's payload once — the denominator the
        dedup-memory story is told against; dict/list overhead and the
        union cache are reported separately by the solver stats.
        """
        return sum((mask.bit_length() + 7) // 8 for mask in self._masks)
