"""Memory-mapped append-only arena of interned points-to masks.

The third layer of the multi-level deduplication engine
(:mod:`repro.datastructs.mde`): a flat byte region holding every distinct
points-to mask a repository has interned, one record per
:class:`~repro.datastructs.ptrepo.PTRepo` id.  Two properties make the
flat file worth having:

- **read-shared attachment** — fork workers :meth:`attach` the region
  read-only through ``mmap``, so the mask bytes live in shared physical
  pages instead of being re-deserialised (and copy-on-write duplicated)
  per process;
- **warm reattachment** — a later run on the same store re-interns the
  arena's masks in one sequential sweep before solving, so every set the
  previous run discovered is already hash-consed when the solver asks.

Layout (all little-endian)::

    [magic "PTARENA1"][u64 count][u64 used]      -- 24-byte header
    [u32 len][len mask bytes] * count            -- record region

Record ``i`` holds the mask of repo id ``i``; record 0 is therefore
always the zero-length empty set.  Appends write the new records first
and update the header last, so a reader never walks past ``used`` into a
torn tail — a crashed append loses at most the records it was writing,
never the prefix.  The arena is purely a performance cache: every
consumer validates it on open and falls back to an empty repository when
it does not parse, so results can never depend on its contents.
"""

from __future__ import annotations

import mmap
import os
import struct
from typing import Iterable, Iterator, List, Tuple

MAGIC = b"PTARENA1"
_HEADER = struct.Struct("<8sQQ")  # magic, record count, used record bytes
_LEN = struct.Struct("<I")
HEADER_SIZE = _HEADER.size


class ArenaError(ValueError):
    """The arena file is malformed (bad magic, truncation, overrun)."""


class PTArena:
    """One mask-arena file, open for appending or attached read-only.

    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "arena.bin")
    >>> arena = PTArena.open(path)
    >>> arena.append_masks([0b101, 0b11])
    2
    >>> reader = PTArena.attach(path)
    >>> list(reader.masks())
    [0, 5, 3]
    """

    def __init__(self, path: str, *, file=None, buf=None,
                 offsets: List[Tuple[int, int]], used: int, writable: bool):
        self.path = path
        self._file = file  # open r+b handle (writable mode)
        self._buf = buf  # read-only mmap (attached mode)
        self._offsets = offsets  # (absolute offset, length) per record
        self._used = used
        self.writable = writable

    # --------------------------------------------------------------- opening

    @classmethod
    def open(cls, path: str) -> "PTArena":
        """Open (creating if missing) *path* for appending.

        Exactly one process should hold a writable arena; readers use
        :meth:`attach`.  Raises :class:`ArenaError` if an existing file
        does not validate.
        """
        if not os.path.exists(path):
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(path, "wb") as handle:
                # Header + the mandatory empty-set record (repo id 0).
                handle.write(_HEADER.pack(MAGIC, 1, _LEN.size))
                handle.write(_LEN.pack(0))
        file = open(path, "r+b")
        try:
            offsets, used = cls._scan(file.read(), path)
        except ArenaError:
            file.close()
            raise
        return cls(path, file=file, offsets=offsets, used=used, writable=True)

    @classmethod
    def attach(cls, path: str) -> "PTArena":
        """Attach *path* read-only through a shared memory map.

        The map's physical pages are shared with every other process
        attached to the same file (and, under fork, with the parent),
        which is what cuts the per-worker copy-on-write churn.
        """
        with open(path, "rb") as handle:
            if os.fstat(handle.fileno()).st_size == 0:
                # mmap rejects empty files with an untyped ValueError; a
                # zero-truncated arena is malformed like any other.
                raise ArenaError(f"arena {path} is empty")
            buf = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            offsets, used = cls._scan(buf, path)
        except ArenaError:
            buf.close()
            raise
        return cls(path, buf=buf, offsets=offsets, used=used, writable=False)

    @staticmethod
    def _scan(data, path: str) -> Tuple[List[Tuple[int, int]], int]:
        """Validate the header and walk the record region; returns
        ``(offsets, used)`` or raises :class:`ArenaError`."""
        if len(data) < HEADER_SIZE:
            raise ArenaError(f"arena {path} is shorter than its header")
        magic, count, used = _HEADER.unpack_from(data, 0)
        if magic != MAGIC:
            raise ArenaError(f"arena {path} has bad magic {magic!r}")
        end = HEADER_SIZE + used
        if end > len(data):
            raise ArenaError(
                f"arena {path} is truncated: header claims {used} record "
                f"bytes, file has {len(data) - HEADER_SIZE}")
        offsets: List[Tuple[int, int]] = []
        pos = HEADER_SIZE
        while pos < end:
            if pos + _LEN.size > end:
                raise ArenaError(f"arena {path}: record length overruns "
                                 f"the region at offset {pos}")
            (length,) = _LEN.unpack_from(data, pos)
            pos += _LEN.size
            if pos + length > end:
                raise ArenaError(f"arena {path}: record of {length} bytes "
                                 f"overruns the region at offset {pos}")
            offsets.append((pos, length))
            pos += length
        if len(offsets) != count:
            raise ArenaError(f"arena {path}: header claims {count} records, "
                             f"region holds {len(offsets)}")
        if not offsets or offsets[0][1] != 0:
            raise ArenaError(f"arena {path}: record 0 must be the empty set")
        return offsets, used

    # --------------------------------------------------------------- reading

    def __len__(self) -> int:
        """Number of records (= the repo-id watermark the arena covers)."""
        return len(self._offsets)

    def mask(self, index: int) -> int:
        """The mask record *index* holds (repo id *index*)."""
        offset, length = self._offsets[index]
        if not length:
            return 0
        if self._buf is not None:
            data = self._buf[offset:offset + length]
        else:
            self._file.seek(offset)
            data = self._file.read(length)
        return int.from_bytes(data, "little")

    def masks(self) -> Iterator[int]:
        """Every record's mask, in repo-id order."""
        for index in range(len(self._offsets)):
            yield self.mask(index)

    @property
    def resident_bytes(self) -> int:
        """Bytes of the mapped/backing region (header + records)."""
        return HEADER_SIZE + self._used

    # -------------------------------------------------------------- appending

    def append_masks(self, masks: Iterable[int]) -> int:
        """Append one record per mask; returns how many were written.

        Records are flushed before the header is rewritten, so a reader
        (or a crash) mid-append sees the old consistent prefix.
        """
        if not self.writable:
            raise ArenaError(f"arena {self.path} is attached read-only")
        chunk = bytearray()
        pos = HEADER_SIZE + self._used
        count = 0
        for mask in masks:
            data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
            chunk += _LEN.pack(len(data))
            pos += _LEN.size
            self._offsets.append((pos, len(data)))
            chunk += data
            pos += len(data)
            count += 1
        if not count:
            return 0
        file = self._file
        file.seek(HEADER_SIZE + self._used)
        file.write(bytes(chunk))
        file.flush()
        self._used = pos - HEADER_SIZE
        file.seek(0)
        file.write(_HEADER.pack(MAGIC, len(self._offsets), self._used))
        file.flush()
        os.fsync(file.fileno())
        return count

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._buf is not None:
            self._buf.close()
            self._buf = None
