"""Worklists driving fixed-point solvers.

All lists deduplicate: pushing an item already queued is a no-op.  The
points-to solvers push nodes many times per fixed point, so membership checks
must be O(1).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Generic, Iterable, List, Set, TypeVar

T = TypeVar("T")


class WorkList(Generic[T]):
    """LIFO worklist with O(1) dedup. Good default for constraint solving."""

    __slots__ = ("_items", "_member")

    def __init__(self, items: Iterable[T] = ()):
        self._items: List[T] = []
        self._member: Set[T] = set()
        for item in items:
            self.push(item)

    def push(self, item: T) -> bool:
        """Queue *item* unless already queued; return True if queued."""
        if item in self._member:
            return False
        self._member.add(item)
        self._items.append(item)
        return True

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def pop(self) -> T:
        item = self._items.pop()
        self._member.discard(item)
        return item

    def __contains__(self, item: T) -> bool:
        return item in self._member

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class FIFOWorkList(Generic[T]):
    """FIFO worklist with O(1) dedup; round-robin order helps convergence
    on graphs with long chains (e.g. SVFG value-flow paths)."""

    __slots__ = ("_items", "_member")

    def __init__(self, items: Iterable[T] = ()):
        self._items: Deque[T] = deque()
        self._member: Set[T] = set()
        for item in items:
            self.push(item)

    def push(self, item: T) -> bool:
        if item in self._member:
            return False
        self._member.add(item)
        self._items.append(item)
        return True

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def pop(self) -> T:
        item = self._items.popleft()
        self._member.discard(item)
        return item

    def __contains__(self, item: T) -> bool:
        return item in self._member

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class PriorityWorkList(Generic[T]):
    """Priority worklist popping the item with the smallest key first.

    Processing SVFG nodes in (reverse) topological order of the constraint
    graph reduces redundant propagation; the solvers use node ids assigned in
    a topological-ish order as priorities.
    """

    __slots__ = ("_heap", "_member", "_key")

    def __init__(self, key: Callable[[T], int], items: Iterable[T] = ()):
        self._heap: List[tuple] = []
        self._member: Set[T] = set()
        self._key = key
        for item in items:
            self.push(item)

    def push(self, item: T) -> bool:
        if item in self._member:
            return False
        self._member.add(item)
        heapq.heappush(self._heap, (self._key(item), id(item), item))
        return True

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def pop(self) -> T:
        __, __, item = heapq.heappop(self._heap)
        self._member.discard(item)
        return item

    def __contains__(self, item: T) -> bool:
        return item in self._member

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
