"""Worklists driving fixed-point solvers.

All lists deduplicate: pushing an item already queued is a no-op.  The
points-to solvers push nodes many times per fixed point, so membership checks
must be O(1).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, Generic, Iterable, List, Set, Tuple, TypeVar

T = TypeVar("T")


class WorkList(Generic[T]):
    """LIFO worklist with O(1) dedup. Good default for constraint solving."""

    __slots__ = ("_items", "_member")

    def __init__(self, items: Iterable[T] = ()):
        self._items: List[T] = []
        self._member: Set[T] = set()
        for item in items:
            self.push(item)

    def push(self, item: T) -> bool:
        """Queue *item* unless already queued; return True if queued."""
        if item in self._member:
            return False
        self._member.add(item)
        self._items.append(item)
        return True

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def pop(self) -> T:
        item = self._items.pop()
        self._member.discard(item)
        return item

    def __contains__(self, item: T) -> bool:
        return item in self._member

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class FIFOWorkList(Generic[T]):
    """FIFO worklist with O(1) dedup; round-robin order helps convergence
    on graphs with long chains (e.g. SVFG value-flow paths)."""

    __slots__ = ("_items", "_member")

    def __init__(self, items: Iterable[T] = ()):
        self._items: Deque[T] = deque()
        self._member: Set[T] = set()
        for item in items:
            self.push(item)

    def push(self, item: T) -> bool:
        if item in self._member:
            return False
        self._member.add(item)
        self._items.append(item)
        return True

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def pop(self) -> T:
        item = self._items.popleft()
        self._member.discard(item)
        return item

    def __contains__(self, item: T) -> bool:
        return item in self._member

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # ----------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Queue order verbatim (items must be JSON-safe, e.g. ints)."""
        return {"items": list(self._items)}

    def restore(self, state: dict) -> None:
        """Reload :meth:`snapshot` output into this (empty) worklist."""
        self._items = deque(state["items"])
        self._member = set(self._items)


class DeltaWorkList(FIFOWorkList[int]):
    """FIFO node worklist carrying per-``(node, object)`` dirty delta masks.

    The staged solvers' delta propagation kernel layers object-granular
    dirty information on :class:`FIFOWorkList`: a node queued with
    :meth:`push_delta` remembers *which* objects grew and by *which* bits,
    so a popped memory node re-propagates only those, not its entire IN
    map.  :meth:`push` (no delta) marks the node for a **full** revisit —
    used when top-level operands change or new edges are wired in, where
    everything must be reconsidered; a full mark subsumes any pending or
    later deltas for that node.

    Subclasses :class:`FIFOWorkList` directly (rather than wrapping one) so
    the per-propagation cost stays one call deep — this is the solvers'
    innermost loop.
    """

    __slots__ = ("_dirty", "_full")

    def __init__(self, items: Iterable[int] = ()):
        self._dirty: Dict[int, Dict[int, int]] = {}
        self._full: Set[int] = set()
        super().__init__(items)

    def push(self, node: int) -> bool:
        """Queue *node* for a full revisit (drops narrower dirty info)."""
        self._full.add(node)
        self._dirty.pop(node, None)
        member = self._member
        if node in member:
            return False
        member.add(node)
        self._items.append(node)
        return True

    def push_delta(self, node: int, oid: int, delta: int) -> bool:
        """Queue *node* with *delta* bits of object *oid* marked dirty."""
        if node not in self._full:  # a pending full revisit subsumes deltas
            per_obj = self._dirty.get(node)
            if per_obj is None:
                self._dirty[node] = {oid: delta}
            else:
                per_obj[oid] = per_obj.get(oid, 0) | delta
        member = self._member
        if node in member:
            return False
        member.add(node)
        self._items.append(node)
        return True

    def take_dirty(self, node: int) -> "Dict[int, int] | None":
        """Consume the dirty map recorded for *node*.

        ``None`` means "revisit fully" (the node was queued with
        :meth:`push`, or defensively if no record exists); a dict maps each
        dirty object id to the bits that arrived since the node last ran.
        """
        full = self._full
        if node in full:
            full.discard(node)
            return None
        return self._dirty.pop(node, None)

    def pop_with_dirty(self) -> "Tuple[int, Dict[int, int] | None]":
        """Pop the next node together with its dirty map (one call, for
        the solver's inner loop)."""
        node = self._items.popleft()
        self._member.discard(node)
        full = self._full
        if node in full:
            full.discard(node)
            return node, None
        return node, self._dirty.pop(node, None)

    # ----------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        """Queue order plus the full/dirty annotations (hex delta masks)."""
        return {
            "items": list(self._items),
            "full": sorted(self._full),
            "dirty": {
                str(node): {str(oid): format(delta, "x")
                            for oid, delta in per_obj.items()}
                for node, per_obj in self._dirty.items()
            },
        }

    def restore(self, state: dict) -> None:
        self._items = deque(int(node) for node in state["items"])
        self._member = set(self._items)
        self._full = {int(node) for node in state["full"]}
        self._dirty = {
            int(node): {int(oid): int(delta, 16)
                        for oid, delta in per_obj.items()}
            for node, per_obj in state["dirty"].items()
        }


class PriorityWorkList(Generic[T]):
    """Priority worklist popping the item with the smallest key first.

    Processing SVFG nodes in (reverse) topological order of the constraint
    graph reduces redundant propagation; the solvers use node ids assigned in
    a topological-ish order as priorities.
    """

    __slots__ = ("_heap", "_member", "_key")

    def __init__(self, key: Callable[[T], int], items: Iterable[T] = ()):
        self._heap: List[tuple] = []
        self._member: Set[T] = set()
        self._key = key
        for item in items:
            self.push(item)

    def push(self, item: T) -> bool:
        if item in self._member:
            return False
        self._member.add(item)
        heapq.heappush(self._heap, (self._key(item), id(item), item))
        return True

    def extend(self, items: Iterable[T]) -> None:
        for item in items:
            self.push(item)

    def pop(self) -> T:
        __, __, item = heapq.heappop(self._heap)
        self._member.discard(item)
        return item

    def __contains__(self, item: T) -> bool:
        return item in self._member

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
