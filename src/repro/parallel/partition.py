"""SVFG partitioning: SCC condensation → topological shards → workers.

The unit of scheduling is a **shard**: a contiguous run of SCC
components in topological order.  Shards exist so the driver can balance
work (≈ ``jobs × shards_per_worker`` of them) while workers own
*contiguous topological ranges* — worker 0 holds the topologically
earliest region of the graph, worker N−1 the latest, so cross-worker
value flow is predominantly forward (low worker id → high) and the
round-based frontier exchange approximates a staged topological sweep.

The dependency graph condensed here is the SVFG's *eventual* shape:
direct edges, indirect (object-labelled) edges, and the call edges the
auxiliary analysis says on-the-fly resolution may wire in later.
Partition quality never affects results (the solvers are confluent);
it only affects how much work crosses worker boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.datastructs.bitset import iter_bits
from repro.datastructs.graph import DiGraph
from repro.ir.instructions import CallInst
from repro.ir.values import FunctionObject
from repro.svfg.builder import SVFG


@dataclass
class Partition:
    """Node → shard → worker assignment over one SVFG."""

    num_workers: int
    #: node id -> shard index (shards are numbered in topological order).
    shard_of: List[int]
    #: node id -> topological index of its SCC component.  The sharded
    #: worklists use this as a pop priority, so each worker drains its
    #: owned region as a staged topological sweep (minimal revisits)
    #: instead of in FIFO discovery order.
    topo_of: List[int]
    #: node id -> owning worker (contiguous shard ranges per worker).
    owner_of: List[int]
    #: shard index -> node ids (each node appears in exactly one shard).
    shards: List[List[int]] = field(repr=False)
    #: worker -> (first shard, one past last shard).
    worker_shards: List[Tuple[int, int]] = field(default_factory=list)
    #: number of SCC components the dependency graph condensed into.
    num_components: int = 0

    def owned_mask(self, worker: int) -> List[bool]:
        """Per-node ownership flags for *worker* (dense, index = node id)."""
        return [owner == worker for owner in self.owner_of]

    def worker_sizes(self) -> List[int]:
        sizes = [0] * self.num_workers
        for owner in self.owner_of:
            sizes[owner] += 1
        return sizes


def _dependency_adjacency(svfg: SVFG) -> List[List[int]]:
    """The SVFG's eventual value-flow shape as int adjacency lists.

    Includes the edges ``connect_callsite`` *will* add for every call
    edge the auxiliary analysis admits (direct calls are wired at build
    time already; indirect ones are resolved on the fly) — without them
    a callee's region could be ordered before its callers and every
    parameter binding would cross a worker boundary backwards.

    Duplicate edges are not collapsed: Tarjan just re-scans them, which
    is far cheaper than set-deduping hundreds of thousands of edges.
    """
    succs: List[List[int]] = [[] for _ in range(len(svfg.nodes))]
    for src, dsts in enumerate(svfg.direct_succs):
        succs[src].extend(dsts)
    for src, table in enumerate(svfg.ind_succs):
        for dsts in table.values():
            succs[src].extend(dsts)
    # Potential OTF call wiring, over-approximated by Andersen.
    andersen = svfg.andersen
    module = svfg.module
    for inst, node in svfg.inst_node.items():
        if not isinstance(inst, CallInst):
            continue
        if inst.is_indirect():
            callees = []
            for oid in iter_bits(andersen.pts_mask(inst.callee)):
                obj = module.objects[oid]
                if isinstance(obj, FunctionObject):
                    callees.append(obj.function)
        else:
            callees = [inst.callee]
        for callee in callees:
            if callee.is_declaration:
                continue
            succs[node.id].append(svfg.inst_node[callee.entry_inst].id)
            # connect_callsite only wires exit -> call when the call uses
            # its return value; mirroring that keeps value-ignoring calls
            # out of caller/callee SCCs.
            exit_inst = callee.exit_inst()
            if exit_inst is not None and inst.dst is not None:
                succs[svfg.inst_node[exit_inst].id].append(node.id)
            for oid, ain in svfg.actual_in.get(inst, {}).items():
                fin = svfg.formal_in.get(callee, {}).get(oid)
                if fin is not None:
                    succs[ain].append(fin)
            for oid, aout in svfg.actual_out.get(inst, {}).items():
                fout = svfg.formal_out.get(callee, {}).get(oid)
                if fout is not None:
                    succs[fout].append(aout)
    return succs


def build_dependency_graph(svfg: SVFG) -> DiGraph[int]:
    """:func:`_dependency_adjacency` as a :class:`DiGraph` (test/debug
    surface; the hot partitioning path stays on the raw adjacency)."""
    graph: DiGraph[int] = DiGraph()
    for node in svfg.nodes:
        graph.add_node(node.id)
    for src, dsts in enumerate(_dependency_adjacency(svfg)):
        for dst in dsts:
            graph.add_edge(src, dst)
    return graph


def _condense_adjacency(succs: List[List[int]]
                        ) -> Tuple[List[int], List[List[int]]]:
    """Iterative Tarjan over int adjacency lists.

    Returns ``(component_of, components)`` with components in
    topological order — the array-indexed twin of
    :func:`repro.datastructs.graph.condensation`, several times faster
    on SVFG-sized graphs because it never touches dict-keyed state.
    """
    n = len(succs)
    index = [0] * n  # 0 = unvisited, else discovery index + 1
    low = [0] * n
    on_stack = bytearray(n)
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 1
    for root in range(n):
        if index[root]:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        work: List[List[int]] = [[root, 0]]
        while work:
            frame = work[-1]
            node = frame[0]
            adj = succs[node]
            i = frame[1]
            advanced = False
            while i < len(adj):
                succ = adj[i]
                i += 1
                if not index[succ]:
                    frame[1] = i
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = 1
                    work.append([succ, 0])
                    advanced = True
                    break
                if on_stack[succ] and index[succ] < low[node]:
                    low[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]
            if low[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    components.reverse()  # Tarjan yields callee-first; topological = reverse
    component_of = [0] * n
    for cid, members in enumerate(components):
        for member in members:
            component_of[member] = cid
    return component_of, components


def partition_svfg(svfg: SVFG, jobs: int,
                   shards_per_worker: int = 4) -> Partition:
    """Cut the SVFG into ``≈ jobs × shards_per_worker`` balanced shards.

    Components come out of :func:`condensation` in topological order;
    shards are contiguous component runs filled to an even node quota,
    and workers take contiguous shard ranges balanced the same way — so
    ``owner_of`` is monotone along the condensation's topological order.
    Deterministic for a given SVFG.
    """
    jobs = max(1, int(jobs))
    total = len(svfg.nodes)
    if total == 0:
        return Partition(num_workers=jobs, shard_of=[], topo_of=[],
                         owner_of=[], shards=[[] for _ in range(jobs)],
                         worker_shards=[(w, w + 1) for w in range(jobs)])
    component_of, components = _condense_adjacency(
        _dependency_adjacency(svfg))
    topo_of = component_of

    target_shards = max(jobs, jobs * max(1, int(shards_per_worker)))
    quota = max(1, -(-total // target_shards))  # ceil division
    shards: List[List[int]] = []
    current: List[int] = []
    for members in components:
        # Node-id order within a component keeps the layout reproducible
        # independently of Tarjan's internal stack order.
        current.extend(sorted(members))
        if len(current) >= quota and len(shards) < target_shards - 1:
            shards.append(current)
            current = []
    if current:
        shards.append(current)

    shard_of = [0] * total
    for sid, members in enumerate(shards):
        for node_id in members:
            shard_of[node_id] = sid

    # Contiguous shard ranges per worker, balanced by node count: cut
    # whenever the running total passes the next equal-share boundary.
    worker_shards: List[Tuple[int, int]] = []
    owner_of = [0] * total
    start = 0
    placed = 0
    for worker in range(jobs):
        end = start
        boundary = (total * (worker + 1)) // jobs
        while end < len(shards) and (placed < boundary or end == start):
            if worker < jobs - 1:
                remaining_workers = jobs - worker - 1
                remaining_shards = len(shards) - end
                if remaining_shards <= remaining_workers:
                    break  # leave at least one shard per later worker
            placed += len(shards[end])
            end += 1
        if worker == jobs - 1:  # last worker takes whatever is left
            while end < len(shards):
                placed += len(shards[end])
                end += 1
        worker_shards.append((start, end))
        for sid in range(start, end):
            for node_id in shards[sid]:
                owner_of[node_id] = worker
        start = end

    return Partition(num_workers=jobs, shard_of=shard_of, topo_of=topo_of,
                     owner_of=owner_of, shards=shards,
                     worker_shards=worker_shards,
                     num_components=len(components))
