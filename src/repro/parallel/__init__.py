"""Parallel sharded solving: SCC-condensed SVFG regions on workers.

The SVFG is condensed into its strongly-connected components
(:func:`repro.datastructs.graph.condensation`), the component DAG is cut
into contiguous topological segments ("shards"), and contiguous shard
ranges are assigned to workers.  Each worker runs the ordinary staged
solver (SFS or VSFS) restricted to the nodes it owns; information that
crosses a worker boundary travels as *frontier deltas* — dense PTRepo
set ids plus an interner delta-table, never raw points-to sets — which
the driver routes between workers in rounds until a global fixpoint.

Because the staged solvers are confluent (DESIGN.md §10), the sharded
schedule reaches the exact same least fixpoint as any serial schedule:
parallel results are bit-identical to serial ones.
"""

from repro.parallel.driver import ParallelStats, solve_parallel
from repro.parallel.partition import Partition, partition_svfg

__all__ = ["Partition", "partition_svfg", "ParallelStats", "solve_parallel"]
