"""Frontier batches: what crosses a worker boundary, and how it is encoded.

A worker's round output is one :class:`FrontierBatch` holding

- ``table``/``watermark``: the suffix of the sender's **wire repo**
  appended since its last batch (:meth:`PTRepo.export_ids`) — the
  interner delta-table.  The wire repo interns exactly the masks that
  cross worker boundaries (not the solver's whole table), and every
  points-to set referenced below is a dense id into it, so each distinct
  cross-boundary set is transmitted exactly once, ever — no matter how
  many frontier entries or rounds reference it;
- ``vars``: top-level deltas, ``var id → set id`` (broadcast);
- ``mem``: address-taken deltas — ``(node id, object id) → set id`` for
  SFS (applied by the node's owner), ``(object id, version) → set id``
  for VSFS (applied by everyone: the global table is keyed globally,
  which is what makes shard merges commutative);
- ``calls``: on-the-fly call edges as replayable ``(inst id, callee
  name)`` references (broadcast; every worker re-wires its own SVFG copy).

Receivers keep one positional mirror repo per peer
(:class:`PeerMirrors`) and resolve wire ids through it.  The codec is
independent of the solver's ``ptrepo`` ablation flag: raw sets never
travel even when deduplicated storage is switched off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.datastructs.ptrepo import PTRepo


@dataclass
class FrontierBatch:
    """One worker-round's cross-boundary output (see module docstring)."""

    sender: int
    round_no: int
    #: Bumped when the sender is revived after a kill: a revived worker
    #: starts a fresh wire repo (its dead predecessor's post-seal interning
    #: order is unknowable), and the bump tells receivers to reset their
    #: mirror instead of appending to the dead incarnation's table.
    incarnation: int = 0
    #: Wire-repo delta-table rows (hex masks) since the sender's previous
    #: batch, plus the table bounds they extend.
    table: List[str] = field(default_factory=list)
    base_watermark: int = 1  # a fresh repo holds only the empty set
    watermark: int = 1
    #: var id -> wire set id.
    vars: Dict[int, int] = field(default_factory=dict)
    #: (node id, object id) -> wire set id for SFS;
    #: (object id, version) -> wire set id for VSFS.
    mem: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Replayable call-edge references: (call inst id, callee name).
    calls: List[Tuple[int, str]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.vars or self.mem or self.calls)

    def payload_entries(self) -> int:
        return len(self.vars) + len(self.mem) + len(self.calls)


class PeerMirrors:
    """Per-peer positional mirrors of the other workers' wire repos.

    ``import_batch`` must see every batch a peer emits, in order — the
    driver broadcasts batches to all other workers precisely so each
    mirror advances in lockstep with its peer's table (re-deliveries
    after a worker revival are recognised by their stale watermark and
    skipped).
    """

    def __init__(self) -> None:
        self._mirrors: Dict[int, PTRepo] = {}
        self._incarnations: Dict[int, int] = {}

    def mirror(self, peer: int) -> PTRepo:
        repo = self._mirrors.get(peer)
        if repo is None:
            repo = self._mirrors[peer] = PTRepo()
        return repo

    def import_batch(self, batch: FrontierBatch) -> None:
        """Advance the sender's mirror by the batch's delta table."""
        mirror = self.mirror(batch.sender)
        if batch.incarnation > self._incarnations.get(batch.sender, 0):
            # The sender was revived with a fresh wire repo; drop the dead
            # incarnation's mirror (everything already applied from it
            # stays applied — joins are monotone).
            self._incarnations[batch.sender] = batch.incarnation
            mirror = self._mirrors[batch.sender] = PTRepo()
        elif batch.base_watermark < mirror.size:
            return  # re-delivered batch: its rows are already imported
        mirror.import_ids(batch.table, batch.base_watermark)

    def resolve(self, batch: FrontierBatch, entry: int) -> int:
        """The mask a batch entry denotes, via the sender's mirror."""
        return self._mirrors[batch.sender].mask(entry)

    # ------------------------------------------------- kill-and-resume seals

    def seal(self) -> Dict[str, object]:
        return {
            "mirrors": {str(peer): repo.snapshot()
                        for peer, repo in self._mirrors.items()},
            "incarnations": {str(peer): inc
                             for peer, inc in self._incarnations.items()},
        }

    def restore(self, payload: Dict[str, object]) -> None:
        self._mirrors = {int(peer): PTRepo.from_snapshot(snap)
                         for peer, snap in payload["mirrors"].items()}
        self._incarnations = {int(peer): int(inc)
                              for peer, inc in payload["incarnations"].items()}


class FrontierEncoder:
    """Builds a worker's outgoing batches against its private wire repo."""

    def __init__(self, sender: int, incarnation: int = 0) -> None:
        self.sender = sender
        self.incarnation = incarnation
        self.repo = PTRepo()
        self.watermark = self.repo.size

    def encode(self, round_no: int, var_deltas: Dict[int, int],
               mem_deltas: Dict[Tuple[int, int], int],
               calls: List[Tuple[int, str]]) -> FrontierBatch:
        repo = self.repo
        batch = FrontierBatch(sender=self.sender, round_no=round_no,
                              incarnation=self.incarnation)
        batch.vars = {vid: repo.intern(mask)
                      for vid, mask in var_deltas.items()}
        batch.mem = {key: repo.intern(mask)
                     for key, mask in mem_deltas.items()}
        batch.calls = list(calls)
        batch.base_watermark = self.watermark
        batch.table, self.watermark = repo.export_ids(self.watermark)
        batch.watermark = self.watermark
        return batch
