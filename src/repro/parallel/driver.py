"""The parallel driver: staged rounds of sharded solving to one fixpoint.

The driver owns the round loop.  Each round it delivers the frontier
batches queued for every *active* worker, lets each drain its owned
region to local quiescence, and routes the resulting outboxes to the
other workers' queues; the solve is globally done when every worker is
active, every queue is empty, and the last round produced no output.

Workers are **activated in topological stagger**: worker ``w`` (owning
the ``w``-th contiguous topological segment of the SCC condensation)
first runs in round ``w``.  Cross-worker value flow is predominantly
forward (the partition orders workers along the condensation), so by
the time a downstream worker first drains, its upstream inputs are at —
or near — their final values and it processes them once instead of
re-propagating every partial result.  That work reduction, not raw
concurrency, is what makes the staged sweep faster than a serial solve
even on a single core; on many cores the fork workers overlap on top of
it.  Correctness never depends on the stagger: the solvers are confluent
(DESIGN.md §10), so any delivery order reaches the identical least
fixpoint, bit for bit.

Straggler handling: the driver can seal each worker's state at round
boundaries (``seal_every``); if a worker dies — or is killed by the
``kill_after_round`` fault hook — it is revived from its last seal (or
from scratch) with every batch delivered since then re-delivered.
Re-application is idempotent (joins are monotone) and the revived
worker's fresh wire repo is announced by an incarnation bump, so peers
reset their mirrors instead of resolving against a dead table.

Mask sharing: fork start hands each child the parent's heap by
copy-on-write, but every mask a child *interns* lands on freshly
written (hence unshared) pages — across ``jobs`` workers the same
points-to sets were historically duplicated per child.  When the
driver-side dedup engine carries a memory-mapped arena
(:class:`~repro.datastructs.arena.PTArena`), workers attach the arena
file read-shared instead: pre-solved masks live on one set of physical
pages mapped into every child, and only genuinely new masks of the
current run pay the COW churn.  After the merge the driver interns the
run's unique masks and flushes them to the arena, so the next run (or
the warm ladder rung above it) attaches them for free.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.analysis.callgraph import CallGraph
from repro.datastructs.bitset import count_bits
from repro.errors import AnalysisError, InjectedFault, SolverError, WorkerCrash
from repro.parallel.partition import Partition, partition_svfg
from repro.parallel.worker import (
    HUNG,
    SHARDED_SOLVERS,
    ForkedWorker,
    InlineWorker,
    WorkerSpec,
    raise_failure,
)
from repro.runtime.resilience import (
    DEFAULT_HEARTBEAT_SECONDS,
    DEFAULT_WORKER_FAILURE_BUDGET,
)
from repro.solvers.base import FlowSensitiveResult, SolverStats
from repro.store.codec import call_sites_by_id, resolve_call_edge


@dataclass
class ParallelStats:
    """What the parallel run did, for reports and bench JSON."""

    jobs: int
    mode: str  # "fork" or "inline"
    shards: int
    components: int
    rounds: int = 0
    revivals: int = 0
    #: Watchdog accounting: incidents charged against worker failure
    #: budgets (deaths, hangs, lost frontier exchanges, failed spawns)
    #: and how many of those were heartbeat timeouts specifically.
    worker_failures: int = 0
    heartbeat_timeouts: int = 0
    frontier_batches: int = 0
    frontier_entries: int = 0
    frontier_table_rows: int = 0
    wall_s: float = 0.0
    #: Per-worker summary: owned nodes, pops, solve seconds, incarnation.
    workers: List[Dict[str, Any]] = field(default_factory=list)
    #: Shared-arena attachment summary (None when no arena was in play):
    #: path, record count/bytes, masks appended post-merge, and how many
    #: workers actually attached it read-shared.
    arena: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "mode": self.mode,
            "shards": self.shards,
            "components": self.components,
            "rounds": self.rounds,
            "revivals": self.revivals,
            "worker_failures": self.worker_failures,
            "heartbeat_timeouts": self.heartbeat_timeouts,
            "frontier_batches": self.frontier_batches,
            "frontier_entries": self.frontier_entries,
            "frontier_table_rows": self.frontier_table_rows,
            "wall_s": round(self.wall_s, 6),
            "workers": self.workers,
            "arena": self.arena,
        }


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _make_worker(spec: WorkerSpec, mode: str, mp_ctx):
    if mode == "fork":
        return ForkedWorker(spec, mp_ctx)
    return InlineWorker(spec)


def solve_parallel(svfg, level: str = "sfs", jobs: int = 2, *,
                   delta: bool = True, ptrepo: bool = True,
                   budget=None, faults=None, versioning=None,
                   shards_per_worker: int = 4, mode: Optional[str] = None,
                   seal_every: int = 0, kill_after_round: Optional[int] = None,
                   kill_worker: int = 0, mde=None,
                   mde_batch: bool = True,
                   heartbeat_seconds: Optional[float] = None,
                   max_worker_failures: int = DEFAULT_WORKER_FAILURE_BUDGET,
                   hang_after_round: Optional[int] = None,
                   hang_worker: int = 0) -> FlowSensitiveResult:
    """Solve *svfg* at *level* ("sfs" or "vsfs") on *jobs* sharded workers.

    Returns a :class:`FlowSensitiveResult` bit-identical to the serial
    solver's, with a :class:`ParallelStats` attached as ``.parallel``.

    ``budget``/``faults`` are applied **per worker** (each worker runs
    its own meter over the same limits).  ``mode`` forces the transport
    ("fork"/"inline"; default auto).  ``seal_every`` is the round cadence
    of kill-and-resume seals (0 disables sealing; revival then replays
    from scratch).  ``kill_after_round`` hard-kills ``kill_worker`` once
    after that many completed rounds — the straggler-recovery fault hook
    the integration tests drive.

    **Watchdog** (DESIGN.md §12): the driver waits at most
    ``heartbeat_seconds`` for a forked worker's round reply (default
    :data:`~repro.runtime.resilience.DEFAULT_HEARTBEAT_SECONDS`; inline
    workers cannot hang independently, so no timeout applies).  A dead or
    hung worker — or one whose frontier exchange is lost, including via
    the injected ``worker_spawn``/``worker_heartbeat``/``frontier_send``/
    ``frontier_recv`` fault points of *faults* — is killed and revived
    from its last seal, and the incident is charged against that slot's
    failure budget (``max_worker_failures``).  A slot that spends its
    budget aborts the run with a typed
    :class:`~repro.errors.WorkerCrash`, which the degradation ladder
    collapses onto the bit-identical serial rung.  ``hang_after_round``/
    ``hang_worker`` is the watchdog's test hook: the named worker's first
    incarnation goes silent after that many rounds (fork only).

    ``mde`` is the driver-side dedup engine
    (:class:`~repro.datastructs.mde.MdeEngine`).  When it carries an
    arena, every worker attaches the arena file read-shared (mmap), so
    the masks a previous run interned reach the children through shared
    physical pages instead of per-child copies; after the merge the
    driver interns the run's global unique masks back into the engine so
    the owner can flush them for the next run.  ``mde_batch`` toggles
    the in-kernel propagation-batch memo on every worker.
    """
    begun = time.perf_counter()
    if level not in SHARDED_SOLVERS:
        raise AnalysisError(
            f"parallel solving supports {sorted(SHARDED_SOLVERS)}, "
            f"not {level!r}")
    partition = partition_svfg(svfg, jobs, shards_per_worker)
    jobs = partition.num_workers
    module = svfg.module

    pre_wall = 0.0
    ver_snapshot = None
    if level == "vsfs":
        # Meld versioning is computed once here and restored per worker —
        # the pre-analysis is deterministic, so sharing it is free, and
        # recomputing it per worker would multiply its cost by ``jobs``.
        t0 = time.perf_counter()
        if versioning is None:
            from repro.core.versioning import version_objects

            versioning = version_objects(svfg)
        ver_snapshot = versioning.snapshot()
        pre_wall = time.perf_counter() - t0

    if mode is None:
        # Fork buys true overlap only with >1 CPU; on a single core the
        # stagger's work reduction is the entire win and the in-process
        # transport avoids fork's copy-on-write page churn.
        multicore = (os.cpu_count() or 1) > 1
        mode = "fork" if fork_available() and multicore else "inline"
    mp_ctx = multiprocessing.get_context("fork") if mode == "fork" else None

    if heartbeat_seconds is None and mode == "fork":
        heartbeat_seconds = DEFAULT_HEARTBEAT_SECONDS
    if mode != "fork":
        heartbeat_seconds = None  # inline workers cannot hang independently

    arena = getattr(mde, "arena", None)
    arena_path = arena.path if arena is not None else None
    specs = [
        WorkerSpec(worker_id=w, level=level, svfg=svfg, partition=partition,
                   delta=delta, ptrepo=ptrepo, mde_batch=mde_batch,
                   arena_path=arena_path,
                   versioning_snapshot=ver_snapshot, budget=budget,
                   faults=faults, share_svfg=(mode == "fork"),
                   hang_after_round=(hang_after_round
                                     if w == hang_worker else None))
        for w in range(jobs)
    ]
    pending: List[List[Any]] = [[] for _ in range(jobs)]  # undelivered batches
    retained: List[List[Any]] = [[] for _ in range(jobs)]  # since last seal
    seals: List[Optional[Dict[str, Any]]] = [None] * jobs
    failures = [0] * jobs  # watchdog incidents charged per worker slot
    pstats = ParallelStats(jobs=jobs, mode=mode,
                           shards=len(partition.shards),
                           components=partition.num_components)
    workers: List[Any] = []

    def abort() -> None:
        for worker in workers:
            try:
                worker.kill()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass

    def fail(kind: str, info: Dict[str, Any]) -> None:
        abort()
        raise_failure(kind, info, stage=level)

    def charge(w: int, incident: str) -> None:
        """Charge one watchdog incident; WorkerCrash when the budget is
        spent (the ladder then collapses onto the serial rung)."""
        failures[w] += 1
        pstats.worker_failures += 1
        if failures[w] >= max_worker_failures:
            abort()
            raise WorkerCrash(
                f"parallel worker {w} spent its failure budget "
                f"({failures[w]}/{max_worker_failures}; last incident: "
                f"{incident}) — collapsing onto the serial ladder",
                worker=w, failures=failures[w], incident=incident)

    def spawn(w: int) -> Any:
        """Build worker *w*, respawning on injected spawn faults (each
        failed spawn is charged against the slot's budget)."""
        while True:
            try:
                if faults is not None:
                    faults.fire("worker_spawn", stage=level)
                return _make_worker(specs[w], mode, mp_ctx)
            except (InjectedFault, OSError):
                charge(w, "spawn")

    workers.extend(spawn(w) for w in range(jobs))

    def revive(w: int) -> None:
        specs[w] = replace(specs[w], incarnation=specs[w].incarnation + 1,
                           restore=seals[w])
        workers[w] = spawn(w)
        # Re-deliver everything the dead worker saw after its seal; the
        # joins are idempotent, and the mirrors inside the seal line up
        # with each batch's table watermarks.
        pending[w] = retained[w] + pending[w]
        retained[w] = []
        pstats.revivals += 1

    def await_reply(w: int, expect: str, dead: List[int],
                    incident_charged: bool = True) -> Optional[Any]:
        """Watchdog wait for worker *w*'s reply.

        Returns the reply payload tuple, or ``None`` after marking the
        worker dead/hung (killed; appended to *dead* for revival).  The
        ``worker_heartbeat`` and ``frontier_recv`` fault points fire
        here: a heartbeat fault makes the worker count as hung, a recv
        fault loses the (already received) reply.
        """
        hung = False
        if faults is not None:
            try:
                faults.fire("worker_heartbeat", stage=level)
            except InjectedFault:
                hung = True
        reply = HUNG if hung else workers[w].reply(timeout=heartbeat_seconds)
        if reply is HUNG:
            pstats.heartbeat_timeouts += 1
            workers[w].kill()
            dead.append(w)
            if incident_charged:
                charge(w, "hung")
            return None
        if reply is None:
            dead.append(w)
            if incident_charged:
                charge(w, "died")
            return None
        if faults is not None:
            try:
                faults.fire("frontier_recv", stage=level)
            except InjectedFault:
                # The reply is lost; the worker's post-round state is
                # unknowable, so treat the slot like a straggler.
                workers[w].kill()
                dead.append(w)
                charge(w, "frontier-recv")
                return None
        if reply[0] != expect:
            fail(reply[0], reply[1])
        return reply

    def deliver(w: int) -> bool:
        """Move worker *w*'s pending batches into its inbox and send the
        round request; False when the delivery was lost (worker killed,
        charged, left for revival)."""
        inbox, pending[w] = pending[w], []
        retained[w].extend(inbox)
        try:
            if faults is not None:
                faults.fire("frontier_send", stage=level)
        except InjectedFault:
            workers[w].kill()
            charge(w, "frontier-send")
            return False
        workers[w].request(("round", inbox))
        return True

    killed = False
    fresh: set = set()  # revived workers that must drain before we stop
    round_idx = 0
    while True:
        run_set = [w for w in range(jobs) if w <= round_idx]
        dead: List[int] = []
        sent: List[int] = []
        for w in run_set:
            if deliver(w):
                sent.append(w)
            else:
                dead.append(w)
        replies: Dict[int, Any] = {}
        for w in sent:
            reply = await_reply(w, "ok", dead)
            if reply is None:
                continue
            replies[w] = reply
            fresh.discard(w)
        pstats.rounds += 1

        for w, reply in replies.items():
            batch = reply[1]
            if batch.is_empty():
                continue
            pstats.frontier_batches += 1
            pstats.frontier_entries += batch.payload_entries()
            pstats.frontier_table_rows += len(batch.table)
            for peer in range(jobs):
                if peer != w:
                    pending[peer].append(batch)

        if seal_every and pstats.rounds % seal_every == 0:
            sealing = [w for w in replies if w not in dead]
            for w in sealing:
                workers[w].request(("seal",))
            for w in sealing:
                reply = await_reply(w, "seal", dead)
                if reply is None:
                    continue
                seals[w] = reply[1]
                retained[w] = []

        if (kill_after_round is not None and not killed
                and pstats.rounds >= kill_after_round):
            killed = True
            workers[kill_worker].kill()
            if kill_worker not in dead:
                dead.append(kill_worker)

        for w in sorted(set(dead)):
            revive(w)
            fresh.add(w)

        all_active = round_idx >= jobs - 1
        if all_active and not fresh and not any(pending):
            break
        round_idx += 1

    # ---------------------------------------------------------- finalize
    # A worker lost *here* is still recoverable: the global fixpoint is
    # already reached, so a revived incarnation replays its retained
    # batches to local quiescence — its outboxes are droppable (peers
    # incorporated the dead incarnation's sends before the loop ended) —
    # and then finalizes like any other worker.
    def finalize(w: int) -> Dict[str, Any]:
        while True:
            dead: List[int] = []
            reply = await_reply(w, "result", dead)
            if reply is not None:
                return reply[1]
            revive(w)
            quiesced = True
            while pending[w]:
                if not deliver(w):
                    quiesced = False
                    break
                if await_reply(w, "ok", dead) is None:
                    quiesced = False
                    break
            if not quiesced:
                revive(w)
                continue
            workers[w].request(("finish",))

    for worker in workers:
        worker.request(("finish",))
    payloads: List[Dict[str, Any]] = [finalize(w) for w in range(jobs)]
    for worker in workers:
        worker.stop()

    # ------------------------------------------------------------- merge
    # Var broadcasts make every worker converge on the same top-level
    # table, so the OR below is expected to be a no-op past worker 0 —
    # but OR is what the shard merge *means*, so compute it that way.
    pt = [0] * len(module.variables)
    for payload in payloads:
        for vid, text in enumerate(payload["pt"]):
            pt[vid] |= int(text, 16)

    # Deterministic global call graph: the union of the workers' edge
    # sets, replayed in sorted order (they converge to the same set; the
    # union is, again, what the merge means).
    edges = sorted({(inst_id, name)
                    for payload in payloads
                    for inst_id, name in payload["call_edges"]})
    callgraph = CallGraph(module)
    sites = call_sites_by_id(module)
    for inst_id, name in edges:
        call, callee = resolve_call_edge(module, sites, inst_id, name)
        callgraph.add_edge(call, callee)

    parts = [SolverStats(**payload["stats"]) for payload in payloads]
    stats = SolverStats.merge(parts)
    stats.analysis = level
    # One logical execution: revived workers' sealed pops were performed
    # by this run's dead incarnations, not by a previous run.
    stats.resumed_steps = 0
    stats.pre_time += pre_wall  # driver-side shared versioning
    stats.top_level_bits = sum(count_bits(mask) for mask in pt)
    stats.callgraph_edges = callgraph.num_edges()
    # Exact global dedup count over the union of the workers' stored sets
    # (merge() only sums per-worker uniques, an upper bound).
    unique = set()
    for payload in payloads:
        unique.update(int(text, 16) for text in payload["unique_masks"])
    stats.unique_ptsets = len(unique)
    stats.unique_ptset_bits = sum(count_bits(mask) for mask in unique)
    if level == "vsfs":
        # The global (object, version) table is replicated per worker and
        # identical everywhere at the fixpoint; summing would count it
        # ``jobs`` times.
        stats.stored_ptsets = max(p.stored_ptsets for p in parts)
        stats.stored_ptset_bits = max(p.stored_ptset_bits for p in parts)

    if mde is not None:
        # Fold the run's global unique masks back into the driver-side
        # interner so the arena owner can flush them for the next run;
        # sorted order keeps the arena layout deterministic.
        for mask in sorted(unique):
            mde.repo.intern(mask)
        appended = mde.flush()
        if arena is not None:
            pstats.arena = {
                "path": arena.path,
                "masks": len(arena),
                "resident_bytes": arena.resident_bytes,
                "appended": appended,
                "preloaded": mde.arena_preloaded,
                "workers_attached": sum(
                    1 for p in parts if p.arena_masks > 0),
            }

    sizes = partition.worker_sizes()
    pstats.workers = [
        {
            "worker": w,
            "nodes": sizes[w],
            "pops": parts[w].nodes_processed,
            "solve_s": round(parts[w].solve_time, 6),
            "pre_s": round(parts[w].pre_time, 6),
            "incarnation": specs[w].incarnation,
            "batch_memo_hits": parts[w].batch_memo_hits,
        }
        for w in range(jobs)
    ]
    pstats.wall_s = time.perf_counter() - begun

    result = FlowSensitiveResult(module, pt, callgraph, stats)
    result.parallel = pstats
    return result
