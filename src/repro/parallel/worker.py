"""Worker plumbing: one sharded solver per worker, forked or inline.

The worker side is one small state machine (:class:`WorkerSession`):
apply the round's incoming frontier batches, drain the owned region to
local quiescence, encode the outbox, and — on request — seal the state
for kill-and-resume or finalize the shard's result.

Two transports run it:

- :class:`ForkedWorker` — a ``fork``-started child process driving the
  session over a :class:`multiprocessing` pipe.  Fork start passes the
  (large, shared) SVFG and partition to the child by copy-on-write
  inheritance; nothing heavyweight is ever pickled except the frontier
  batches themselves, which are small by design.
- :class:`InlineWorker` — the same session in-process, used where fork
  is unavailable and by tests that want single-process determinism.

Both expose the same request/reply surface to the driver, so the round
loop is transport-agnostic.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import BudgetExceeded, InjectedFault
from repro.parallel.frontier import FrontierBatch, FrontierEncoder, PeerMirrors
from repro.parallel.partition import Partition
from repro.parallel.shard import ShardedSFS, ShardedVSFS
from repro.store.codec import snapshot_call_edges

#: Analysis level -> sharded solver class.
SHARDED_SOLVERS = {"sfs": ShardedSFS, "vsfs": ShardedVSFS}


class _Hung:
    """Sentinel reply: the worker missed its heartbeat (still alive as far
    as the pipe knows, but not answering) — distinct from ``None`` (dead)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<HUNG>"


#: Returned by ``reply(timeout=...)`` when the deadline passed without an
#: answer; the driver's watchdog treats it as a hung worker.
HUNG = _Hung()


@dataclass
class WorkerSpec:
    """Everything needed to (re)build one worker's solver.

    Under fork start the heavyweight references (``svfg``, ``partition``)
    reach the child by memory inheritance; the child copies the SVFG
    before mutating it, so inline workers sharing one process are just as
    isolated.
    """

    worker_id: int
    level: str
    svfg: Any
    partition: Partition
    delta: bool = True
    ptrepo: bool = True
    #: Propagation-batch memoisation inside each worker's kernel.
    mde_batch: bool = True
    #: Shared mask arena to attach read-only (mmap): under fork the
    #: mapped pages are physically shared with the parent and siblings,
    #: so pre-solved masks do not get copy-on-write duplicated per child.
    arena_path: Optional[str] = None
    #: Shared meld-versioning state (VSFS): computed once by the driver,
    #: restored per worker — recomputing it per worker would multiply the
    #: pre-analysis cost by the worker count.
    versioning_snapshot: Optional[Dict[str, Any]] = None
    budget: Any = None
    faults: Any = None
    #: Bumped on every revival of this worker slot (see FrontierBatch).
    incarnation: int = 0
    #: Watchdog test hook (fork transport only): after completing this
    #: many rounds, the *first* incarnation stops answering instead of
    #: sending its round reply — the driver's heartbeat timeout must
    #: detect the hang and kill-and-revive.  Revived incarnations answer
    #: normally, so the run completes.
    hang_after_round: Optional[int] = None
    #: Seal payload to restore from (None = fresh start).
    restore: Optional[Dict[str, Any]] = None
    #: True under fork start: the child owns its copy-on-write address
    #: space, so it can mutate the inherited SVFG directly instead of
    #: paying for an in-process copy.
    share_svfg: bool = False


def build_sharded_solver(spec: WorkerSpec):
    """Construct the shard-local solver for *spec* (fresh, unrestored)."""
    cls = SHARDED_SOLVERS.get(spec.level)
    if cls is None:
        raise ValueError(f"no sharded solver for analysis level {spec.level!r}")
    svfg = spec.svfg if spec.share_svfg else spec.svfg.copy(cow=True)
    kwargs: Dict[str, Any] = {
        "delta": spec.delta,
        "ptrepo": spec.ptrepo,
        "mde_batch": spec.mde_batch,
        "meter": spec.budget.meter() if spec.budget is not None else None,
        "faults": spec.faults,
    }
    if spec.ptrepo:
        from repro.datastructs.mde import MdeEngine

        # Best-effort, read-only: a worker must never quarantine or
        # rewrite the parent-owned arena, and a missing/corrupt file just
        # means this worker warms up from an empty interner.
        kwargs["mde"] = MdeEngine.open(spec.arena_path, attach_only=True)
    if spec.level == "vsfs" and spec.versioning_snapshot is not None:
        from repro.core.versioning import ObjectVersioning

        kwargs["versioning"] = ObjectVersioning(svfg).restore(
            spec.versioning_snapshot)
    return cls(svfg, spec.partition, spec.worker_id, **kwargs)


class WorkerSession:
    """The worker-side state machine (transport-independent)."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.solver = build_sharded_solver(spec)
        self.encoder = FrontierEncoder(spec.worker_id, spec.incarnation)
        self.mirrors = PeerMirrors()
        self.round_no = 0
        if spec.restore is not None:
            self._restore(spec.restore)
        else:
            self.solver.prepare_round_zero()

    def _restore(self, payload: Dict[str, Any]) -> None:
        """Rebuild from a round seal.

        The encoder deliberately stays fresh (the incarnation bump told
        the peers to reset their mirrors): the dead predecessor's
        post-seal interning order is unknowable, so continuing its wire
        table could make mirror positions lie.  Everything the restored
        state has not yet exported (``_export_sent`` / table contents are
        part of the seal) will be re-encoded and re-sent; peers' joins
        are idempotent.
        """
        solver = self.solver
        solver.restore_state(payload["solver"], int(payload["step"]))
        solver.restore_shard_extra(payload.get("shard", {}))
        solver.after_restore()
        self.mirrors.restore(payload["mirrors"])
        solver.stats.solve_time = float(payload.get("solve_time", 0.0))
        self.round_no = int(payload.get("round", 0))

    # ------------------------------------------------------------- protocol

    def run_round(self, batches: List[FrontierBatch]
                  ) -> Tuple[FrontierBatch, Dict[str, Any]]:
        solver = self.solver
        solver.apply_frontier(batches, self.mirrors)
        pops = solver.solve_round()
        var_deltas, mem_deltas, calls = solver.collect_outbox()
        batch = self.encoder.encode(self.round_no, var_deltas, mem_deltas,
                                    calls)
        info = {
            "pops": pops,
            "total_pops": solver.stats.nodes_processed,
            "solve_s": solver.stats.solve_time,
        }
        self.round_no += 1
        return batch, info

    def seal(self) -> Dict[str, Any]:
        """Snapshot for kill-and-resume (taken at a round boundary, so
        the worklist inside ``snapshot_state`` is the quiescent one)."""
        solver = self.solver
        return {
            "solver": solver.snapshot_state(),
            "step": solver.stats.nodes_processed,
            "shard": solver.shard_seal_extra(),
            "mirrors": self.mirrors.seal(),
            "solve_time": solver.stats.solve_time,
            "round": self.round_no,
        }

    def finish(self) -> Dict[str, Any]:
        """Final shard result: top-level table, call edges, stats, and
        the distinct stored masks (for the driver's global dedup count)."""
        solver = self.solver
        solver.finalize()
        masks = set(solver.stored_masks())
        return {
            "pt": [format(mask, "x") for mask in solver.pt],
            "call_edges": snapshot_call_edges(solver.callgraph),
            "stats": asdict(solver.stats),
            "unique_masks": [format(mask, "x") for mask in sorted(masks)],
        }


def _failure_reply(exc: BaseException) -> Tuple[str, Dict[str, Any]]:
    if isinstance(exc, BudgetExceeded):
        return ("budget", {
            "message": str(exc), "resource": exc.resource,
            "limit": exc.limit, "used": exc.used,
        })
    if isinstance(exc, InjectedFault):
        return ("fault", {
            "point": exc.point, "stage": exc.stage, "hit": exc.hit,
        })
    return ("error", {"message": f"{type(exc).__name__}: {exc}"})


def raise_failure(kind: str, info: Dict[str, Any], *,
                  stage: str = "") -> None:
    """Re-raise a worker's failure reply as its typed exception."""
    if kind == "budget":
        exc = BudgetExceeded(info["message"], resource=info["resource"],
                             limit=info["limit"], used=info["used"])
        if stage:
            exc.attach(stage=stage)
        raise exc
    if kind == "fault":
        raise InjectedFault(point=info["point"], stage=info["stage"],
                            hit=info["hit"])
    from repro.errors import SolverError

    raise SolverError(f"parallel worker failed: {info['message']}")


def _child_main(conn, spec: WorkerSpec) -> None:
    """Forked child entry point: serve the session over the pipe."""
    try:
        session = WorkerSession(spec)
    except BaseException as exc:  # noqa: BLE001 - must cross the pipe
        conn.send(_failure_reply(exc))
        conn.close()
        return
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return  # driver went away
        cmd = msg[0]
        if cmd == "stop":
            conn.close()
            return
        try:
            if cmd == "round":
                batch, info = session.run_round(msg[1])
                if (spec.hang_after_round is not None
                        and spec.incarnation == 0
                        and session.round_no > spec.hang_after_round):
                    # Simulate a hung worker: the round's work happened
                    # but the reply never comes.  Sleep rather than spin
                    # until the driver's watchdog kills this process.
                    time.sleep(3600)
                conn.send(("ok", batch, info))
            elif cmd == "seal":
                conn.send(("seal", session.seal()))
            elif cmd == "finish":
                conn.send(("result", session.finish()))
            else:
                conn.send(("error",
                           {"message": f"unknown command {cmd!r}"}))
        except BaseException as exc:  # noqa: BLE001 - must cross the pipe
            conn.send(_failure_reply(exc))


class ForkedWorker:
    """Parent-side handle over a fork-started worker process."""

    mode = "fork"

    def __init__(self, spec: WorkerSpec, mp_context):
        self.spec = spec
        self.worker_id = spec.worker_id
        parent_conn, child_conn = mp_context.Pipe()
        self.conn = parent_conn
        self.process = mp_context.Process(
            target=_child_main, args=(child_conn, spec), daemon=True)
        self.process.start()
        child_conn.close()

    def request(self, msg: Tuple) -> None:
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError):
            # The child is gone; the next reply() returns None and the
            # driver's watchdog takes it from there.
            pass

    def reply(self, timeout: Optional[float] = None) -> Any:
        """The next reply; ``None`` if the worker died, :data:`HUNG` if
        *timeout* seconds passed without one (straggler/kill revival is
        the driver's call)."""
        try:
            if timeout is not None and not self.conn.poll(timeout):
                return HUNG
            return self.conn.recv()
        except (EOFError, OSError):
            return None

    def kill(self) -> None:
        """Hard-kill the worker (fault injection / straggler removal)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join()
        self.conn.close()

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.conn.close()


class InlineWorker:
    """The same protocol, served in-process (fork-free fallback and the
    deterministic single-process mode the tests lean on)."""

    mode = "inline"

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.worker_id = spec.worker_id
        self._reply: Optional[Tuple] = None
        self._dead = False
        try:
            self.session: Optional[WorkerSession] = WorkerSession(spec)
        except BaseException as exc:  # noqa: BLE001 - surfaced on first reply
            self.session = None
            self._reply = _failure_reply(exc)

    def request(self, msg: Tuple) -> None:
        if self._reply is not None or self._dead:
            return  # construction failure pending, or killed
        try:
            cmd = msg[0]
            if cmd == "round":
                batch, info = self.session.run_round(msg[1])
                self._reply = ("ok", batch, info)
            elif cmd == "seal":
                self._reply = ("seal", self.session.seal())
            elif cmd == "finish":
                self._reply = ("result", self.session.finish())
            elif cmd == "stop":
                self._reply = None
            else:
                self._reply = ("error",
                               {"message": f"unknown command {msg[0]!r}"})
        except BaseException as exc:  # noqa: BLE001 - mirror the pipe path
            self._reply = _failure_reply(exc)

    def reply(self, timeout: Optional[float] = None) -> Any:
        # An in-process worker cannot hang independently of the driver,
        # so *timeout* is accepted for protocol parity and ignored.
        if self._dead:
            return None
        reply, self._reply = self._reply, None
        return reply

    def kill(self) -> None:
        self._dead = True
        self.session = None
        self._reply = None

    def stop(self) -> None:
        self.session = None
