"""Shard-local solvers: the staged kernels restricted to an owned region.

:class:`ShardedSFS` / :class:`ShardedVSFS` are the ordinary staged
solvers with three changes:

- the worklist drops pushes of nodes the worker does not own (transfer
  functions only ever run on owned nodes);
- information leaving the owned region is captured in per-round
  **outboxes** instead of being applied locally — top-level growth as
  var deltas, address-taken growth as memory deltas, OTF call-graph
  discoveries as replayable edge references;
- incoming frontier deltas are applied through ``apply_*`` entry points
  that suppress outbox recording (the sender already broadcast them).

Confluence (DESIGN.md §10) is what makes this sound *and* exact: every
transfer function's contribution is bounded by its value at the final
fixpoint, so the sharded schedule — which is just another fair schedule
— reaches the identical least fixpoint, bit for bit.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Tuple

from repro.core.vsfs import VSFSAnalysis
from repro.datastructs.worklist import DeltaWorkList, FIFOWorkList
from repro.ir.function import Function
from repro.ir.instructions import CallInst
from repro.ir.values import Variable
from repro.parallel.partition import Partition
from repro.solvers.sfs import SFSAnalysis
from repro.svfg.builder import SVFG
from repro.svfg.nodes import InstNode


class OwnedDeltaWorkList(DeltaWorkList):
    """Delta worklist over an owned region, popped shard-staged.

    Drops pushes of nodes the worker does not own, and pops from the
    topologically earliest non-empty *shard* (shards are contiguous
    topological segments of the SCC condensation), FIFO within a shard.
    The staged drain is the sharded solvers' main work saver: each local
    fixpoint becomes a topological sweep where downstream shards run
    after their upstream inputs settle — while FIFO order inside a shard
    keeps SCC cycles draining round-robin exactly like the serial
    kernel, so deltas batch up instead of triggering eager tiny
    revisits.  ``_items`` is one deque per shard (the shard count is
    small, so min-scans are trivial) and the per-queue-operation cost
    stays at the parent deque's; the dirty/full bookkeeping is inherited
    unchanged.
    """

    __slots__ = ("_owned", "_shard_of", "_buckets", "_min", "_size")

    def __init__(self, owned: List[bool], shard_of: List[int],
                 num_shards: int) -> None:
        super().__init__()
        self._owned = owned
        self._shard_of = shard_of
        self._buckets: List[Deque[int]] = [deque()
                                           for _ in range(num_shards)]
        self._min = num_shards
        self._size = 0

    def push(self, node: int) -> bool:
        if not self._owned[node]:
            return False
        self._full.add(node)
        self._dirty.pop(node, None)
        member = self._member
        if node in member:
            return False
        member.add(node)
        sid = self._shard_of[node]
        self._buckets[sid].append(node)
        self._size += 1
        if sid < self._min:
            self._min = sid
        return True

    def push_delta(self, node: int, oid: int, delta: int) -> bool:
        if not self._owned[node]:
            return False
        if node not in self._full:
            per_obj = self._dirty.get(node)
            if per_obj is None:
                self._dirty[node] = {oid: delta}
            else:
                per_obj[oid] = per_obj.get(oid, 0) | delta
        member = self._member
        if node in member:
            return False
        member.add(node)
        sid = self._shard_of[node]
        self._buckets[sid].append(node)
        self._size += 1
        if sid < self._min:
            self._min = sid
        return True

    def _next(self) -> int:
        buckets = self._buckets
        sid = self._min
        while not buckets[sid]:
            sid += 1
        self._min = sid
        self._size -= 1
        return buckets[sid].popleft()

    def pop(self) -> int:
        node = self._next()
        self._member.discard(node)
        return node

    def pop_with_dirty(self) -> "Tuple[int, Dict[int, int] | None]":
        node = self._next()
        self._member.discard(node)
        full = self._full
        if node in full:
            full.discard(node)
            return node, None
        return node, self._dirty.pop(node, None)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # ----------------------------------------------------------- persistence

    def snapshot(self) -> dict:
        state = super().snapshot()
        state["items"] = [node for bucket in self._buckets
                          for node in bucket]
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        shard_of = self._shard_of
        buckets = self._buckets
        for node in state["items"]:
            sid = shard_of[node]
            buckets[sid].append(node)
            if sid < self._min:
                self._min = sid
        self._size = len(state["items"])
        self._items = deque()  # unused; parent restore filled it


class OwnedFIFOWorkList(FIFOWorkList):
    """Eager-mode sibling of :class:`OwnedDeltaWorkList`: same owned
    filter and shard-staged pop order (FIFO within a shard), no dirty
    tracking."""

    __slots__ = ("_owned", "_shard_of", "_buckets", "_min", "_size")

    def __init__(self, owned: List[bool], shard_of: List[int],
                 num_shards: int) -> None:
        super().__init__()
        self._owned = owned
        self._shard_of = shard_of
        self._buckets: List[Deque[int]] = [deque()
                                           for _ in range(num_shards)]
        self._min = num_shards
        self._size = 0

    def push(self, node: int) -> bool:
        if not self._owned[node]:
            return False
        member = self._member
        if node in member:
            return False
        member.add(node)
        sid = self._shard_of[node]
        self._buckets[sid].append(node)
        self._size += 1
        if sid < self._min:
            self._min = sid
        return True

    def pop(self) -> int:
        buckets = self._buckets
        sid = self._min
        while not buckets[sid]:
            sid += 1
        self._min = sid
        self._size -= 1
        node = buckets[sid].popleft()
        self._member.discard(node)
        return node

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def snapshot(self) -> dict:
        return {"items": [node for bucket in self._buckets
                          for node in bucket]}

    def restore(self, state: dict) -> None:
        shard_of = self._shard_of
        buckets = self._buckets
        for node in state["items"]:
            sid = shard_of[node]
            buckets[sid].append(node)
            if sid < self._min:
                self._min = sid
        self._size = len(state["items"])
        self._member = set(state["items"])


class ShardedSolverMixin:
    """Owned-region filtering + frontier outboxes over a staged solver.

    Must precede the solver class in the MRO::

        class ShardedSFS(ShardedSolverMixin, SFSAnalysis): ...
    """

    def __init__(self, svfg: SVFG, partition: Partition, worker_id: int,
                 **kwargs) -> None:
        self.partition = partition
        self.worker_id = worker_id
        self.owned: List[bool] = partition.owned_mask(worker_id)
        self._suppress_outbox = False
        self._var_outbox: Dict[int, int] = {}
        self._mem_outbox: Dict[Tuple[int, int], int] = {}
        self._call_outbox: List[Tuple[int, str]] = []
        self.rounds_run = 0
        super().__init__(svfg, **kwargs)
        owned = self.owned
        shard_of = partition.shard_of
        num_shards = len(partition.shards)
        if self.delta:
            self.worklist = OwnedDeltaWorkList(owned, shard_of, num_shards)
        else:
            self.worklist = OwnedFIFOWorkList(owned, shard_of, num_shards)

    # -------------------------------------------------------- owned filtering

    def _seed(self) -> None:
        """Seed only the owned rule-bearing nodes, in shard order.

        Shards are contiguous topological segments of the SCC
        condensation, so pushing shard-by-shard makes the FIFO drain walk
        the owned region in roughly topological order — upstream sets are
        near-final when downstream nodes first pop.
        """
        seed_types = self.SEED_TYPES
        nodes = self.svfg.nodes
        push = self.worklist.push
        start, end = self.partition.worker_shards[self.worker_id]
        for sid in range(start, end):
            for node_id in self.partition.shards[sid]:
                node = nodes[node_id]
                if isinstance(node, InstNode) \
                        and isinstance(node.inst, seed_types):
                    push(node_id)

    def set_pt(self, var: Variable, mask: int) -> bool:
        vid = var.id
        old = self.pt[vid]
        new = old | mask
        if new == old:
            return False
        if not self._suppress_outbox:
            self._var_outbox[vid] = self._var_outbox.get(vid, 0) | (new & ~old)
        self.pt[vid] = new
        for user in self.svfg.var_uses.get(vid, ()):
            self.worklist.push(user)  # the worklist drops non-owned nodes
        return True

    def _on_new_call_edge(self, call: CallInst, callee: Function,
                          touched: List[int]) -> None:
        if not self._suppress_outbox:
            self._call_outbox.append((call.id, callee.name))
        self._after_connect(call, callee, touched)
        super()._on_new_call_edge(call, callee, touched)

    def _after_connect(self, call: CallInst, callee: Function,
                       touched: List[int]) -> None:
        """Hook: re-index structures after connect_callsite grew edges."""

    # ------------------------------------------------------------ round loop

    def prepare_round_zero(self) -> None:
        """First-round setup: the pre-analysis and the owned seed set."""
        if self._resumed:
            return
        if self.meter is not None:
            self.meter.start()
            self.meter.check()
        if self.faults is not None:
            self.faults.fire("pre_meld", self.analysis_name)
        self._prepare()
        self._seed()

    def solve_round(self) -> int:
        """Drain the owned worklist to local quiescence; return pops.

        Raises :class:`~repro.errors.BudgetExceeded` out of the meter
        like the serial loop; the driver owns the reaction.
        """
        begun = time.perf_counter()
        processed = 0
        worklist = self.worklist
        nodes = self.svfg.nodes
        meter = self.meter
        tick = meter.tick if meter is not None else None
        process = self._process
        try:
            if isinstance(worklist, DeltaWorkList):
                pop_with_dirty = worklist.pop_with_dirty
                while worklist:
                    if tick is not None:
                        tick()
                    node_id, dirty = pop_with_dirty()
                    processed += 1
                    process(nodes[node_id], dirty)
            else:
                pop = worklist.pop
                while worklist:
                    if tick is not None:
                        tick()
                    processed += 1
                    process(nodes[pop()], None)
        finally:
            self._steps_done += processed
            self.stats.nodes_processed = self._steps_done
            self.stats.solve_time += time.perf_counter() - begun
            self.rounds_run += 1
        return processed

    # -------------------------------------------------------------- frontier

    def collect_outbox(self) -> Tuple[Dict[int, int], Dict[Tuple[int, int], int],
                                      List[Tuple[int, str]]]:
        """Drain (vars, mem, calls) accumulated since the last collect."""
        var_deltas, self._var_outbox = self._var_outbox, {}
        mem_deltas, self._mem_outbox = self._mem_outbox, {}
        calls, self._call_outbox = self._call_outbox, []
        return var_deltas, mem_deltas, calls

    def apply_var_delta(self, vid: int, mask: int) -> None:
        """Merge a peer's top-level growth; wake owned readers."""
        self._suppress_outbox = True
        try:
            old = self.pt[vid]
            new = old | mask
            if new != old:
                self.pt[vid] = new
                for user in self.svfg.var_uses.get(vid, ()):
                    self.worklist.push(user)
        finally:
            self._suppress_outbox = False

    def apply_call_edge(self, inst_id: int, callee_name: str) -> None:
        """Replay a peer-discovered call edge on this worker's SVFG copy."""
        from repro.store.codec import call_sites_by_id, resolve_call_edge

        sites = getattr(self, "_call_sites", None)
        if sites is None:
            sites = self._call_sites = call_sites_by_id(self.module)
        call, callee = resolve_call_edge(self.module, sites, inst_id,
                                         callee_name)
        self._suppress_outbox = True
        try:
            if self.callgraph.add_edge(call, callee):
                touched = self.svfg.connect_callsite(call, callee)
                self._after_connect(call, callee, touched)
                super()._on_new_call_edge(call, callee, touched)
                for src in touched:
                    self.worklist.push(src)
                exit_inst = callee.exit_inst()
                if exit_inst is not None and call.dst is not None:
                    self.worklist.push(self.svfg.inst_node[exit_inst].id)
                # Re-run the CALL binding for the new callee (args may
                # already be known even if the call node never re-pops).
                for arg, param in zip(call.args, callee.params):
                    arg_mask = self.value_mask(arg)
                    if arg_mask:
                        self.set_pt(param, arg_mask)
        finally:
            self._suppress_outbox = False

    def apply_mem_delta(self, key: Tuple[int, int], mask: int) -> None:
        raise NotImplementedError

    def apply_frontier(self, batches, mirrors) -> None:
        """Apply a round's incoming batches (any order reaches the same
        state — the solve is confluent; see DESIGN.md §10)."""
        for batch in batches:
            mirrors.import_batch(batch)
            for inst_id, callee_name in batch.calls:
                self.apply_call_edge(inst_id, callee_name)
            for vid, set_id in batch.vars.items():
                self.apply_var_delta(vid, mirrors.resolve(batch, set_id))
            for key, set_id in batch.mem.items():
                self.apply_mem_delta(tuple(key), mirrors.resolve(batch, set_id))

    # ----------------------------------------------------- result extraction

    def finalize(self) -> None:
        """Fill the end-of-solve stats the serial loop computes in run()."""
        from repro.datastructs.bitset import count_bits

        self.stats.callgraph_edges = self.callgraph.num_edges()
        self.stats.top_level_bits = sum(count_bits(mask) for mask in self.pt)
        self._memory_footprint()

    def stored_masks(self) -> Iterator[int]:
        """Every stored non-empty address-taken mask (for the driver's
        exact global dedup recount across workers)."""
        raise NotImplementedError


class ShardedSFS(ShardedSolverMixin, SFSAnalysis):
    """SFS restricted to an owned region.

    Indirect successor lists of owned nodes are split into a local part
    (walked by the unmodified ``_propagate``) and an **export part**
    whose growth is diffed against a per-``(dst, object)`` sent-mask and
    queued as frontier memory deltas.
    """

    def __init__(self, svfg: SVFG, partition: Partition, worker_id: int,
                 **kwargs) -> None:
        self._export_succs: Dict[int, Dict[int, List[int]]] = {}
        self._export_sent: Dict[Tuple[int, int], int] = {}
        super().__init__(svfg, partition, worker_id, **kwargs)
        owned = self.owned
        for node_id in range(len(self.svfg.nodes)):
            if owned[node_id]:
                self._split_node_edges(node_id)

    def _split_node_edges(self, node_id: int) -> None:
        """Move cross-worker successors of *node_id* to the export table."""
        owned = self.owned
        table = self.svfg.ind_succs[node_id]
        split = [oid for oid, dsts in table.items()
                 if any(not owned[dst] for dst in dsts)]
        if not split:
            return
        # The graph may be a COW copy whose rows still alias the shared
        # substrate; claim this node's row before rewriting it.
        table = self.svfg.own_ind_row(node_id)
        for oid in split:
            dsts = table[oid]
            exported = [dst for dst in dsts if not owned[dst]]
            table[oid] = [dst for dst in dsts if owned[dst]]
            bucket = self._export_succs.setdefault(node_id, {})
            seen = bucket.get(oid)
            if seen is None:
                bucket[oid] = exported  # SVFG successor lists are deduped
            else:
                known = set(seen)
                seen.extend(dst for dst in exported if dst not in known)

    def _after_connect(self, call: CallInst, callee: Function,
                       touched: List[int]) -> None:
        # connect_callsite may have appended cross-worker indirect edges
        # (ActualIN→FormalIN / FormalOUT→ActualOUT) to owned sources.
        owned = self.owned
        for src in touched:
            if owned[src]:
                self._split_node_edges(src)

    def _propagate(self, node_id: int, oid: int, mask: int) -> None:
        super()._propagate(node_id, oid, mask)
        exports = self._export_succs.get(node_id)
        if not exports or not mask:
            return
        dsts = exports.get(oid)
        if not dsts:
            return
        sent = self._export_sent
        outbox = self._mem_outbox
        self.stats.propagations += len(dsts)
        for dst in dsts:
            key = (dst, oid)
            added = mask & ~sent.get(key, 0)
            if added:
                sent[key] = sent.get(key, 0) | added
                outbox[key] = outbox.get(key, 0) | added

    def apply_mem_delta(self, key: Tuple[int, int], mask: int) -> None:
        """Merge a peer's IN-set growth into an owned node."""
        node_id, oid = key
        if not self.owned[node_id]:
            return  # broadcast batch: not addressed to this worker
        self._suppress_outbox = True
        try:
            in_set = self.in_sets.setdefault(node_id, {})
            entry = in_set.get(oid, 0)
            old = self._entry_mask(entry)
            added = mask & ~old
            if not added:
                return
            # The union the sender's _propagate would have applied happens
            # here, on the edge's receiving side — count it here too, so
            # merged worker stats line up with the serial solve's tallies.
            self.stats.unions += 1
            if self.ptrepo is not None:
                in_set[oid] = self.ptrepo.union_mask(entry, added)
            else:
                in_set[oid] = old | added
            if self.delta:
                self.worklist.push_delta(node_id, oid, added)
            else:
                self.worklist.push(node_id)
        finally:
            self._suppress_outbox = False

    def stored_masks(self) -> Iterator[int]:
        entry_mask = self._entry_mask
        for sets in (self.in_sets, self.out_sets):
            for table in sets.values():
                for entry in table.values():
                    mask = entry_mask(entry)
                    if mask:
                        yield mask

    # --------------------------------------------------------------- sealing

    def shard_seal_extra(self) -> Dict[str, object]:
        return {
            "export_sent": {f"{dst}:{oid}": format(mask, "x")
                            for (dst, oid), mask in self._export_sent.items()},
        }

    def restore_shard_extra(self, extra: Dict[str, object]) -> None:
        sent: Dict[Tuple[int, int], int] = {}
        for key, text in extra.get("export_sent", {}).items():
            dst, oid = key.split(":")
            sent[(int(dst), int(oid))] = int(text, 16)
        self._export_sent = sent

    def after_restore(self) -> None:
        """Re-derive sharded indexes a plain snapshot does not carry.

        ``restore_state`` replayed the call edges on a fresh SVFG copy,
        so the export split must be recomputed over the restored edge
        structure.
        """
        self._export_succs = {}
        owned = self.owned
        for node_id in range(len(self.svfg.nodes)):
            if owned[node_id]:
                self._split_node_edges(node_id)


class ShardedVSFS(ShardedSolverMixin, VSFSAnalysis):
    """VSFS restricted to an owned region.

    The global ``(object, version)`` table is fully replicated: writes
    broadcast their *root* deltas and every worker replays the identical
    constraint closure, so the per-worker tables converge cell-wise —
    the global keying is exactly what makes the shard merge a cell-wise
    OR, commutative and schedule-independent.  Only the readers index is
    restricted to owned nodes, so growth wakes local work only.
    """

    def _build_readers(self) -> None:
        super()._build_readers()
        owned = self.owned
        self.readers = {
            key: [nid for nid in nids if owned[nid]]
            for key, nids in self.readers.items()
        }

    def _ptv_join(self, oid: int, ver: int, mask: int) -> None:
        if not self._suppress_outbox and mask:
            added = mask & ~self.ptv_mask(oid, ver)
            if added:
                key = (oid, ver)
                outbox = self._mem_outbox
                outbox[key] = outbox.get(key, 0) | added
        super()._ptv_join(oid, ver, mask)

    def apply_mem_delta(self, key: Tuple[int, int], mask: int) -> None:
        """Replay a peer's root write through the local constraint closure."""
        oid, ver = key
        self._suppress_outbox = True
        try:
            super()._ptv_join(oid, ver, mask)
        finally:
            self._suppress_outbox = False

    def stored_masks(self) -> Iterator[int]:
        entry_mask = self._entry_mask
        for table in self.ptv.values():
            for entry in table:
                mask = entry_mask(entry)
                if mask:
                    yield mask

    def shard_seal_extra(self) -> Dict[str, object]:
        return {}

    def restore_shard_extra(self, extra: Dict[str, object]) -> None:
        pass

    def after_restore(self) -> None:
        pass
