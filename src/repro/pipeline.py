"""One-stop pipeline: source/module in, points-to results out.

:class:`AnalysisPipeline` is a thin compatibility shim over the
stage-graph engine (:mod:`repro.engine`): each lazy getter delegates to
:meth:`Engine.ensure`, each solver entry point to :meth:`Engine.solve`,
so callers share the expensive substrate between SFS and VSFS runs —
exactly how the paper benchmarks the two (auxiliary analysis and SVFG
construction excluded from the timed main phase).  Solvers receive
*copies* of the shared SVFG (:meth:`SVFG.copy`): on-the-fly call-graph
resolution mutates the edge structure, and the shared build must stay
immutable.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.andersen import AndersenResult
from repro.analysis.modref import ModRefInfo
from repro.core.versioning import ObjectVersioning
from repro.engine import Engine, StageCache, StageContext, StageTrace
from repro.errors import AnalysisError, CheckpointError
from repro.frontend import compile_c
from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.memssa.builder import MemSSA
from repro.passes.prepare import prepare_module
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.degrade import solve_with_ladder
from repro.solvers.base import FlowSensitiveResult
from repro.svfg.builder import SVFG

ANALYSES = ("ander", "sfs", "vsfs", "icfg-fs")


class AnalysisPipeline:
    """Caches each stage; every getter builds its dependencies on demand."""

    def __init__(self, module: Optional[Module] = None,
                 cache: Optional[StageCache] = None,
                 source: Optional[str] = None, language: str = "c",
                 mde_batch: bool = True,
                 arena_path: Optional[str] = None,
                 faults=None, strict_cache: bool = False):
        if module is None and source is None:
            raise AnalysisError(
                "AnalysisPipeline needs a prepared module or source text")
        ctx = StageContext(module=module, source=source, language=language,
                           cache=cache, mde_batch=mde_batch,
                           arena_path=arena_path, faults=faults,
                           strict_cache=strict_cache)
        self.engine = Engine(ctx)
        self.module: Module = self.engine.ensure("prepare")

    @classmethod
    def from_source(cls, source: str, language: str = "c",
                    cache: Optional[StageCache] = None,
                    mde_batch: bool = True,
                    arena_path: Optional[str] = None,
                    faults=None,
                    strict_cache: bool = False) -> "AnalysisPipeline":
        """Route parsing/preparation through the engine's own stages."""
        return cls(source=source, language=language, cache=cache,
                   mde_batch=mde_batch, arena_path=arena_path, faults=faults,
                   strict_cache=strict_cache)

    @property
    def trace(self) -> StageTrace:
        """Per-stage wall/steps/cache breakdown of everything run so far."""
        return self.engine.trace

    # -------------------------------------------------------------- substrate

    def andersen(self, meter=None, checkpointer=None,
                 resume_state=None, resume_step: int = 0) -> AndersenResult:
        if meter is None and checkpointer is None and resume_state is None:
            return self.engine.ensure("andersen")
        return self.engine.solve("andersen", meter=meter,
                                 checkpointer=checkpointer,
                                 resume_state=resume_state,
                                 resume_step=resume_step)

    def modref(self) -> ModRefInfo:
        return self.engine.ensure("modref")

    def memssa(self) -> MemSSA:
        return self.engine.ensure("memssa")

    def svfg(self) -> SVFG:
        """The shared, immutable SVFG build (never hand this to a solver)."""
        return self.engine.ensure("svfg")

    def fresh_svfg(self) -> SVFG:
        """An un-shared SVFG copy (solvers mutate it via OTF edges)."""
        return self.svfg().copy()

    def versioning(self) -> ObjectVersioning:
        return self.engine.ensure("versioning")

    # ------------------------------------------------------------- main phase

    def sfs(self, delta: bool = True, ptrepo: bool = True, meter=None,
            faults=None, checkpointer=None, resume_state=None,
            resume_step: int = 0, warm_plan=None,
            capture_regions: Optional[bool] = None) -> FlowSensitiveResult:
        return self.engine.solve("sfs", delta=delta, ptrepo=ptrepo,
                                 meter=meter, faults=faults,
                                 checkpointer=checkpointer,
                                 resume_state=resume_state,
                                 resume_step=resume_step,
                                 warm_plan=warm_plan,
                                 capture_regions=capture_regions)

    def vsfs(self, delta: bool = True, ptrepo: bool = True, meter=None,
             faults=None, checkpointer=None, resume_state=None,
             resume_step: int = 0, warm_plan=None,
             capture_regions: Optional[bool] = None) -> FlowSensitiveResult:
        return self.engine.solve("vsfs", delta=delta, ptrepo=ptrepo,
                                 meter=meter, faults=faults,
                                 checkpointer=checkpointer,
                                 resume_state=resume_state,
                                 resume_step=resume_step,
                                 warm_plan=warm_plan,
                                 capture_regions=capture_regions)

    def sfs_par(self, jobs: int = 2, delta: bool = True, ptrepo: bool = True,
                meter=None, faults=None, mode: Optional[str] = None,
                warm_plan=None,
                capture_regions: Optional[bool] = None) -> FlowSensitiveResult:
        """Sharded parallel SFS on *jobs* workers (bit-identical to
        :meth:`sfs`; see :mod:`repro.parallel`).  A usable *warm_plan*
        collapses the run onto the serial kernel (same result)."""
        return self.engine.solve("sfs-par", delta=delta, ptrepo=ptrepo,
                                 meter=meter, faults=faults, jobs=jobs,
                                 parallel_mode=mode, warm_plan=warm_plan,
                                 capture_regions=capture_regions)

    def vsfs_par(self, jobs: int = 2, delta: bool = True, ptrepo: bool = True,
                 meter=None, faults=None, mode: Optional[str] = None,
                 warm_plan=None,
                 capture_regions: Optional[bool] = None
                 ) -> FlowSensitiveResult:
        """Sharded parallel VSFS on *jobs* workers (bit-identical to
        :meth:`vsfs`).  A usable *warm_plan* collapses the run onto the
        serial kernel (same result)."""
        return self.engine.solve("vsfs-par", delta=delta, ptrepo=ptrepo,
                                 meter=meter, faults=faults, jobs=jobs,
                                 parallel_mode=mode, warm_plan=warm_plan,
                                 capture_regions=capture_regions)

    def icfg_fs(self, meter=None, checkpointer=None, resume_state=None,
                resume_step: int = 0) -> FlowSensitiveResult:
        return self.engine.solve("icfg-fs", meter=meter,
                                 checkpointer=checkpointer,
                                 resume_state=resume_state,
                                 resume_step=resume_step)


def module_from(source: Union[str, Module], language: str = "c") -> Module:
    """Accept a ready module, mini-C source, or textual IR."""
    if isinstance(source, Module):
        return source
    if language == "c":
        return compile_c(source)
    if language == "ir":
        module = parse_module(source)
        prepare_module(module, promote=False)
        return module
    raise AnalysisError(f"unknown language {language!r} (want 'c' or 'ir')")


def analyze(source: Union[str, Module], analysis: str = "vsfs",
            language: str = "c", budget=None, fallback: bool = True,
            faults=None, delta: bool = True, ptrepo: bool = True,
            checkpoint=None, resume_from=None):
    """Run one analysis end to end, governed by the degradation ladder.

    :param source: a prepared :class:`Module`, mini-C source text, or
        textual IR (set ``language='ir'``).
    :param analysis: ``'ander'``, ``'sfs'``, ``'vsfs'`` (default) or
        ``'icfg-fs'``.
    :param budget: optional :class:`~repro.runtime.budget.Budget`; when it
        is exhausted the run degrades down the ladder (or raises
        :class:`~repro.errors.BudgetExceeded` with ``fallback=False``).
    :param fallback: walk the degradation ladder on failure (default) —
        the result's ``precision_level``/``degraded_from`` record what
        actually ran; with ``False`` the first failure raises.
    :param faults: optional :class:`~repro.runtime.faults.FaultPlan` for
        deterministic fault injection (testing infrastructure).
    :param checkpoint: optional
        :class:`~repro.runtime.checkpoint.CheckpointConfig` (or a
        directory path) enabling periodic crash-safe snapshots of the
        in-flight solver, plus one final snapshot when a budget trips.
    :param resume_from: resume a previous interrupted run: a checkpoint
        file path, a directory to search, or ``True`` to search
        ``checkpoint``'s directory.  Discovery is content-addressed (IR
        hash × rung × ablation flags) and walks the ladder most-precise
        first; a stale or mismatched checkpoint raises
        :class:`~repro.errors.CheckpointError`, while "no checkpoint
        found" in directory mode simply starts fresh.
    :returns: :class:`AndersenResult` or :class:`FlowSensitiveResult`,
        tagged with ``precision_level`` and a ``report``
        (:class:`~repro.runtime.diagnostics.RunReport`, including the
        per-stage trace).  Unbudgeted fault-free runs produce
        bit-identical points-to results to the ungoverned solvers — and
        so do resumed runs versus uninterrupted ones.
    """
    if analysis not in ANALYSES:
        raise AnalysisError(f"unknown analysis {analysis!r}; choose from {ANALYSES}")
    if isinstance(source, Module):
        pipeline = AnalysisPipeline(source)
    else:
        pipeline = AnalysisPipeline.from_source(source, language=language)
    module = pipeline.module
    if isinstance(checkpoint, str):
        checkpoint = CheckpointConfig(checkpoint)
    resume_meta = resume_state = None
    if resume_from:
        resume_meta, resume_state = _load_resume_state(
            module, analysis, resume_from, checkpoint, delta, ptrepo)
    return solve_with_ladder(pipeline, analysis=analysis, budget=budget,
                             fallback=fallback, faults=faults, delta=delta,
                             ptrepo=ptrepo, checkpoint=checkpoint,
                             resume_state=resume_state,
                             resume_meta=resume_meta)


def _load_resume_state(module: Module, analysis: str, resume_from,
                       checkpoint, delta: bool, ptrepo: bool):
    """Locate and verify the checkpoint ``analyze(resume_from=...)`` names.

    Returns ``(meta, payload)`` or ``(None, None)`` when directory-mode
    discovery finds nothing (a fresh start, not an error).  An explicit
    file path that is missing or fails verification always raises.
    """
    import os

    from repro.runtime.checkpoint import find_checkpoint, load_checkpoint
    from repro.runtime.degrade import LADDERS
    from repro.store.codec import ir_fingerprint

    ir_hash = ir_fingerprint(module)
    levels = LADDERS[analysis]
    path = None
    if isinstance(resume_from, str) and not os.path.isdir(resume_from):
        path = resume_from  # explicit checkpoint file
    else:
        if isinstance(resume_from, str):
            directory = resume_from
        elif checkpoint is not None:
            directory = checkpoint.directory
        else:
            raise AnalysisError(
                "resume_from=True needs a checkpoint directory "
                "(pass checkpoint=... or a directory path)")
        for level in levels:  # most precise rung first
            path = find_checkpoint(directory, ir_hash, level, delta, ptrepo)
            if path is not None:
                break
        if path is None:
            return None, None
    meta, payload = load_checkpoint(path, ir_hash=ir_hash,
                                    delta=delta, ptrepo=ptrepo)
    if meta.get("analysis") not in levels:
        raise CheckpointError(
            f"checkpoint at {path} is for analysis {meta.get('analysis')!r}, "
            f"not a rung of the {analysis!r} ladder {levels}",
            reason="config-mismatch", path=path)
    return meta, payload
