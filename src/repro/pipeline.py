"""One-stop pipeline: source/module in, points-to results out.

:class:`AnalysisPipeline` lazily builds and caches each analysis stage
(Andersen → mod/ref → memory SSA → SVFG → solvers) so callers can share
the expensive substrate between SFS and VSFS runs — exactly how the paper
benchmarks the two (auxiliary analysis and SVFG construction excluded from
the timed main phase).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.analysis.andersen import AndersenAnalysis, AndersenResult
from repro.analysis.modref import ModRefInfo, compute_modref
from repro.core.versioning import ObjectVersioning, version_objects
from repro.core.vsfs import VSFSAnalysis
from repro.errors import AnalysisError
from repro.frontend import compile_c
from repro.ir.module import Module
from repro.ir.parser import parse_module
from repro.memssa.builder import MemSSA, build_memssa
from repro.passes.pipeline import prepare_module
from repro.runtime.degrade import solve_with_ladder
from repro.solvers.base import FlowSensitiveResult
from repro.solvers.icfg_fs import ICFGFlowSensitive
from repro.solvers.sfs import SFSAnalysis
from repro.svfg.builder import SVFG, build_svfg

ANALYSES = ("ander", "sfs", "vsfs", "icfg-fs")


class AnalysisPipeline:
    """Caches each stage; every getter builds its dependencies on demand."""

    def __init__(self, module: Module):
        self.module = module
        self._andersen: Optional[AndersenResult] = None
        self._modref: Optional[ModRefInfo] = None
        self._memssa: Optional[MemSSA] = None
        self._svfg: Optional[SVFG] = None
        self._versioning: Optional[ObjectVersioning] = None

    def andersen(self, meter=None) -> AndersenResult:
        if self._andersen is None:
            self._andersen = AndersenAnalysis(self.module, meter=meter).run()
        return self._andersen

    def modref(self) -> ModRefInfo:
        if self._modref is None:
            self._modref = compute_modref(self.module, self.andersen())
        return self._modref

    def memssa(self) -> MemSSA:
        if self._memssa is None:
            self._memssa = build_memssa(self.module, self.andersen(), self.modref())
        return self._memssa

    def svfg(self) -> SVFG:
        if self._svfg is None:
            self._svfg = build_svfg(self.module, self.andersen(), self.memssa())
        return self._svfg

    def fresh_svfg(self) -> SVFG:
        """An un-shared SVFG (solvers mutate it via OTF edges)."""
        return build_svfg(self.module, self.andersen(), self.memssa())

    def versioning(self) -> ObjectVersioning:
        if self._versioning is None:
            self._versioning = version_objects(self.svfg())
        return self._versioning

    def sfs(self, delta: bool = True, ptrepo: bool = True, meter=None,
            faults=None) -> FlowSensitiveResult:
        return SFSAnalysis(self.fresh_svfg(), delta=delta, ptrepo=ptrepo,
                           meter=meter, faults=faults).run()

    def vsfs(self, delta: bool = True, ptrepo: bool = True, meter=None,
             faults=None) -> FlowSensitiveResult:
        return VSFSAnalysis(self.fresh_svfg(), delta=delta, ptrepo=ptrepo,
                            meter=meter, faults=faults).run()

    def icfg_fs(self, meter=None) -> FlowSensitiveResult:
        return ICFGFlowSensitive(self.module, meter=meter).run()


def module_from(source: Union[str, Module], language: str = "c") -> Module:
    """Accept a ready module, mini-C source, or textual IR."""
    if isinstance(source, Module):
        return source
    if language == "c":
        return compile_c(source)
    if language == "ir":
        module = parse_module(source)
        prepare_module(module, promote=False)
        return module
    raise AnalysisError(f"unknown language {language!r} (want 'c' or 'ir')")


def analyze(source: Union[str, Module], analysis: str = "vsfs",
            language: str = "c", budget=None, fallback: bool = True,
            faults=None, delta: bool = True, ptrepo: bool = True):
    """Run one analysis end to end, governed by the degradation ladder.

    :param source: a prepared :class:`Module`, mini-C source text, or
        textual IR (set ``language='ir'``).
    :param analysis: ``'ander'``, ``'sfs'``, ``'vsfs'`` (default) or
        ``'icfg-fs'``.
    :param budget: optional :class:`~repro.runtime.budget.Budget`; when it
        is exhausted the run degrades down the ladder (or raises
        :class:`~repro.errors.BudgetExceeded` with ``fallback=False``).
    :param fallback: walk the degradation ladder on failure (default) —
        the result's ``precision_level``/``degraded_from`` record what
        actually ran; with ``False`` the first failure raises.
    :param faults: optional :class:`~repro.runtime.faults.FaultPlan` for
        deterministic fault injection (testing infrastructure).
    :returns: :class:`AndersenResult` or :class:`FlowSensitiveResult`,
        tagged with ``precision_level`` and a ``report``
        (:class:`~repro.runtime.diagnostics.RunReport`).  Unbudgeted
        fault-free runs produce bit-identical points-to results to the
        ungoverned solvers.
    """
    if analysis not in ANALYSES:
        raise AnalysisError(f"unknown analysis {analysis!r}; choose from {ANALYSES}")
    module = module_from(source, language)
    pipeline = AnalysisPipeline(module)
    return solve_with_ladder(pipeline, analysis=analysis, budget=budget,
                             fallback=fallback, faults=faults, delta=delta,
                             ptrepo=ptrepo)
