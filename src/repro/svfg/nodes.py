"""SVFG node kinds.

Every node has a dense :attr:`SVFGNode.id` (assigned by the builder in
program order — useful as a worklist priority) and belongs to a function.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.ir.function import Function
from repro.ir.instructions import CallInst, Instruction
from repro.ir.values import MemObject

if TYPE_CHECKING:
    from repro.memssa.annotations import MemPhi


class SVFGNode:
    """Base class for SVFG nodes.

    ``consumed_ver``/``yielded_ver`` are written by the object-versioning
    pre-analysis for *single-object* nodes (actual/formal IN/OUT): storing
    one int pair beats a one-entry dict per node.  They stay 0 (ε) until a
    versioning runs over this SVFG instance.
    """

    __slots__ = ("id", "function", "consumed_ver", "yielded_ver")

    def __init__(self, function: Optional[Function]):
        self.id = -1
        self.function = function
        self.consumed_ver = 0
        self.yielded_ver = 0

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<svfg:{self.id} {self.describe()}>"


class InstNode(SVFGNode):
    """One IR instruction (ALLOC/COPY/PHI/FIELD/LOAD/STORE/CALL/FUNENTRY/
    FUNEXIT and the pointer-irrelevant rest)."""

    __slots__ = ("inst",)

    def __init__(self, inst: Instruction):
        super().__init__(inst.function)
        self.inst = inst

    def describe(self) -> str:
        return f"inst l{self.inst.id} {type(self.inst).__name__}"


class MemPhiNode(SVFGNode):
    """A MEMPHI ``o₃ = φ(o₁, o₂)`` at a CFG join."""

    __slots__ = ("memphi",)

    def __init__(self, memphi: "MemPhi"):
        super().__init__(memphi.block.function)
        self.memphi = memphi

    @property
    def obj(self) -> MemObject:
        return self.memphi.obj

    def describe(self) -> str:
        return f"memphi {self.memphi.obj.name}@{self.memphi.block.name}"


class ActualINNode(SVFGNode):
    """μ(o) at a call site: the value of *o* flowing into callees."""

    __slots__ = ("call", "obj")

    def __init__(self, call: CallInst, obj: MemObject):
        super().__init__(call.function)
        self.call = call
        self.obj = obj

    def describe(self) -> str:
        return f"actual-in {self.obj.name}@l{self.call.id}"


class ActualOUTNode(SVFGNode):
    """o = χ(o) at a call site: the value of *o* flowing back from callees.

    For indirect call sites this is a δ node: its incoming interprocedural
    edges appear during on-the-fly call graph resolution.
    """

    __slots__ = ("call", "obj")

    def __init__(self, call: CallInst, obj: MemObject):
        super().__init__(call.function)
        self.call = call
        self.obj = obj

    def describe(self) -> str:
        return f"actual-out {self.obj.name}@l{self.call.id}"


class FormalINNode(SVFGNode):
    """Entry-χ(o) of a function: receives *o* from call sites.

    For functions reachable by indirect calls this is a δ node.
    """

    __slots__ = ("obj",)

    def __init__(self, function: Function, obj: MemObject):
        super().__init__(function)
        self.obj = obj

    def describe(self) -> str:
        return f"formal-in {self.obj.name}@{self.function.name}"


class FormalOUTNode(SVFGNode):
    """Exit-μ(o) of a function: returns *o* to call sites."""

    __slots__ = ("obj",)

    def __init__(self, function: Function, obj: MemObject):
        super().__init__(function)
        self.obj = obj

    def describe(self) -> str:
        return f"formal-out {self.obj.name}@{self.function.name}"
