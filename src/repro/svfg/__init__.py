"""The Sparse Value-Flow Graph (SVFG, §II-B).

Nodes are the program's instructions plus the memory-SSA artefacts
(``MEMPHI`` nodes and, following SVF, dedicated *ActualIN/ActualOUT* nodes
per call site and object and *FormalIN/FormalOUT* nodes per function and
object, which realise the paper's χ/μ-annotated ``CALL``/``FUNENTRY``/
``FUNEXIT`` instructions at per-object granularity).

Edges:

- **direct** edges carry top-level variables: from each variable's unique
  definition node to every node reading it, plus parameter/return binding
  edges for direct calls;
- **indirect** edges are labelled with an address-taken object ``o`` and
  connect the definition of one memory-SSA version of ``o`` to each of its
  uses.

Interprocedural edges of *indirect* calls are not added at build time: the
solvers resolve the call graph on the fly and call
:meth:`SVFG.connect_callsite` when flow-sensitive analysis discovers a
callee — the nodes that may acquire new incoming edges this way are the
paper's *δ nodes* (Definition 3).
"""

from repro.svfg.nodes import (
    ActualINNode,
    ActualOUTNode,
    FormalINNode,
    FormalOUTNode,
    InstNode,
    MemPhiNode,
    SVFGNode,
)
from repro.svfg.builder import SVFG, SVFGStats, build_svfg

__all__ = [
    "SVFGNode",
    "InstNode",
    "MemPhiNode",
    "ActualINNode",
    "ActualOUTNode",
    "FormalINNode",
    "FormalOUTNode",
    "SVFG",
    "SVFGStats",
    "build_svfg",
]
