"""SVFG construction from IR + Andersen results + memory SSA."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.andersen import AndersenResult
from repro.analysis.modref import ModRefInfo
from repro.datastructs.bitset import iter_bits
from repro.errors import AnalysisError
from repro.ir.function import Function
from repro.ir.instructions import (
    CallInst,
    FunEntryInst,
    Instruction,
    LoadInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.values import FunctionObject, Variable
from repro.memssa.builder import MemSSA
from repro.svfg.nodes import (
    ActualINNode,
    ActualOUTNode,
    FormalINNode,
    FormalOUTNode,
    InstNode,
    MemPhiNode,
    SVFGNode,
)


@dataclass
class SVFGStats:
    """The Table II columns for one program."""

    num_nodes: int = 0
    num_direct_edges: int = 0
    num_indirect_edges: int = 0
    num_top_level_vars: int = 0
    num_address_taken_vars: int = 0
    num_memphis: int = 0
    num_delta_nodes: int = 0


class SVFG:
    """The sparse value-flow graph (see package docstring)."""

    def __init__(self, module: Module, andersen: AndersenResult, memssa: MemSSA):
        self.module = module
        self.andersen = andersen
        self.memssa = memssa
        self.nodes: List[SVFGNode] = []
        self.inst_node: Dict[Instruction, InstNode] = {}
        # Direct (top-level) edges, by node id.
        self.direct_succs: List[List[int]] = []
        self.direct_preds: List[List[int]] = []
        # Indirect (address-taken) edges, labelled with object ids.
        self.ind_succs: List[Dict[int, List[int]]] = []
        self.ind_preds: List[List[Tuple[int, int]]] = []  # (pred id, obj id)
        # Per-call-site / per-function object nodes (obj id -> node id).
        self.actual_in: Dict[CallInst, Dict[int, int]] = {}
        self.actual_out: Dict[CallInst, Dict[int, int]] = {}
        self.formal_in: Dict[Function, Dict[int, int]] = {}
        self.formal_out: Dict[Function, Dict[int, int]] = {}
        # Variable def/use indexing for direct propagation.
        self.var_def_node: Dict[int, int] = {}
        self.var_uses: Dict[int, List[int]] = {}
        #: δ nodes (Definition 3): node ids that may gain incoming indirect
        #: edges during on-the-fly call graph resolution.
        self.delta_nodes: Set[int] = set()
        self._connected: Set[Tuple[CallInst, Function]] = set()
        self._edge_set: Set[Tuple[int, int, int]] = set()  # (src, dst, oid)
        #: Per-node shared-row flags of a ``copy(cow=True)`` graph (None on
        #: ordinary graphs): 1 = the node's edge rows still alias the source
        #: and must be cloned before the first mutation.
        self._cow_rows: Optional[bytearray] = None

    # ------------------------------------------------------------ structure

    def _add_node(self, node: SVFGNode) -> SVFGNode:
        node.id = len(self.nodes)
        self.nodes.append(node)
        self.direct_succs.append([])
        self.direct_preds.append([])
        self.ind_succs.append({})
        self.ind_preds.append([])
        return node

    def _own_node_rows(self, node_id: int) -> None:
        """Clone *node_id*'s edge rows out of the shared substrate (only
        meaningful on a ``copy(cow=True)`` graph)."""
        self.direct_succs[node_id] = list(self.direct_succs[node_id])
        self.direct_preds[node_id] = list(self.direct_preds[node_id])
        self.ind_succs[node_id] = {oid: list(dsts)
                                   for oid, dsts in self.ind_succs[node_id].items()}
        self.ind_preds[node_id] = list(self.ind_preds[node_id])
        self._cow_rows[node_id] = 0

    def own_ind_row(self, node_id: int) -> Dict[int, List[int]]:
        """The node's indirect-successor row, safe to mutate in place."""
        cow = self._cow_rows
        if cow is not None and cow[node_id]:
            self._own_node_rows(node_id)
        return self.ind_succs[node_id]

    def add_direct_edge(self, src: int, dst: int) -> bool:
        if dst in self.direct_succs[src]:
            return False
        cow = self._cow_rows
        if cow is not None:
            if cow[src]:
                self._own_node_rows(src)
            if cow[dst]:
                self._own_node_rows(dst)
        self.direct_succs[src].append(dst)
        self.direct_preds[dst].append(src)
        return True

    def add_indirect_edge(self, src: int, dst: int, oid: int) -> bool:
        key = (src, dst, oid)
        if key in self._edge_set:
            return False
        cow = self._cow_rows
        if cow is not None:
            if cow[src]:
                self._own_node_rows(src)
            if cow[dst]:
                self._own_node_rows(dst)
        self._edge_set.add(key)
        self.ind_succs[src].setdefault(oid, []).append(dst)
        self.ind_preds[dst].append((src, oid))
        return True

    def num_direct_edges(self) -> int:
        return sum(len(succs) for succs in self.direct_succs)

    def num_indirect_edges(self) -> int:
        return len(self._edge_set)

    def node(self, ident: int) -> SVFGNode:
        return self.nodes[ident]

    # ------------------------------------------------------ region ownership

    def nodes_by_function(self) -> Dict[str, List[int]]:
        """Function name → the node ids it owns (the incremental spine's
        region map).  ``_create_nodes`` creates each function's nodes
        contiguously in program order, so every region is a dense id
        range and a node's ordinal within its function is stable across
        rebuilds of an unchanged function."""
        regions: Dict[str, List[int]] = {}
        for node in self.nodes:
            name = node.function.name if node.function is not None else ""
            regions.setdefault(name, []).append(node.id)
        return regions

    # -------------------------------------------------- on-the-fly call graph

    def is_connected(self, call: CallInst, callee: Function) -> bool:
        return (call, callee) in self._connected

    def connect_callsite(self, call: CallInst, callee: Function) -> List[int]:
        """Wire *call* to *callee* (parameter/return + μ/χ edges).

        Returns the node ids whose outputs must be (re)propagated — the
        sources of every newly created edge.  Used by the solvers when
        on-the-fly call graph resolution discovers an edge; also used at
        build time for direct calls.
        """
        if (call, callee) in self._connected or callee.is_declaration:
            return []
        self._connected.add((call, callee))
        touched: List[int] = []
        call_node = self.inst_node[call].id

        entry_node = self.inst_node[callee.entry_inst].id
        if self.add_direct_edge(call_node, entry_node):
            touched.append(call_node)
        exit_inst = callee.exit_inst()
        if exit_inst is not None and call.dst is not None:
            exit_node = self.inst_node[exit_inst].id
            if self.add_direct_edge(exit_node, call_node):
                touched.append(exit_node)

        for oid, ain in self.actual_in.get(call, {}).items():
            fin = self.formal_in.get(callee, {}).get(oid)
            if fin is not None and self.add_indirect_edge(ain, fin, oid):
                touched.append(ain)
        for oid, aout in self.actual_out.get(call, {}).items():
            fout = self.formal_out.get(callee, {}).get(oid)
            if fout is not None and self.add_indirect_edge(fout, aout, oid):
                touched.append(fout)
        return touched

    # ----------------------------------------------------------------- copy

    def copy(self, *, cow: bool = False) -> "SVFG":
        """A solver-private copy of this graph.

        The immutable build products (nodes, instruction/variable tables,
        actual/formal tables, δ set) are shared; the edge structure that
        on-the-fly call-graph resolution grows (`add_direct_edge` /
        `add_indirect_edge` / `connect_callsite`) is duplicated, so
        solvers can mutate their copy without poisoning the shared
        substrate or each other.

        With ``cow=True`` the per-node edge rows stay shared and are
        cloned lazily on first mutation (copy-on-write).  OTF call-graph
        resolution touches a tiny fraction of the rows, so a COW copy
        costs O(nodes) pointer copies instead of duplicating every edge —
        the difference between milliseconds and seconds on Table III
        programs.  The source graph must stay immutable while COW copies
        of it are live (mutating it would leak through shared rows).
        """
        dup = SVFG.__new__(SVFG)
        dup.module = self.module
        dup.andersen = self.andersen
        dup.memssa = self.memssa
        dup.nodes = self.nodes
        dup.inst_node = self.inst_node
        dup.actual_in = self.actual_in
        dup.actual_out = self.actual_out
        dup.formal_in = self.formal_in
        dup.formal_out = self.formal_out
        dup.var_def_node = self.var_def_node
        dup.var_uses = self.var_uses
        dup.delta_nodes = self.delta_nodes
        if cow:
            dup.direct_succs = list(self.direct_succs)
            dup.direct_preds = list(self.direct_preds)
            dup.ind_succs = list(self.ind_succs)
            dup.ind_preds = list(self.ind_preds)
            dup._cow_rows = bytearray(b"\x01" * len(self.nodes))
        else:
            dup.direct_succs = [list(succs) for succs in self.direct_succs]
            dup.direct_preds = [list(preds) for preds in self.direct_preds]
            dup.ind_succs = [{oid: list(dsts) for oid, dsts in table.items()}
                             for table in self.ind_succs]
            dup.ind_preds = [list(preds) for preds in self.ind_preds]
            dup._cow_rows = None
        dup._connected = set(self._connected)
        dup._edge_set = set(self._edge_set)
        return dup

    # ---------------------------------------------------------------- stats

    def stats(self) -> SVFGStats:
        from repro.ir.values import MemObject

        top_level = len(self.module.variables)
        address_taken = len(self.module.objects)
        return SVFGStats(
            num_nodes=len(self.nodes),
            num_direct_edges=self.num_direct_edges(),
            num_indirect_edges=self.num_indirect_edges(),
            num_top_level_vars=top_level,
            num_address_taken_vars=address_taken,
            num_memphis=self.memssa.num_memphis(),
            num_delta_nodes=len(self.delta_nodes),
        )


def build_svfg(module: Module, andersen: AndersenResult, memssa: MemSSA) -> SVFG:
    """Assemble the SVFG (nodes, direct edges, indirect edges, δ set)."""
    svfg = SVFG(module, andersen, memssa)
    _create_nodes(svfg)
    _add_direct_edges(svfg)
    _add_indirect_edges(svfg)
    _connect_direct_calls(svfg)
    _mark_delta_nodes(svfg)
    return svfg


def _create_nodes(svfg: SVFG) -> None:
    module = svfg.module
    memssa = svfg.memssa
    for function in module.functions.values():
        if function.is_declaration:
            continue
        phis_by_block: Dict[object, List] = {}
        for memphi in memssa.memphis.get(function, []):
            phis_by_block.setdefault(memphi.block, []).append(memphi)
        for block in function.blocks:
            for memphi in phis_by_block.get(block, []):
                svfg._add_node(MemPhiNode(memphi))
            for inst in block.instructions:
                node = InstNode(inst)
                svfg._add_node(node)
                svfg.inst_node[inst] = node
                if isinstance(inst, FunEntryInst):
                    table = svfg.formal_in.setdefault(function, {})
                    for chi in memssa.entry_chis.get(function, []):
                        fin = svfg._add_node(FormalINNode(function, chi.obj))
                        table[chi.obj.id] = fin.id
                elif isinstance(inst, RetInst):
                    table = svfg.formal_out.setdefault(function, {})
                    for mu in memssa.exit_mus.get(function, []):
                        fout = svfg._add_node(FormalOUTNode(function, mu.obj))
                        table[mu.obj.id] = fout.id
                elif isinstance(inst, CallInst):
                    in_table = svfg.actual_in.setdefault(inst, {})
                    for mu in memssa.call_mus.get(inst, []):
                        ain = svfg._add_node(ActualINNode(inst, mu.obj))
                        in_table[mu.obj.id] = ain.id
                    out_table = svfg.actual_out.setdefault(inst, {})
                    for chi in memssa.call_chis.get(inst, []):
                        aout = svfg._add_node(ActualOUTNode(inst, chi.obj))
                        out_table[chi.obj.id] = aout.id


def _add_direct_edges(svfg: SVFG) -> None:
    """Top-level def-use edges: unique definition → every reader."""
    module = svfg.module
    # Definitions.
    for inst, node in svfg.inst_node.items():
        result = inst.result()
        if result is not None:
            svfg.var_def_node[result.id] = node.id
        if isinstance(inst, FunEntryInst):
            for param in inst.func.params:
                svfg.var_def_node[param.id] = node.id
    # Uses.
    for inst, node in svfg.inst_node.items():
        for operand in inst.operands():
            if isinstance(operand, Variable):
                svfg.var_uses.setdefault(operand.id, []).append(node.id)
                def_node = svfg.var_def_node.get(operand.id)
                if def_node is not None:
                    svfg.add_direct_edge(def_node, node.id)


def _add_indirect_edges(svfg: SVFG) -> None:
    """Link each memory-SSA version's definition to its uses."""
    memssa = svfg.memssa
    # Version definitions, keyed by (function, obj id, version).
    defs: Dict[Tuple[Function, int, int], int] = {}
    for function, table in svfg.formal_in.items():
        for chi in memssa.entry_chis.get(function, []):
            defs[(function, chi.obj.id, chi.new_ver)] = table[chi.obj.id]
    for node in svfg.nodes:
        if isinstance(node, MemPhiNode):
            defs[(node.function, node.memphi.obj.id, node.memphi.new_ver)] = node.id
    for inst, node in svfg.inst_node.items():
        if isinstance(inst, StoreInst):
            for chi in memssa.store_chis.get(inst, []):
                defs[(node.function, chi.obj.id, chi.new_ver)] = node.id
        elif isinstance(inst, CallInst):
            for chi in memssa.call_chis.get(inst, []):
                defs[(node.function, chi.obj.id, chi.new_ver)] = svfg.actual_out[inst][chi.obj.id]

    def link(function: Function, oid: int, ver: int, use_node: int) -> None:
        def_node = defs.get((function, oid, ver))
        if def_node is None:
            raise AnalysisError(
                f"no definition for version {ver} of object id {oid} in @{function.name}"
            )
        svfg.add_indirect_edge(def_node, use_node, oid)

    for node in svfg.nodes:
        if isinstance(node, MemPhiNode):
            for __, ver in node.memphi.incomings.items():
                link(node.function, node.memphi.obj.id, ver, node.id)
    for inst, node in svfg.inst_node.items():
        function = node.function
        if isinstance(inst, LoadInst):
            for mu in memssa.load_mus.get(inst, []):
                link(function, mu.obj.id, mu.ver, node.id)
        elif isinstance(inst, StoreInst):
            for chi in memssa.store_chis.get(inst, []):
                link(function, chi.obj.id, chi.old_ver, node.id)
        elif isinstance(inst, CallInst):
            for mu in memssa.call_mus.get(inst, []):
                link(function, mu.obj.id, mu.ver, svfg.actual_in[inst][mu.obj.id])
            for chi in memssa.call_chis.get(inst, []):
                # Bypass edge: the pre-call value survives callees that do
                # not modify o (sound default; kills still happen at stores
                # within callees).
                link(function, chi.obj.id, chi.old_ver, svfg.actual_out[inst][chi.obj.id])
        elif isinstance(inst, RetInst):
            for mu in memssa.exit_mus.get(function, []):
                link(function, mu.obj.id, mu.ver, svfg.formal_out[function][mu.obj.id])


def _connect_direct_calls(svfg: SVFG) -> None:
    for inst, node in list(svfg.inst_node.items()):
        if isinstance(inst, CallInst) and not inst.is_indirect():
            assert isinstance(inst.callee, Function)
            if not inst.callee.is_declaration:
                svfg.connect_callsite(inst, inst.callee)


def _mark_delta_nodes(svfg: SVFG) -> None:
    """δ nodes: FormalINs of potential indirect-call targets and ActualOUTs
    of indirect call sites (Definition 3), per the auxiliary analysis."""
    andersen = svfg.andersen
    module = svfg.module
    indirect_targets: Set[Function] = set()
    for inst in svfg.inst_node:
        if isinstance(inst, CallInst) and inst.is_indirect():
            for oid, aout in svfg.actual_out.get(inst, {}).items():
                svfg.delta_nodes.add(aout)
            if isinstance(inst.callee, Variable):
                for oid in iter_bits(andersen.pts_mask(inst.callee)):
                    obj = module.objects[oid]
                    if isinstance(obj, FunctionObject):
                        indirect_targets.add(obj.function)
    for function in indirect_targets:
        for oid, fin in svfg.formal_in.get(function, {}).items():
            svfg.delta_nodes.add(fin)
