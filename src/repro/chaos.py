"""``repro-wpa chaos`` — seeded fault-injection soak harness.

Proves the platform-wide resilience contract (DESIGN.md §12) the way a
single targeted test cannot: for every configuration in ``{sfs, vsfs} ×
{serial, --jobs N}`` it runs a fault-free baseline, then replays the
same analysis under a deterministic schedule of injected faults — one
seeded :class:`~repro.runtime.faults.FaultPlan` per run, cycling through
every fault point applicable to the configuration.  Each faulted run
must end in one of four **clean** outcomes:

- ``identical`` — the fault was absorbed (self-healed or retried) and
  the points-to result is bit-identical to the baseline;
- ``collapsed`` — a parallel rung spent its worker failure budget and
  collapsed onto its serial twin: degraded execution, bit-identical
  result (``precision_lost`` is False);
- ``degraded`` — a solver-domain fault walked the precision ladder; the
  answer is a verified sound *superset* of the baseline;
- ``typed-failure`` — fallback was disabled and the run died with a
  typed :class:`~repro.errors.ReproError` (exit code territory, never a
  traceback).

Anything else — wrong masks, an unsound "degraded" answer, an untyped
exception — is ``garbage`` and fails the soak (exit 3).  Seeds are fixed
and the fault plans deterministic, so a failing seed is replayable
bit-for-bit.

Schedules interleave three trigger shapes per seed index: ``once``
(fire on the first hit, then disarm — the heal-and-complete path),
``repeat`` (fire on every hit — retry budgets exhaust, worker budgets
spend, ladders walk), and ``no-fallback`` (solver faults with the
ladder disabled — the typed-failure path).

The default program is the generated ``du`` suite workload — the
smallest benchmark with real call/heap structure, known to shard across
workers — so every fault point is actually reachable.

``--daemon`` soaks the always-on service (:mod:`repro.service`) instead
of the batch pipeline: per (analysis, service fault point, seed) it
boots a fresh daemon on a shared warm store, fires a mixed query burst
(analyze / alias / nullderef / slice) through the faulted request path,
and classifies every response against a fault-free baseline burst:

- ``healed`` — the fault was absorbed (revived worker, cache-less
  session, quarantined store entry) and every answer is bit-identical;
- ``shed`` — admission control turned the fault into a typed
  ``ServiceOverloaded`` with a retry-after hint;
- ``degraded`` — the answer lost precision but is a verified sound
  superset of the baseline (masks / may-alias / warnings / slice nodes);
- ``typed-failure`` — a typed error response (never a dropped
  connection or a traceback on the wire).

Anything else is ``garbage`` and fails the soak.  After the matrix, a
fresh fault-free daemon is **warm-restarted** onto each store and must
answer the whole burst bit-identically to the cold baseline — the
crash-safe-restart contract, checked per query type.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Dict, List, Optional, Tuple

from repro.errors import InjectedFault, ReproError
from repro.runtime.faults import FAULT_DOMAINS, fault_domain

#: Points a serial configuration can reach (parallel transport excluded).
SERIAL_POINTS: Tuple[str, ...] = (FAULT_DOMAINS["solver"]
                                  + FAULT_DOMAINS["io"])

#: Points a --jobs N configuration targets.  Parallel points first so
#: small seed counts still cover the watchdog; solver points are owned
#: by the serial configurations (worker processes run their own solve
#: loops, out of reach of the driver-side plan).
PARALLEL_POINTS: Tuple[str, ...] = (FAULT_DOMAINS["parallel"]
                                    + FAULT_DOMAINS["io"])

#: Points the ``--daemon`` soak targets (the service request path).
SERVICE_POINTS: Tuple[str, ...] = FAULT_DOMAINS["service"]

#: Offset stride between configurations' point cycles: staggers which
#: points each configuration exercises so the default 8-seed matrix
#: covers the full table (asserted by ``--require-coverage``).
_OFFSET_STRIDE = 3


class ChaosRun:
    """One scheduled faulted run and (after execution) its verdict."""

    def __init__(self, analysis: str, jobs: int, seed: int, point: str,
                 trigger: str):
        self.analysis = analysis
        self.jobs = jobs
        self.seed = seed
        self.point = point
        self.trigger = trigger  # "once" | "repeat" | "no-fallback"
        self.outcome = ""  # identical|collapsed|degraded|typed-failure|garbage
        self.detail = ""
        self.fired = 0
        self.heals = 0
        self.degraded_from: Optional[str] = None

    @property
    def domain(self) -> str:
        return fault_domain(self.point)

    @property
    def config(self) -> str:
        return f"{self.analysis}/j{self.jobs}"

    def describe(self) -> str:
        verdict = self.outcome or "pending"
        extra = f" ({self.detail})" if self.detail else ""
        return (f"{self.config} seed={self.seed} {self.point} "
                f"[{self.trigger}] -> {verdict}{extra}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "analysis": self.analysis,
            "jobs": self.jobs,
            "seed": self.seed,
            "point": self.point,
            "domain": self.domain,
            "trigger": self.trigger,
            "outcome": self.outcome,
            "detail": self.detail or None,
            "fired": self.fired,
            "heals": self.heals,
            "degraded_from": self.degraded_from,
        }


def _trigger_for(index: int, point: str) -> str:
    """Deterministic trigger shape for the *index*-th seed of a config.

    Every fourth seed repeat-fires (budget exhaustion paths); every
    fourth, offset by one, disables fallback — but only for solver
    points, whose contract under ``fallback=False`` is a typed raise
    (io/parallel faults are absorbed regardless of fallback).
    """
    if index % 4 == 2:
        return "repeat"
    if index % 4 == 3 and fault_domain(point) == "solver":
        return "no-fallback"
    return "once"


def build_schedule(analyses: List[str], jobs_list: List[int], seeds: int,
                   seed_base: int) -> List[ChaosRun]:
    """The full deterministic run matrix, in execution order."""
    runs: List[ChaosRun] = []
    configs = [(analysis, jobs) for jobs in jobs_list for analysis in analyses]
    for config_index, (analysis, jobs) in enumerate(configs):
        points = PARALLEL_POINTS if jobs > 1 else SERIAL_POINTS
        offset = config_index * _OFFSET_STRIDE
        for index in range(seeds):
            point = points[(index + offset) % len(points)]
            runs.append(ChaosRun(analysis, jobs, seed_base + index, point,
                                 _trigger_for(index, point)))
    return runs


# ---------------------------------------------------------------- execution

def _build_pipeline(source: str, workdir: str, plan):
    from repro.engine import StageCache
    from repro.pipeline import AnalysisPipeline
    from repro.store import ResultStore

    store = ResultStore(os.path.join(workdir, "results"))
    cache = StageCache(os.path.join(workdir, "stages"))
    pipeline = AnalysisPipeline.from_source(
        source, cache=cache, arena_path=store.arena_path, faults=plan)
    return pipeline, store


def _resilient_put(store, pipeline, analysis: str, result, plan) -> None:
    """Store the result, exercising the ``result_store_put`` point the
    way the CLI does: retry transient failures, then skip — a lost cache
    entry never loses a computed answer."""
    from repro.engine.events import heal_event
    from repro.runtime.resilience import IO_RETRY

    if result.report.precision_lost:
        return  # mirrors the CLI: an imprecise answer is never admitted
    bus = pipeline.engine.ctx.bus

    def on_retry(attempt: int, exc: BaseException) -> None:
        bus.emit(heal_event(f"store:{analysis}", "io", "retry",
                            point="result_store_put", attempt=attempt,
                            error=type(exc).__name__))

    try:
        IO_RETRY.run(
            lambda: store.put(pipeline.module, analysis, True, True, result,
                              faults=plan),
            retry_on=(OSError, InjectedFault), on_retry=on_retry)
    except (OSError, InjectedFault) as exc:
        bus.emit(heal_event(f"store:{analysis}", "io", "skip-write",
                            point="result_store_put",
                            error=type(exc).__name__))


def _solve(source: str, analysis: str, jobs: int, mode: Optional[str],
           workdir: str, plan=None, fallback: bool = True):
    """One governed run in *workdir*; returns (result, pipeline, store)."""
    from repro.runtime.checkpoint import CheckpointConfig
    from repro.runtime.degrade import solve_with_ladder

    pipeline, store = _build_pipeline(source, workdir, plan)
    ladder = analysis + "-par" if jobs > 1 else analysis
    checkpoint = CheckpointConfig(os.path.join(workdir, "checkpoints"),
                                  every_steps=25)
    result = solve_with_ladder(pipeline, analysis=ladder, fallback=fallback,
                               faults=plan, checkpoint=checkpoint,
                               jobs=jobs, parallel_mode=mode)
    _resilient_put(store, pipeline, analysis, result, plan)
    return result, pipeline, store


def _make_plan(run: ChaosRun):
    from repro.runtime.faults import FaultPlan

    if run.trigger == "repeat":
        return FaultPlan(point=run.point, probability=1.0, seed=run.seed,
                         once=False)
    return FaultPlan(point=run.point, at_hit=1, seed=run.seed, once=True)


def _sound_superset(baseline: List[int], masks: List[int]) -> bool:
    """Degrading may only ADD may-point-to facts, never drop any."""
    if len(baseline) != len(masks):
        return False
    return all(base & ~mask == 0 for base, mask in zip(baseline, masks))


def execute_run(run: ChaosRun, source: str, mode: Optional[str],
                config_dir: str, baseline_masks: List[int]) -> None:
    """Execute one scheduled run and stamp its verdict on *run*."""
    plan = _make_plan(run)
    workdir = config_dir
    if run.point == "stage_cache_write":
        # Cache writes only happen on a cold store; a private directory
        # keeps the shared warm store warm for the remaining seeds.
        workdir = tempfile.mkdtemp(prefix="cold-", dir=config_dir)
    try:
        result, pipeline, _ = _solve(source, run.analysis, run.jobs, mode,
                                     workdir, plan=plan,
                                     fallback=run.trigger != "no-fallback")
    except ReproError as exc:
        run.outcome = "typed-failure"
        run.detail = type(exc).__name__
    except Exception as exc:  # noqa: BLE001 — garbage detector by design
        run.outcome = "garbage"
        run.detail = f"untyped {type(exc).__name__}: {exc}"
    else:
        report = result.report
        run.heals = len(report.self_heal)
        run.degraded_from = report.degraded_from
        masks = list(result._pt)
        if masks == baseline_masks and not report.precision_lost:
            run.outcome = "collapsed" if report.degraded else "identical"
        elif report.precision_lost and _sound_superset(baseline_masks, masks):
            run.outcome = "degraded"
            run.detail = f"to {report.precision_level}"
        else:
            run.outcome = "garbage"
            run.detail = ("unsound degraded masks"
                          if report.precision_lost else "masks diverged")
    run.fired = len(plan.fired)
    if not plan.fired and run.outcome == "identical":
        run.detail = "not-reached"


def _baseline(source: str, analysis: str, jobs: int, mode: Optional[str],
              workdir: str) -> List[int]:
    """Fault-free reference masks; also warms the store for the seeds."""
    result, _, _ = _solve(source, analysis, jobs, mode, workdir)
    report = result.report
    if report.degraded or report.self_heal:
        raise ReproError(
            f"chaos baseline for {analysis}/j{jobs} was not clean: "
            f"{report.summary()} ({len(report.self_heal)} heals)")
    return list(result._pt)


# ----------------------------------------------------------- daemon soak

#: Run-verdict severity: a burst's verdict is its worst response class.
_DAEMON_SEVERITY = ("healed", "degraded", "shed", "typed-failure", "garbage")


class DaemonRun:
    """One scheduled faulted daemon boot + query burst and its verdict."""

    def __init__(self, analysis: str, seed: int, point: str, trigger: str):
        self.analysis = analysis
        self.seed = seed
        self.point = point
        self.trigger = trigger  # "once" | "repeat"
        self.outcome = ""  # healed|shed|degraded|typed-failure|garbage
        self.detail = ""
        self.fired = 0
        self.classes: List[str] = []  # per-response classification

    @property
    def domain(self) -> str:
        return "service"

    def describe(self) -> str:
        verdict = self.outcome or "pending"
        extra = f" ({self.detail})" if self.detail else ""
        return (f"daemon/{self.analysis} seed={self.seed} {self.point} "
                f"[{self.trigger}] -> {verdict}{extra}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "analysis": self.analysis,
            "seed": self.seed,
            "point": self.point,
            "domain": self.domain,
            "trigger": self.trigger,
            "outcome": self.outcome,
            "detail": self.detail or None,
            "fired": self.fired,
            "responses": self.classes,
        }


def build_daemon_schedule(analyses: List[str], seeds: int,
                          seed_base: int) -> List[DaemonRun]:
    """Full cross product: analyses × service points × seeds."""
    runs: List[DaemonRun] = []
    for analysis in analyses:
        for point in SERVICE_POINTS:
            for index in range(seeds):
                trigger = "repeat" if index % 3 == 2 else "once"
                runs.append(DaemonRun(analysis, seed_base + index, point,
                                      trigger))
    return runs


def _daemon_service(store_dir: str, plan=None):
    from repro.service.server import AnalysisService, ServiceConfig

    config = ServiceConfig(store_dir=store_dir, workers=2,
                           default_deadline_s=None, faults=plan)
    return AnalysisService(config).start()


def _daemon_requests(source: str, analysis: str,
                     probes: Dict[str, Optional[str]]) -> List[Dict]:
    requests: List[Dict] = [
        {"op": "analyze", "id": "q-analyze", "program": source,
         "analysis": analysis},
        {"op": "alias", "id": "q-alias", "program": source,
         "analysis": analysis,
         "params": {"a": probes["a"], "b": probes["b"]}},
        {"op": "nullderef", "id": "q-nullderef", "program": source,
         "analysis": analysis},
    ]
    if probes.get("slice"):
        requests.append(
            {"op": "slice", "id": "q-slice", "program": source,
             "analysis": analysis,
             "params": {"var": probes["slice"], "direction": "backward"}})
    return requests


def _daemon_burst(service, requests: List[Dict]) -> List:
    import json

    return [service.handle_line(json.dumps(request))
            for request in requests]


def _normalize_response(response) -> Dict[str, object]:
    """Wire dict minus the volatile fields (identity = the answer)."""
    payload = response.to_dict()
    for key in ("elapsed_s", "heals", "retries", "cached"):
        payload.pop(key, None)
    return payload


def _daemon_sound(op: str, base: Dict, got: Dict) -> bool:
    """A degraded answer may only ADD may-facts, never drop any."""
    from repro.store.atomic import dec_mask_list

    if op == "analyze":
        return _sound_superset(dec_mask_list(base["masks"]),
                               dec_mask_list(got["masks"]))
    if op == "alias":
        return bool(got["may_alias"]) or not base["may_alias"]
    if op == "nullderef":
        return set(base["warnings"]) <= set(got["warnings"])
    if op == "slice":
        return set(base["nodes"]) <= set(got["nodes"])
    return False


def _classify_response(base_norm: Dict, response) -> Tuple[str, str]:
    """(class, detail) for one faulted-burst response vs its baseline."""
    if not response.ok:
        etype = (response.error or {}).get("type", "")
        if etype == "ServiceOverloaded":
            return "shed", etype
        if etype == "InternalError":
            exc = (response.error or {}).get("exception", "?")
            return "garbage", f"untyped {exc} escaped to the wire"
        return "typed-failure", etype
    if response.precision_lost:
        if _daemon_sound(response.op, base_norm["result"], response.result):
            return "degraded", f"to {response.precision_level}"
        return "garbage", "unsound degraded answer"
    if _normalize_response(response) == base_norm:
        return "healed", ""
    return "garbage", "answer diverged from baseline"


def _daemon_baseline(source: str, analysis: str, store_dir: str,
                     ) -> Tuple[List[Dict], Dict[str, Optional[str]]]:
    """Fault-free reference burst; discovers query probes and warms the
    store.  Returns (normalized responses, probes)."""
    import json

    service = _daemon_service(store_dir)
    try:
        analyze = service.handle_line(json.dumps(
            {"op": "analyze", "id": "probe", "program": source,
             "analysis": analysis}))
        if not analyze.ok:
            raise ReproError(f"daemon baseline analyze failed: "
                             f"{analyze.error}")
        variables = analyze.result["variables"]
        if not variables:
            raise ReproError("daemon soak program has no top-level "
                             "variables to query")
        probes: Dict[str, Optional[str]] = {
            "a": variables[0],
            "b": variables[1] if len(variables) > 1 else variables[0],
            "slice": None,
        }
        for name in variables[:16]:
            response = service.handle_line(json.dumps(
                {"op": "slice", "id": "probe", "program": source,
                 "analysis": analysis, "params": {"var": name}}))
            if response.ok:
                probes["slice"] = name
                break
        responses = _daemon_burst(service,
                                  _daemon_requests(source, analysis, probes))
    finally:
        service.drain(reply_grace_s=10.0)
    for response in responses:
        if not response.ok or response.precision_lost or response.heals:
            raise ReproError(
                f"daemon baseline for {analysis} was not clean: "
                f"{response.encode()}")
    return [_normalize_response(r) for r in responses], probes


def execute_daemon_run(run: DaemonRun, source: str, store_dir: str,
                       baseline: List[Dict],
                       probes: Dict[str, Optional[str]]) -> None:
    """Boot a faulted daemon, fire the burst, stamp the verdict."""
    plan = _make_plan(run)
    try:
        service = _daemon_service(store_dir, plan=plan)
        try:
            responses = _daemon_burst(
                service, _daemon_requests(source, run.analysis, probes))
        finally:
            service.drain(reply_grace_s=10.0)
    except Exception as exc:  # noqa: BLE001 — garbage detector by design
        run.outcome = "garbage"
        run.detail = f"untyped {type(exc).__name__}: {exc}"
        run.fired = len(plan.fired)
        return
    details: List[str] = []
    for base_norm, response in zip(baseline, responses):
        klass, detail = _classify_response(base_norm, response)
        run.classes.append(klass)
        if detail:
            details.append(f"{response.op or 'decode'}: {detail}")
    run.outcome = max(run.classes, key=_DAEMON_SEVERITY.index)
    run.detail = "; ".join(details)
    run.fired = len(plan.fired)
    if not plan.fired and run.outcome == "healed":
        run.detail = "not-reached"


def _daemon_warm_check(source: str, analysis: str, store_dir: str,
                       baseline: List[Dict],
                       probes: Dict[str, Optional[str]]) -> List[str]:
    """Warm-restart a fault-free daemon on the soaked store; every query
    type must answer bit-identically to the cold baseline.  Returns the
    ids of mismatching responses (empty = contract holds)."""
    service = _daemon_service(store_dir)
    try:
        responses = _daemon_burst(service,
                                  _daemon_requests(source, analysis, probes))
    finally:
        service.drain(reply_grace_s=10.0)
    return [response.id for base_norm, response in zip(baseline, responses)
            if _normalize_response(response) != base_norm]


def _daemon_soak(args: argparse.Namespace, analyses: List[str],
                 source: str) -> int:
    runs = build_daemon_schedule(analyses, max(1, args.seeds),
                                 args.seed_base)
    if args.list:
        print(f"--- chaos daemon schedule: {len(runs)} runs ---")
        for run in runs:
            print(f"  daemon/{run.analysis:<5} seed={run.seed:<3} "
                  f"{run.point:<16} [{run.trigger}]")
        return 0
    print(f"--- chaos daemon soak: {len(analyses)} analyses x "
          f"{len(SERVICE_POINTS)} points x {args.seeds} seeds "
          f"= {len(runs)} runs ---")
    warm_failures: List[Tuple[str, List[str]]] = []
    with tempfile.TemporaryDirectory(prefix="repro-chaos-daemon-") as root:
        for analysis in analyses:
            store_dir = os.path.join(root, f"svc-{analysis}")
            try:
                baseline, probes = _daemon_baseline(source, analysis,
                                                    store_dir)
            except ReproError as err:
                print(f"repro-wpa chaos: error: {err}", file=sys.stderr)
                return 3
            for run in [r for r in runs if r.analysis == analysis]:
                execute_daemon_run(run, source, store_dir, baseline, probes)
                print(f"  {run.describe()}")
            mismatches = _daemon_warm_check(source, analysis, store_dir,
                                            baseline, probes)
            if mismatches:
                warm_failures.append((analysis, mismatches))
            else:
                print(f"  daemon/{analysis} warm-restart: bit-identical "
                      f"({len(baseline)} query types)")
    return _daemon_report(runs, warm_failures, args)


def _daemon_report(runs: List[DaemonRun],
                   warm_failures: List[Tuple[str, List[str]]],
                   args: argparse.Namespace) -> int:
    counts: Dict[str, int] = {}
    for run in runs:
        counts[run.outcome] = counts.get(run.outcome, 0) + 1
    garbage = [run for run in runs if run.outcome == "garbage"]
    unclassified = [run for run in runs
                    if run.outcome not in _DAEMON_SEVERITY]
    exercised = {run.point for run in runs if run.fired}
    missing = sorted(set(SERVICE_POINTS) - exercised)

    summary = ", ".join(f"{kind}: {counts[kind]}"
                        for kind in _DAEMON_SEVERITY if kind in counts)
    print(f"outcomes: {summary}")
    print(f"coverage: {len(exercised)}/{len(SERVICE_POINTS)} service fault "
          f"points fired" + (f" (missing: {', '.join(missing)})"
                             if missing else ""))

    ok = (not garbage and not unclassified and not warm_failures
          and not (args.require_coverage and missing))
    for run in garbage + unclassified:
        print(f"repro-wpa chaos: FAIL: {run.describe()}", file=sys.stderr)
    for analysis, ids in warm_failures:
        print(f"repro-wpa chaos: FAIL: daemon/{analysis} warm restart "
              f"diverged from the cold baseline: {', '.join(ids)}",
              file=sys.stderr)
    if ok:
        print("chaos daemon soak passed: no garbage outcomes, "
              "warm restarts bit-identical")
    elif not garbage and not unclassified and not warm_failures:
        print("repro-wpa chaos: FAIL: coverage incomplete "
              "(--require-coverage)", file=sys.stderr)

    if args.output:
        from repro.store.atomic import atomic_write_json

        atomic_write_json(args.output, {
            "mode": "daemon",
            "seeds": args.seeds,
            "seed_base": args.seed_base,
            "runs": [run.to_dict() for run in runs],
            "outcomes": counts,
            "warm_restart": {"failures": [
                {"analysis": analysis, "responses": ids}
                for analysis, ids in warm_failures]},
            "coverage": {"applicable": sorted(SERVICE_POINTS),
                         "exercised": sorted(exercised),
                         "missing": missing},
            "ok": ok,
        })
        print(f"chaos record written to {args.output}")
    return 0 if ok else 3


# ------------------------------------------------------------------ driver

def _default_source() -> str:
    from repro.bench.workloads import SUITE, generate_source

    return generate_source(SUITE["du"])


def chaos_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-wpa chaos``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-wpa chaos",
        description="Seeded fault-injection soak: every run must end "
                    "bit-identical, verifiably degraded, or typed-failed "
                    "- never garbage.")
    parser.add_argument("--daemon", action="store_true",
                        help="soak the always-on analysis service "
                             "(service fault domain: per-point daemon "
                             "boots, mixed query bursts, warm-restart "
                             "bit-identity) instead of the batch pipeline")
    parser.add_argument("--seeds", type=int, default=8, metavar="N",
                        help="seeds per configuration (default 8)")
    parser.add_argument("--seed-base", type=int, default=0, metavar="B",
                        help="first seed value (default 0)")
    parser.add_argument("--analyses", default="sfs,vsfs", metavar="LIST",
                        help="comma-separated staged analyses "
                             "(default sfs,vsfs)")
    parser.add_argument("--jobs", default="1,2", metavar="LIST",
                        help="comma-separated worker counts; 1 = serial "
                             "(default 1,2)")
    parser.add_argument("--parallel-mode", choices=("fork", "inline"),
                        help="parallel transport override (default: the "
                             "driver's choice)")
    parser.add_argument("--program", metavar="FILE",
                        help="mini-C source to soak (default: the "
                             "generated 'du' suite workload)")
    parser.add_argument("--list", action="store_true",
                        help="print the deterministic run schedule and "
                             "exit without executing")
    parser.add_argument("--require-coverage", action="store_true",
                        help="fail (exit 3) unless every applicable fault "
                             "point fired in at least one run")
    parser.add_argument("--output", metavar="FILE",
                        help="write the full soak record as JSON")
    args = parser.parse_args(argv)

    analyses = [a.strip() for a in args.analyses.split(",") if a.strip()]
    for analysis in analyses:
        if analysis not in ("sfs", "vsfs"):
            print(f"repro-wpa chaos: error: unknown analysis {analysis!r} "
                  f"(want sfs/vsfs)", file=sys.stderr)
            return 1
    if args.daemon:
        if args.program is not None and not args.list:
            try:
                with open(args.program) as handle:
                    daemon_source = handle.read()
            except OSError as err:
                print(f"repro-wpa chaos: error: {err}", file=sys.stderr)
                return 1
        else:
            daemon_source = "" if args.list else _default_source()
        return _daemon_soak(args, analyses, daemon_source)
    try:
        jobs_list = sorted({max(1, int(j)) for j in args.jobs.split(",") if j})
    except ValueError:
        print(f"repro-wpa chaos: error: --jobs wants integers, got "
              f"{args.jobs!r}", file=sys.stderr)
        return 1

    runs = build_schedule(analyses, jobs_list, max(1, args.seeds),
                          args.seed_base)
    if args.list:
        print(f"--- chaos schedule: {len(runs)} runs ---")
        for run in runs:
            print(f"  {run.config:<9} seed={run.seed:<3} "
                  f"{run.point:<18} [{run.trigger}]")
        return 0

    if args.program is not None:
        try:
            with open(args.program) as handle:
                source = handle.read()
        except OSError as err:
            print(f"repro-wpa chaos: error: {err}", file=sys.stderr)
            return 1
    else:
        source = _default_source()

    configs = [(analysis, jobs) for jobs in jobs_list for analysis in analyses]
    print(f"--- chaos soak: {len(configs)} configs x {args.seeds} seeds "
          f"= {len(runs)} runs ---")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        for analysis, jobs in configs:
            config_dir = os.path.join(root, f"{analysis}-j{jobs}")
            os.makedirs(config_dir, exist_ok=True)
            try:
                baseline = _baseline(source, analysis, jobs,
                                     args.parallel_mode, config_dir)
            except ReproError as err:
                print(f"repro-wpa chaos: error: {err}", file=sys.stderr)
                return 3
            config_runs = [r for r in runs
                           if r.analysis == analysis and r.jobs == jobs]
            for run in config_runs:
                execute_run(run, source, args.parallel_mode, config_dir,
                            baseline)
                print(f"  {run.describe()}")

    return _report(runs, jobs_list, args)


def _report(runs: List[ChaosRun], jobs_list: List[int],
            args: argparse.Namespace) -> int:
    counts: Dict[str, int] = {}
    for run in runs:
        counts[run.outcome] = counts.get(run.outcome, 0) + 1
    garbage = [run for run in runs if run.outcome == "garbage"]

    applicable = set(SERIAL_POINTS if 1 in jobs_list else ())
    if any(jobs > 1 for jobs in jobs_list):
        applicable.update(PARALLEL_POINTS)
    exercised = {run.point for run in runs if run.fired}
    missing = sorted(applicable - exercised)

    summary = ", ".join(f"{kind}: {counts[kind]}" for kind in
                        ("identical", "collapsed", "degraded",
                         "typed-failure", "garbage") if kind in counts)
    print(f"outcomes: {summary}")
    print(f"coverage: {len(exercised)}/{len(applicable)} applicable fault "
          f"points fired" + (f" (missing: {', '.join(missing)})"
                             if missing else ""))

    ok = not garbage and not (args.require_coverage and missing)
    if garbage:
        print(f"repro-wpa chaos: FAIL: {len(garbage)} garbage outcome(s):",
              file=sys.stderr)
        for run in garbage:
            print(f"  {run.describe()}", file=sys.stderr)
    elif not ok:
        print("repro-wpa chaos: FAIL: coverage incomplete "
              "(--require-coverage)", file=sys.stderr)
    else:
        print("chaos soak passed: no garbage outcomes")

    if args.output:
        from repro.store.atomic import atomic_write_json

        atomic_write_json(args.output, {
            "seeds": args.seeds,
            "seed_base": args.seed_base,
            "runs": [run.to_dict() for run in runs],
            "outcomes": counts,
            "coverage": {"applicable": sorted(applicable),
                         "exercised": sorted(exercised),
                         "missing": missing},
            "ok": ok,
        })
        print(f"chaos record written to {args.output}")
    return 0 if ok else 3


if __name__ == "__main__":
    sys.exit(chaos_main())
