"""``repro-wpa`` — command-line whole-program analysis driver.

Mirrors SVF's ``wpa`` tool from the paper's artifact::

    repro-wpa -ander  program.c        # Andersen's analysis
    repro-wpa -fspta  program.c        # staged flow-sensitive (SFS)
    repro-wpa -vfspta program.c        # versioned SFS (the paper)
    repro-wpa -vfspta --ir program.ir  # textual IR input
    repro-wpa -vfspta --stats --dump-pts program.c
    repro-wpa -vfspta --budget-seconds 5 --report program.c

Prints timing/memory statistics and, with ``--dump-pts``, the points-to set
of every top-level variable.  Budget flags govern the run: on exhaustion the
analysis degrades down the ladder (``vsfs → sfs → andersen``) unless
``--no-fallback`` is given.

Crash safety: ``--checkpoint-dir`` snapshots the in-flight solver on a
cadence (``--checkpoint-every`` pops and/or ``--checkpoint-seconds``) and
when a budget trips; ``--resume`` picks the work back up bit-identically.
``--store`` caches completed results content-addressed by IR hash ×
analysis × ablation flags, and additionally caches intermediate stage
artifacts (``DIR/stages``) so repeat runs skip unchanged substrate.
``--trace`` prints the per-stage breakdown (wall/steps/cache), with the
substrate stages marked excluded from the timed main phase.
``repro-wpa batch ...`` runs a supervised multi-program batch (see
:mod:`repro.batch`); ``repro-wpa chaos ...`` runs the seeded
fault-injection soak harness (see :mod:`repro.chaos`);
``repro-wpa serve ...`` starts the always-on analysis daemon (see
:mod:`repro.service`); ``--list-fault-points`` prints the injectable
fault points by domain.

Resilience: corrupt store/cache entries are quarantined and the answer
recomputed (a warning, not a failure) unless ``--strict-io`` restores
the fail-fast contract.  A parallel rung that collapses onto its serial
twin reports ``degraded_from`` but keeps full precision, so the result
is still stored and the message is a notice, not a warning.

Exit codes: 0 success, 1 I/O error, 2 parse/IR error, 3 analysis error
(including an exhausted budget under ``--no-fallback``, and — under
``--strict-io`` — any rejected or corrupt checkpoint/store artifact),
4 parallel worker-crash budget spent under ``--no-fallback`` (with
fallback the run collapses onto the serial twin instead).  The full
table lives in README.md §Exit codes.
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc
from typing import List, Optional

from repro.errors import (
    CheckpointError,
    IRError,
    ParseError,
    ReproError,
    WorkerCrash,
)

#: CLI exit codes (documented in README.md §Exit codes).  ``batch``
#: treats EXIT_INPUT as a permanent input problem (no retry); every
#: other nonzero code is retried up to its attempt budget.
EXIT_OK = 0
EXIT_IO = 1
EXIT_INPUT = 2
EXIT_ANALYSIS = 3
EXIT_WORKER_CRASH = 4
from repro.pipeline import AnalysisPipeline, _load_resume_state
from repro.runtime.budget import Budget
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.degrade import solve_with_ladder
from repro.runtime.resilience import IO_RETRY


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wpa",
        description="Whole-program pointer analysis (VSFS reproduction of CGO'21)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("-ander", action="store_const", dest="analysis", const="ander",
                      help="flow-insensitive Andersen's analysis")
    mode.add_argument("-fspta", action="store_const", dest="analysis", const="sfs",
                      help="staged flow-sensitive analysis (SFS)")
    mode.add_argument("-vfspta", action="store_const", dest="analysis", const="vsfs",
                      help="versioned staged flow-sensitive analysis (VSFS)")
    mode.add_argument("-icfg-fspta", action="store_const", dest="analysis", const="icfg-fs",
                      help="dense flow-sensitive analysis on the ICFG (slow)")
    parser.add_argument("file", help="mini-C source file (or textual IR with --ir)")
    parser.add_argument("--ir", action="store_true", help="input is textual IR")
    parser.add_argument("--stats", action="store_true", help="print SVFG statistics")
    parser.add_argument("--dump-pts", action="store_true",
                        help="print points-to sets of top-level variables")
    parser.add_argument("--profile", action="store_true",
                        help="print a solver work/dedup report (propagations, "
                             "unions, unique vs referenced sets, union cache)")
    parser.add_argument("--no-delta", action="store_true",
                        help="disable the delta propagation kernel (SFS/VSFS)")
    parser.add_argument("--no-ptrepo", action="store_true",
                        help="disable deduplicated points-to storage (SFS/VSFS)")
    parser.add_argument("--no-mde-batch", action="store_true",
                        help="disable propagation-batch memoisation in the "
                             "staged kernels (dedup-engine ablation; results "
                             "are bit-identical either way)")
    parser.add_argument("--no-arena", action="store_true",
                        help="disable the memory-mapped mask arena that "
                             "--store otherwise shares across runs and "
                             "fork workers")
    parser.add_argument("--budget-seconds", type=float, metavar="S",
                        help="wall-clock budget for the solve phase")
    parser.add_argument("--budget-mb", type=float, metavar="MB",
                        help="traced-memory budget for the solve phase")
    parser.add_argument("--max-steps", type=int, metavar="N",
                        help="solver step (worklist pop) budget")
    parser.add_argument("--no-fallback", action="store_true",
                        help="fail with exit code 3 instead of degrading "
                             "down the ladder when the budget is exhausted")
    parser.add_argument("--strict-io", action="store_true",
                        help="fail (exit 3) on corrupt stage-cache/result-"
                             "store entries instead of quarantining and "
                             "recomputing (the pre-resilience contract)")
    parser.add_argument("--list-fault-points", action="store_true",
                        help="list the injectable fault points by domain "
                             "and exit (see also `repro-wpa chaos`)")
    parser.add_argument("--report", action="store_true",
                        help="print the run report (attempts, budget "
                             "consumed, degradation)")
    parser.add_argument("--trace", action="store_true",
                        help="print the per-stage trace (wall/steps/cache "
                             "per stage; substrate stages are excluded "
                             "from the main phase)")
    parser.add_argument("--report-json", metavar="FILE",
                        help="write the run report as JSON (atomically)")
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="write crash-safe solver checkpoints to DIR")
    parser.add_argument("--checkpoint-every", type=int, default=1000,
                        metavar="N",
                        help="checkpoint cadence in solver steps "
                             "(default 1000; 0 disables the step cadence)")
    parser.add_argument("--checkpoint-seconds", type=float, metavar="S",
                        help="additional wall-clock checkpoint cadence")
    parser.add_argument("--resume", nargs="?", const=True, default=None,
                        metavar="PATH",
                        help="resume from a checkpoint: PATH names a file "
                             "or directory; bare --resume searches "
                             "--checkpoint-dir (fresh start if none found)")
    parser.add_argument("--store", metavar="DIR",
                        help="content-addressed result store: reuse a "
                             "cached result when present, save the result "
                             "on completion; also enables the stage cache "
                             "(DIR/stages) so repeat runs skip unchanged "
                             "substrate stages")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="solve -fspta/-vfspta on N sharded workers "
                             "(repro.parallel); results are bit-identical "
                             "to the serial solve")
    parser.add_argument("--parallel-mode", choices=("fork", "inline"),
                        help="parallel transport override (default: fork "
                             "when available on a multicore host, else "
                             "in-process workers)")
    parser.add_argument("--check-null", action="store_true",
                        help="report dereferences through possibly-null pointers")
    parser.add_argument("--dead-stores", action="store_true",
                        help="report stores no load can observe")
    parser.add_argument("--dot-svfg", metavar="FILE",
                        help="write the SVFG as Graphviz DOT")
    parser.add_argument("--dot-callgraph", metavar="FILE",
                        help="write the resolved call graph as Graphviz DOT")
    parser.set_defaults(analysis="vsfs")
    return parser


def _budget_from(args: argparse.Namespace) -> Optional[Budget]:
    if args.budget_seconds is None and args.budget_mb is None \
            and args.max_steps is None:
        return None
    max_memory = None
    if args.budget_mb is not None:
        max_memory = int(args.budget_mb * 1024 * 1024)
    return Budget(wall_seconds=args.budget_seconds, max_steps=args.max_steps,
                  max_memory_bytes=max_memory)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: I/O errors exit 1, parse/IR errors 2, analysis errors 3."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "batch":
        from repro.batch import batch_main

        return batch_main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.chaos import chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    if "--list-fault-points" in argv:
        # Informational: valid without a program file, so intercept
        # before argparse enforces the positional.
        from repro.runtime.faults import describe_fault_points

        print(describe_fault_points())
        return 0
    args = build_arg_parser().parse_args(argv)
    if isinstance(args.resume, str) and args.resume.endswith((".c", ".ir")):
        # argparse greedily binds "--resume prog.c" as the PATH; a source
        # file is never a checkpoint, so reject with guidance instead of
        # resuming from garbage.
        print(f"repro-wpa: error: --resume consumed {args.resume!r} as its "
              f"PATH; use --resume=PATH or place --resume before another "
              f"flag", file=sys.stderr)
        return 1
    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as err:
        print(f"repro-wpa: error: {err}", file=sys.stderr)
        return EXIT_IO
    try:
        return _run(args, source)
    except ReproError as err:
        print(f"repro-wpa: error: {err}", file=sys.stderr)
        report = getattr(err, "run_report", None)
        if args.report and report is not None:
            print(report.render(), file=sys.stderr)
        if isinstance(err, (ParseError, IRError)):
            return EXIT_INPUT
        if isinstance(err, WorkerCrash):
            # Distinguishable from analysis errors so supervisors can
            # react (e.g. retry serially) without parsing stderr.
            return EXIT_WORKER_CRASH
        return EXIT_ANALYSIS


def _checkpoint_config(args: argparse.Namespace) -> Optional[CheckpointConfig]:
    if args.checkpoint_dir is None:
        return None
    every_steps = args.checkpoint_every if args.checkpoint_every > 0 else None
    return CheckpointConfig(args.checkpoint_dir, every_steps=every_steps,
                            every_seconds=args.checkpoint_seconds)


def _run(args: argparse.Namespace, source: str) -> int:
    store = cache = None
    arena_path = None
    if args.store is not None:
        import os

        from repro.engine import StageCache
        from repro.store import ResultStore

        store = ResultStore(args.store)
        cache = StageCache(os.path.join(args.store, "stages"))
        if not args.no_arena:
            # Persist the mask arena next to the results: warm runs (and
            # fork workers) attach it instead of re-interning from scratch.
            arena_path = store.arena_path
    pipeline = AnalysisPipeline.from_source(
        source, language="ir" if args.ir else "c", cache=cache,
        mde_batch=not args.no_mde_batch, arena_path=arena_path,
        strict_cache=args.strict_io)
    module = pipeline.module
    delta, ptrepo = not args.no_delta, not args.no_ptrepo

    # --jobs routes the staged analyses through the sharded parallel
    # stages.  The result store stays keyed by the serial analysis name:
    # the parallel solve is bit-identical, so serial and parallel runs
    # share cache entries.
    jobs = max(1, args.jobs)
    ladder_analysis = args.analysis
    if jobs > 1:
        if args.analysis not in ("sfs", "vsfs"):
            print("repro-wpa: warning: --jobs applies to -fspta/-vfspta "
                  "only; running serially", file=sys.stderr)
            jobs = 1
        elif args.resume is not None:
            print("repro-wpa: warning: --resume is serial-only; ignoring "
                  "--jobs", file=sys.stderr)
            jobs = 1
        else:
            ladder_analysis = args.analysis + "-par"

    if store is not None:
        # Build (or stage-cache-load) the substrate first: warm runs then
        # report a cache hit for every substrate stage even when the final
        # result also comes straight from the result store.
        pipeline.engine.prime_substrate(args.analysis)
        try:
            cached = store.get(module, args.analysis, delta, ptrepo)
        except CheckpointError as err:
            # Degraded-not-dead: the store already quarantined the bad
            # entry; recompute the answer instead of dying.
            if args.strict_io:
                raise
            from repro.engine.events import heal_event

            pipeline.engine.ctx.bus.emit(heal_event(
                f"solve:{args.analysis}", "io", "recompute",
                point="result_store_get", error=type(err).__name__,
                reason=err.reason, path=err.path))
            print(f"repro-wpa: warning: corrupt result-store entry "
                  f"quarantined ({err.path}); recomputing", file=sys.stderr)
            cached = None
        if cached is not None:
            print(f"repro-wpa: result store hit ({store.last_path})",
                  file=sys.stderr)
            level = "andersen" if args.analysis == "ander" else args.analysis
            pipeline.engine.record_external_hit(f"solve:{level}",
                                                "result-store")
            _print_result(args, cached, run_report=None)
            if args.trace:
                print(pipeline.trace.render())
            if args.report_json:
                _write_report_json(args.report_json, None, store_hit=True,
                                   trace=pipeline.trace)
            return _client_flags(args, module, pipeline, cached)

    # Function-granular incrementality: with a store, look for the last
    # solved solution of this configuration and plan a warm re-solve of
    # just the edit's dirty closure (DESIGN.md §14).  The freshly solved
    # program is captured back into the store for the next edit.
    warm_plan = None
    incr_store = None
    if store is not None and args.analysis in ("sfs", "vsfs") \
            and args.resume is None:
        import os

        from repro.incremental import IncrementalStore, plan_warm

        incr_store = IncrementalStore(
            os.path.join(args.store, "incremental"))
        try:
            payload = incr_store.load(args.analysis, delta, ptrepo)
        except CheckpointError as err:
            if args.strict_io:
                raise
            from repro.engine.events import heal_event

            pipeline.engine.ctx.bus.emit(heal_event(
                f"solve:{args.analysis}", "io", "recompute",
                point="incremental_load", error=type(err).__name__,
                reason=err.reason))
            print(f"repro-wpa: warning: stale incremental solution "
                  f"quarantined ({err.reason}); solving cold",
                  file=sys.stderr)
            payload = None
        if payload is not None:
            warm_plan = plan_warm(
                payload, pipeline.svfg(), pipeline.modref(),
                args.analysis, delta, ptrepo, pipeline.andersen())
            if not warm_plan.usable:
                print(f"repro-wpa: notice: incremental plan fell back "
                      f"({warm_plan.fallback_reason}); solving cold",
                      file=sys.stderr)

    checkpoint = _checkpoint_config(args)
    resume_meta = resume_state = None
    if args.resume is not None:
        resume_meta, resume_state = _load_resume_state(
            module, args.analysis, args.resume, checkpoint, delta, ptrepo)

    tracemalloc.start()
    result = solve_with_ladder(
        pipeline,
        analysis=ladder_analysis,
        budget=_budget_from(args),
        fallback=not args.no_fallback,
        delta=delta,
        ptrepo=ptrepo,
        checkpoint=checkpoint,
        resume_state=resume_state,
        resume_meta=resume_meta,
        jobs=jobs,
        parallel_mode=args.parallel_mode,
        warm_plan=warm_plan,
        capture_regions=incr_store is not None,
    )
    run_report = result.report
    if run_report.precision_lost:
        print(f"repro-wpa: warning: {run_report.summary()}", file=sys.stderr)
    elif run_report.degraded:
        # A parallel rung collapsed onto its serial twin: bit-identical
        # result at full precision, so a notice rather than a warning.
        print(f"repro-wpa: notice: {run_report.summary()} "
              f"(bit-identical serial result)", file=sys.stderr)
    if run_report.resumed:
        print(f"repro-wpa: resumed from step {run_report.resumed_from_step}",
              file=sys.stderr)
    if store is not None and not run_report.precision_lost:
        try:
            path = IO_RETRY.run(
                lambda: store.put(module, args.analysis, delta, ptrepo,
                                  result))
        except OSError as err:
            from repro.engine.events import heal_event

            pipeline.engine.ctx.bus.emit(heal_event(
                f"solve:{args.analysis}", "io", "skip-write",
                point="result_store_put", error=type(err).__name__))
            print(f"repro-wpa: warning: result not stored "
                  f"({type(err).__name__}: {err}); continuing",
                  file=sys.stderr)
        else:
            print(f"repro-wpa: result stored at {path}", file=sys.stderr)
    incr = run_report.incremental
    if incr and not incr.get("fallback_reason"):
        print(f"repro-wpa: incremental: {incr['regions_reused']}/"
              f"{incr['regions_total']} regions reused, "
              f"{len(incr['dirty_functions'])} dirty function(s), "
              f"{incr['steps_saved']} solver steps saved", file=sys.stderr)
    capture = getattr(result, "incremental_capture", None)
    if incr_store is not None and capture is not None \
            and getattr(result.stats, "analysis", None) == args.analysis:
        from repro.incremental import build_payload

        try:
            payload = build_payload(
                pipeline.svfg(), pipeline.modref(), result,
                capture["node_in"], capture["node_out"], capture["flow"],
                args.analysis, delta, ptrepo, pipeline.andersen())
            IO_RETRY.run(lambda: incr_store.save(payload))
        except OSError as err:
            print(f"repro-wpa: warning: incremental solution not stored "
                  f"({type(err).__name__}: {err}); continuing",
                  file=sys.stderr)
    _print_result(args, result, run_report)
    __, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"peak analysis memory: {peak / 1024:.1f} KiB")

    if args.report:
        print(run_report.render())
    if args.trace:
        print(pipeline.trace.render())
    if args.report_json:
        _write_report_json(args.report_json, run_report,
                           trace=pipeline.trace)
    return _client_flags(args, module, pipeline, result)


def _print_result(args: argparse.Namespace, result, run_report) -> None:
    stats = result.stats
    label = getattr(stats, "analysis", "ander")
    if args.analysis == "ander":
        print(f"[ander] solve time: {result.stats.solve_time:.4f}s, "
              f"processed nodes: {result.stats.processed_nodes}, "
              f"copy edges: {result.stats.copy_edges}")
    elif label == "icfg-fs":
        print(f"[icfg-fs] solve time: {stats.solve_time:.4f}s, "
              f"propagations: {stats.propagations}, stored sets: {stats.stored_ptsets}")
    elif label == "andersen":
        # Degraded: Andersen floor repackaged as a flow-sensitive result.
        degraded_from = run_report.degraded_from if run_report else None
        print(f"[andersen] fallback result (degraded from "
              f"{degraded_from}): "
              f"call edges: {stats.callgraph_edges}, "
              f"top-level bits: {stats.top_level_bits}")
    else:
        print(f"[{label}] main phase: {stats.solve_time:.4f}s"
              + (f", versioning: {stats.pre_time:.4f}s" if label == "vsfs" else ""))
        print(f"[{label}] propagations: {stats.propagations}, unions: {stats.unions}, "
              f"stored points-to sets: {stats.stored_ptsets}")
        print(f"[{label}] strong updates: {stats.strong_updates}, "
              f"call edges: {stats.callgraph_edges}")
        parallel = getattr(result, "parallel", None)
        if parallel is not None:
            per_worker = ", ".join(
                f"w{w['worker']}: {w['pops']} pops/{w['solve_s']:.3f}s"
                for w in parallel.workers)
            print(f"[{label}] parallel: {parallel.jobs} workers "
                  f"({parallel.mode}), {parallel.shards} shards over "
                  f"{parallel.components} SCCs, {parallel.rounds} rounds, "
                  f"{parallel.frontier_entries} frontier entries")
            print(f"[{label}] per-worker: {per_worker}")


def _write_report_json(path: str, run_report, store_hit: bool = False,
                       trace=None) -> None:
    from repro.store.atomic import atomic_write_json

    payload = {"store_hit": store_hit,
               "report": run_report.to_dict() if run_report else None,
               # Lifted out of the report for one-line CI assertions.
               "incremental": (run_report.incremental
                               if run_report is not None else None),
               "stages": trace.to_dict() if trace is not None else None,
               "self_heal": list(getattr(trace, "heals", []) or [])}
    atomic_write_json(path, payload)


def _client_flags(args: argparse.Namespace, module, pipeline, result) -> int:
    """The post-solve flags; shared by the solve and store-hit paths."""
    if args.profile:
        from repro.solvers.base import SolverStats

        stats = getattr(result, "stats", None)
        if not isinstance(stats, SolverStats):
            print("--profile needs a staged analysis (-fspta or -vfspta)",
                  file=sys.stderr)
            return 1
        print("--- solver profile ---")
        print(f"delta kernel: {'on' if stats.delta_kernel else 'off'}, "
              f"points-to repository: {'on' if stats.ptrepo_enabled else 'off'}")
        print(f"nodes processed: {stats.nodes_processed}, "
              f"propagations: {stats.propagations}, unions applied: {stats.unions}")
        print(f"stored points-to sets: {stats.stored_ptsets} "
              f"({stats.stored_ptset_bits} bits)")
        if stats.ptrepo_enabled:
            print(f"unique points-to sets: {stats.unique_ptsets} "
                  f"({stats.unique_ptset_bits} bits), "
                  f"dedup ratio: {stats.dedup_ratio():.2f}x")
            print(f"union cache: {stats.union_cache_hits} hits / "
                  f"{stats.union_cache_misses} misses "
                  f"({stats.union_cache_hit_rate():.1%} hit rate)")
            print(f"batch memo: {'on' if stats.mde_batch else 'off'}, "
                  f"{stats.batch_memo_hits} hits / "
                  f"{stats.batch_memo_misses} misses "
                  f"({stats.batch_memo_hit_rate():.1%} hit rate)")
            print(f"dedup memory: {stats.interner_entries} interned sets, "
                  f"{stats.union_cache_entries} union-cache entries, "
                  f"{stats.batch_cache_entries} batch-memo entries, "
                  f"~{stats.dedup_resident_bytes} resident bytes")
            if stats.arena_masks:
                print(f"arena: {stats.arena_masks} masks, "
                      f"{stats.arena_resident_bytes} resident bytes "
                      f"(memory-mapped, shared across runs/workers)")
        incr = getattr(result, "incremental", None)
        if incr is not None:
            entry = incr.to_dict()
            if entry.get("fallback_reason"):
                print(f"incremental: cold solve "
                      f"(fallback={entry['fallback_reason']})")
            else:
                print(f"incremental: {entry['regions_reused']}/"
                      f"{entry['regions_total']} regions reused, "
                      f"{entry['regions_recomputed']} recomputed; "
                      f"{entry['nodes_dirty']}/{entry['nodes_total']} "
                      f"nodes dirty")
                print(f"incremental: dirty functions: "
                      f"{', '.join(entry['dirty_functions']) or '(none)'}")
                print(f"incremental: warm steps: {entry['warm_steps']} "
                      f"(cold baseline {entry['cold_steps_baseline']}, "
                      f"saved {entry['steps_saved']})")

    if args.stats:
        svfg_stats = pipeline.svfg().stats()
        print(f"SVFG: {svfg_stats.num_nodes} nodes, "
              f"{svfg_stats.num_direct_edges} direct edges, "
              f"{svfg_stats.num_indirect_edges} indirect edges, "
              f"{svfg_stats.num_top_level_vars} top-level vars, "
              f"{svfg_stats.num_address_taken_vars} address-taken vars, "
              f"{svfg_stats.num_delta_nodes} delta nodes")

    if args.dump_pts:
        for var in module.variables:
            pts = result.points_to(var) if hasattr(result, "points_to") else set()
            if pts:
                names = ", ".join(sorted(obj.name for obj in pts))
                print(f"pt({var!r}) = {{{names}}}")

    if args.check_null:
        from repro.clients.nullderef import find_null_derefs
        from repro.solvers.base import FlowSensitiveResult

        if not isinstance(result, FlowSensitiveResult):
            print("--check-null needs a flow-sensitive analysis", file=sys.stderr)
            return 1
        report = find_null_derefs(module, result, pipeline.andersen())
        print(f"null-dereference warnings: {len(report)} "
              f"({len(report.flow_sensitive_only())} invisible to Andersen)")
        for warning in report:
            print(f"  {warning.describe()}")

    if args.dead_stores:
        from repro.clients.deadstore import find_dead_stores

        report = find_dead_stores(module, pipeline.svfg())
        print(f"dead stores: {len(report)} (observable: {report.observable})")
        for dead in report:
            print(f"  {dead.describe()}")

    if args.dot_svfg:
        from repro.core.versioning import ObjectVersioning
        from repro.store.atomic import atomic_write_text
        from repro.viz.dot import svfg_to_dot

        svfg = pipeline.svfg()
        versioning = ObjectVersioning(svfg, keep_all_versions=True).run()
        atomic_write_text(args.dot_svfg, svfg_to_dot(svfg,
                                                     versioning=versioning))
        print(f"SVFG written to {args.dot_svfg}")

    if args.dot_callgraph:
        from repro.store.atomic import atomic_write_text
        from repro.viz.dot import callgraph_to_dot

        graph = result.callgraph if hasattr(result, "callgraph") else pipeline.andersen().callgraph
        atomic_write_text(args.dot_callgraph, callgraph_to_dot(graph))
        print(f"call graph written to {args.dot_callgraph}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
