"""``repro-wpa`` — command-line whole-program analysis driver.

Mirrors SVF's ``wpa`` tool from the paper's artifact::

    repro-wpa -ander  program.c        # Andersen's analysis
    repro-wpa -fspta  program.c        # staged flow-sensitive (SFS)
    repro-wpa -vfspta program.c        # versioned SFS (the paper)
    repro-wpa -vfspta --ir program.ir  # textual IR input
    repro-wpa -vfspta --stats --dump-pts program.c

Prints timing/memory statistics and, with ``--dump-pts``, the points-to set
of every top-level variable.
"""

from __future__ import annotations

import argparse
import sys
import tracemalloc
from typing import List, Optional

from repro.pipeline import AnalysisPipeline, module_from


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wpa",
        description="Whole-program pointer analysis (VSFS reproduction of CGO'21)",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("-ander", action="store_const", dest="analysis", const="ander",
                      help="flow-insensitive Andersen's analysis")
    mode.add_argument("-fspta", action="store_const", dest="analysis", const="sfs",
                      help="staged flow-sensitive analysis (SFS)")
    mode.add_argument("-vfspta", action="store_const", dest="analysis", const="vsfs",
                      help="versioned staged flow-sensitive analysis (VSFS)")
    mode.add_argument("-icfg-fspta", action="store_const", dest="analysis", const="icfg-fs",
                      help="dense flow-sensitive analysis on the ICFG (slow)")
    parser.add_argument("file", help="mini-C source file (or textual IR with --ir)")
    parser.add_argument("--ir", action="store_true", help="input is textual IR")
    parser.add_argument("--stats", action="store_true", help="print SVFG statistics")
    parser.add_argument("--dump-pts", action="store_true",
                        help="print points-to sets of top-level variables")
    parser.add_argument("--profile", action="store_true",
                        help="print a solver work/dedup report (propagations, "
                             "unions, unique vs referenced sets, union cache)")
    parser.add_argument("--no-delta", action="store_true",
                        help="disable the delta propagation kernel (SFS/VSFS)")
    parser.add_argument("--no-ptrepo", action="store_true",
                        help="disable deduplicated points-to storage (SFS/VSFS)")
    parser.add_argument("--check-null", action="store_true",
                        help="report dereferences through possibly-null pointers")
    parser.add_argument("--dead-stores", action="store_true",
                        help="report stores no load can observe")
    parser.add_argument("--dot-svfg", metavar="FILE",
                        help="write the SVFG as Graphviz DOT")
    parser.add_argument("--dot-callgraph", metavar="FILE",
                        help="write the resolved call graph as Graphviz DOT")
    parser.set_defaults(analysis="vsfs")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as err:
        print(f"repro-wpa: {err}", file=sys.stderr)
        return 1

    module = module_from(source, language="ir" if args.ir else "c")
    pipeline = AnalysisPipeline(module)

    tracemalloc.start()
    if args.analysis == "ander":
        result = pipeline.andersen()
        print(f"[ander] solve time: {result.stats.solve_time:.4f}s, "
              f"processed nodes: {result.stats.processed_nodes}, "
              f"copy edges: {result.stats.copy_edges}")
    elif args.analysis == "icfg-fs":
        result = pipeline.icfg_fs()
        stats = result.stats
        print(f"[icfg-fs] solve time: {stats.solve_time:.4f}s, "
              f"propagations: {stats.propagations}, stored sets: {stats.stored_ptsets}")
    else:
        pipeline.andersen()  # staged: auxiliary analysis runs first
        staged = pipeline.sfs if args.analysis == "sfs" else pipeline.vsfs
        result = staged(delta=not args.no_delta, ptrepo=not args.no_ptrepo)
        stats = result.stats
        label = args.analysis
        print(f"[{label}] main phase: {stats.solve_time:.4f}s"
              + (f", versioning: {stats.pre_time:.4f}s" if label == "vsfs" else ""))
        print(f"[{label}] propagations: {stats.propagations}, unions: {stats.unions}, "
              f"stored points-to sets: {stats.stored_ptsets}")
        print(f"[{label}] strong updates: {stats.strong_updates}, "
              f"call edges: {stats.callgraph_edges}")
    __, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"peak analysis memory: {peak / 1024:.1f} KiB")

    if args.profile:
        from repro.solvers.base import SolverStats

        stats = getattr(result, "stats", None)
        if not isinstance(stats, SolverStats):
            print("--profile needs a staged analysis (-fspta or -vfspta)",
                  file=sys.stderr)
            return 1
        print("--- solver profile ---")
        print(f"delta kernel: {'on' if stats.delta_kernel else 'off'}, "
              f"points-to repository: {'on' if stats.ptrepo_enabled else 'off'}")
        print(f"nodes processed: {stats.nodes_processed}, "
              f"propagations: {stats.propagations}, unions applied: {stats.unions}")
        print(f"stored points-to sets: {stats.stored_ptsets} "
              f"({stats.stored_ptset_bits} bits)")
        if stats.ptrepo_enabled:
            print(f"unique points-to sets: {stats.unique_ptsets} "
                  f"({stats.unique_ptset_bits} bits), "
                  f"dedup ratio: {stats.dedup_ratio():.2f}x")
            print(f"union cache: {stats.union_cache_hits} hits / "
                  f"{stats.union_cache_misses} misses "
                  f"({stats.union_cache_hit_rate():.1%} hit rate)")

    if args.stats:
        svfg_stats = pipeline.svfg().stats()
        print(f"SVFG: {svfg_stats.num_nodes} nodes, "
              f"{svfg_stats.num_direct_edges} direct edges, "
              f"{svfg_stats.num_indirect_edges} indirect edges, "
              f"{svfg_stats.num_top_level_vars} top-level vars, "
              f"{svfg_stats.num_address_taken_vars} address-taken vars, "
              f"{svfg_stats.num_delta_nodes} delta nodes")

    if args.dump_pts:
        for var in module.variables:
            pts = result.points_to(var) if hasattr(result, "points_to") else set()
            if pts:
                names = ", ".join(sorted(obj.name for obj in pts))
                print(f"pt({var!r}) = {{{names}}}")

    if args.check_null:
        from repro.clients.nullderef import find_null_derefs
        from repro.solvers.base import FlowSensitiveResult

        if not isinstance(result, FlowSensitiveResult):
            print("--check-null needs a flow-sensitive analysis", file=sys.stderr)
            return 1
        report = find_null_derefs(module, result, pipeline.andersen())
        print(f"null-dereference warnings: {len(report)} "
              f"({len(report.flow_sensitive_only())} invisible to Andersen)")
        for warning in report:
            print(f"  {warning.describe()}")

    if args.dead_stores:
        from repro.clients.deadstore import find_dead_stores

        report = find_dead_stores(module, pipeline.svfg())
        print(f"dead stores: {len(report)} (observable: {report.observable})")
        for dead in report:
            print(f"  {dead.describe()}")

    if args.dot_svfg:
        from repro.core.versioning import ObjectVersioning
        from repro.viz.dot import svfg_to_dot

        svfg = pipeline.svfg()
        versioning = ObjectVersioning(svfg, keep_all_versions=True).run()
        with open(args.dot_svfg, "w") as handle:
            handle.write(svfg_to_dot(svfg, versioning=versioning))
        print(f"SVFG written to {args.dot_svfg}")

    if args.dot_callgraph:
        from repro.viz.dot import callgraph_to_dot

        graph = result.callgraph if hasattr(result, "callgraph") else pipeline.andersen().callgraph
        with open(args.dot_callgraph, "w") as handle:
            handle.write(callgraph_to_dot(graph))
        print(f"call graph written to {args.dot_callgraph}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
