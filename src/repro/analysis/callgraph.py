"""The call graph: who may call whom, and from which call site.

Both Andersen's analysis and the flow-sensitive solvers resolve indirect
calls on the fly; they record their discoveries here.  Memory SSA and the
mod/ref analysis consume the Andersen-complete call graph.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.datastructs.graph import DiGraph, strongly_connected_components
from repro.ir.function import Function
from repro.ir.instructions import CallInst
from repro.ir.module import Module


class CallGraph:
    """Call edges at call-site granularity plus a function-level view."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[CallInst, Set[Function]] = {}
        self.callers: Dict[Function, Set[CallInst]] = {}
        self._function_graph: DiGraph = DiGraph()
        for function in module.functions.values():
            self._function_graph.add_node(function)

    def add_edge(self, call: CallInst, callee: Function) -> bool:
        """Record ``call -> callee``; return True if the edge is new."""
        targets = self.callees.setdefault(call, set())
        if callee in targets:
            return False
        targets.add(callee)
        self.callers.setdefault(callee, set()).add(call)
        self._function_graph.add_edge(call.function, callee)
        return True

    def callees_of(self, call: CallInst) -> Set[Function]:
        return self.callees.get(call, set())

    def callsites_of(self, callee: Function) -> Set[CallInst]:
        return self.callers.get(callee, set())

    def call_edges(self) -> Iterator[Tuple[CallInst, Function]]:
        for call, targets in self.callees.items():
            for target in targets:
                yield call, target

    def num_edges(self) -> int:
        return sum(len(targets) for targets in self.callees.values())

    def function_graph(self) -> DiGraph:
        return self._function_graph

    def bottom_up_order(self) -> List[List[Function]]:
        """SCCs of the function-level graph, callees before callers."""
        return strongly_connected_components(self._function_graph)

    def recursive_functions(self) -> Set[Function]:
        recursive: Set[Function] = set()
        for component in self.bottom_up_order():
            if len(component) > 1:
                recursive.update(component)
            elif self._function_graph.has_edge(component[0], component[0]):
                recursive.add(component[0])
        return recursive
