"""Whole-program pointer analyses and their supporting structures.

- :mod:`repro.analysis.andersen` — the flow-insensitive, inclusion-based
  (Andersen-style) points-to analysis used as the *auxiliary analysis* of
  SFS/VSFS (§II-B): field-sensitive, with on-the-fly call graph resolution
  and online cycle collapsing.
- :mod:`repro.analysis.callgraph` — the call graph the analyses build and
  the mod/ref summaries consume.
- :mod:`repro.analysis.modref` — interprocedural mod/ref: which
  address-taken objects each function may read or write (directly or via
  callees), feeding χ/μ placement in memory SSA.
"""

from repro.analysis.andersen import AndersenAnalysis, AndersenResult
from repro.analysis.callgraph import CallGraph
from repro.analysis.modref import ModRefInfo, compute_modref

__all__ = [
    "AndersenAnalysis",
    "AndersenResult",
    "CallGraph",
    "ModRefInfo",
    "compute_modref",
]
