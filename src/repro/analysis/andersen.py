"""Andersen-style (inclusion-based) flow-insensitive points-to analysis.

This is the *auxiliary analysis* of staged flow-sensitive analysis (§II-B):
sound, relatively cheap, and precise enough to build an acceptable SVFG.

Implementation notes
--------------------

- Constraint-graph nodes are dense ints: variable ``v`` is node ``v.id``;
  object ``o`` is node ``V + o.id`` where ``V`` is the (fixed) variable
  count.  Field objects created during solving simply extend the range.
- Points-to sets are int bit masks over object ids (union = ``|``).
- Difference propagation: complex constraints (load/store/field/indirect
  call) are re-evaluated only against the *delta* of a node's points-to set.
- Online cycle collapsing: the copy-edge graph is periodically SCC-collapsed
  (Tarjan + union-find), merging each cycle into one representative — the
  classic optimisation that keeps inclusion-based analysis near-quadratic.
- The call graph is resolved on the fly: when a function object flows into
  an indirect call's callee pointer, parameter/return copy edges appear.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datastructs.bitset import count_bits, iter_bits
from repro.datastructs.graph import DiGraph, strongly_connected_components
from repro.datastructs.unionfind import UnionFind
from repro.datastructs.worklist import FIFOWorkList
from repro.analysis.callgraph import CallGraph
from repro.errors import AnalysisError, BudgetExceeded
from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    CallInst,
    CopyInst,
    FieldInst,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.values import FunctionObject, MemObject, ObjectKind, Variable


@dataclass
class AndersenStats:
    """Counters describing one Andersen run."""

    solve_time: float = 0.0
    processed_nodes: int = 0
    copy_edges: int = 0
    collapse_runs: int = 0
    collapsed_nodes: int = 0
    indirect_calls_resolved: int = 0


class AndersenResult:
    """Flow-insensitive points-to sets plus the resolved call graph."""

    def __init__(
        self,
        module: Module,
        var_pts: List[int],
        obj_pts: List[int],
        callgraph: CallGraph,
        stats: AndersenStats,
    ):
        self.module = module
        self._var_pts = var_pts
        self._obj_pts = obj_pts
        self.callgraph = callgraph
        self.stats = stats

    def snapshot(self) -> Dict[int, int]:
        """var id -> mask for every non-empty set (mirrors the
        flow-sensitive result API; used by tests for bit-identity)."""
        return {vid: mask for vid, mask in enumerate(self._var_pts) if mask}

    def pts_mask(self, var: Variable) -> int:
        """Raw bit mask (over object ids) of pt(var)."""
        if var.id < 0 or var.id >= len(self._var_pts):
            return 0
        return self._var_pts[var.id]

    def obj_pts_mask(self, obj: MemObject) -> int:
        if obj.id < 0 or obj.id >= len(self._obj_pts):
            return 0
        return self._obj_pts[obj.id]

    def points_to(self, var: Variable) -> Set[MemObject]:
        """pt(var) as a set of objects (convenience API)."""
        objects = self.module.objects
        return {objects[oid] for oid in iter_bits(self.pts_mask(var))}

    def object_points_to(self, obj: MemObject) -> Set[MemObject]:
        objects = self.module.objects
        return {objects[oid] for oid in iter_bits(self.obj_pts_mask(obj))}

    def may_alias(self, a: Variable, b: Variable) -> bool:
        """May *a* and *b* point to a common object?"""
        return bool(self.pts_mask(a) & self.pts_mask(b))


class AndersenAnalysis:
    """One-shot solver; construct and :meth:`run`."""

    #: Re-run SCC collapsing after this many worklist pops.
    COLLAPSE_PERIOD = 20_000

    def __init__(self, module: Module, collapse_cycles: bool = True, meter=None,
                 checkpointer=None, ctx=None):
        if ctx is not None:
            meter = ctx.meter if meter is None else meter
            checkpointer = ctx.checkpointer if checkpointer is None else checkpointer
        self.module = module
        self.collapse_cycles = collapse_cycles
        self.meter = meter
        self.checkpointer = checkpointer
        self._resumed = False
        self.var_count = len(module.variables)
        size = self.var_count + len(module.objects)
        # Core solver state, indexed by constraint node.
        self.pts: List[int] = [0] * size
        self.done: List[int] = [0] * size  # delta baseline for complex constraints
        self.copy_succs: List[Set[int]] = [set() for __ in range(size)]
        self.load_dsts: List[List[int]] = [[] for __ in range(size)]
        self.store_srcs: List[List[int]] = [[] for __ in range(size)]
        self.field_dsts: List[List[Tuple[int, int]]] = [[] for __ in range(size)]
        self.indirect_sites: List[List[CallInst]] = [[] for __ in range(size)]
        self.uf = UnionFind(size)
        self.worklist: FIFOWorkList[int] = FIFOWorkList()
        self.callgraph = CallGraph(module)
        self.stats = AndersenStats()
        self._ret_cache: Dict[Function, Optional[RetInst]] = {}

    # -------------------------------------------------------------- node ids

    def var_node(self, var: Variable) -> int:
        if var.id < 0:
            raise AnalysisError(f"variable {var!r} is unregistered; renumber the module")
        return self.uf.find(var.id)

    def obj_node(self, obj: MemObject) -> int:
        node = self.var_count + obj.id
        self._ensure(node)
        return self.uf.find(node)

    def _ensure(self, node: int) -> None:
        while len(self.pts) <= node:
            self.pts.append(0)
            self.done.append(0)
            self.copy_succs.append(set())
            self.load_dsts.append([])
            self.store_srcs.append([])
            self.field_dsts.append([])
            self.indirect_sites.append([])
            self.uf.ensure(len(self.pts) - 1)

    # ------------------------------------------------------------ constraints

    def add_pts(self, node: int, mask: int) -> None:
        node = self.uf.find(node)
        new = self.pts[node] | mask
        if new != self.pts[node]:
            self.pts[node] = new
            self.worklist.push(node)

    def add_copy(self, src: int, dst: int) -> None:
        src, dst = self.uf.find(src), self.uf.find(dst)
        if src == dst:
            return
        if dst not in self.copy_succs[src]:
            self.copy_succs[src].add(dst)
            self.stats.copy_edges += 1
            self.add_pts(dst, self.pts[src])

    def _copy_from_value(self, value: object, dst: int) -> None:
        if isinstance(value, Variable):
            self.add_copy(self.var_node(value), dst)

    def _function_return(self, function: Function) -> Optional[RetInst]:
        if function not in self._ret_cache:
            self._ret_cache[function] = function.exit_inst() if not function.is_declaration else None
        return self._ret_cache[function]

    def _bind_call(self, call: CallInst, callee: Function) -> None:
        """Copy actuals into formals and the return value into the call dst."""
        if callee.is_declaration:
            return
        for arg, param in zip(call.args, callee.params):
            self._copy_from_value(arg, self.var_node(param))
        if call.dst is not None:
            ret = self._function_return(callee)
            if ret is not None and isinstance(ret.value, Variable):
                self.add_copy(self.var_node(ret.value), self.var_node(call.dst))

    def initialise(self) -> None:
        """Generate base constraints from every instruction."""
        for inst in self.module.instructions():
            if isinstance(inst, AllocInst):
                self.add_pts(self.var_node(inst.dst), 1 << inst.obj.id)
            elif isinstance(inst, CopyInst):
                self._copy_from_value(inst.src, self.var_node(inst.dst))
            elif isinstance(inst, PhiInst):
                for __, value in inst.incomings:
                    self._copy_from_value(value, self.var_node(inst.dst))
            elif isinstance(inst, FieldInst):
                if isinstance(inst.base, Variable):
                    base = self.var_node(inst.base)
                    self.field_dsts[base].append((inst.field, self.var_node(inst.dst)))
                    self.worklist.push(base)
            elif isinstance(inst, LoadInst):
                if isinstance(inst.ptr, Variable):
                    ptr = self.var_node(inst.ptr)
                    self.load_dsts[ptr].append(self.var_node(inst.dst))
                    self.worklist.push(ptr)
            elif isinstance(inst, StoreInst):
                if isinstance(inst.ptr, Variable) and isinstance(inst.value, Variable):
                    ptr = self.var_node(inst.ptr)
                    self.store_srcs[ptr].append(self.var_node(inst.value))
                    self.worklist.push(ptr)
            elif isinstance(inst, CallInst):
                if inst.is_indirect():
                    if isinstance(inst.callee, Variable):
                        callee = self.var_node(inst.callee)
                        self.indirect_sites[callee].append(inst)
                        self.worklist.push(callee)
                else:
                    assert isinstance(inst.callee, Function)
                    self.callgraph.add_edge(inst, inst.callee)
                    self._bind_call(inst, inst.callee)

    # ----------------------------------------------------------------- solve

    def _process_delta(self, node: int, delta: int) -> None:
        """Apply complex constraints of *node* against newly seen objects."""
        objects = self.module.objects
        for oid in iter_bits(delta):
            obj = objects[oid]
            if isinstance(obj, FunctionObject):
                # Loads/stores through a function "object" are undefined
                # behaviour; only indirect calls consume function objects.
                for call in self.indirect_sites[node]:
                    if self.callgraph.add_edge(call, obj.function):
                        self.stats.indirect_calls_resolved += 1
                        self._bind_call(call, obj.function)
                continue
            onode = None
            if self.load_dsts[node]:
                onode = self.obj_node(obj)
                for dst in self.load_dsts[node]:
                    self.add_copy(onode, dst)
            if self.store_srcs[node]:
                onode = onode if onode is not None else self.obj_node(obj)
                for src in self.store_srcs[node]:
                    self.add_copy(src, onode)
            if self.field_dsts[node]:
                for offset, dst in self.field_dsts[node]:
                    fobj = self.module.field_object(obj, offset)
                    self.add_pts(dst, 1 << fobj.id)

    def _collapse_sccs(self) -> None:
        """Collapse copy-edge cycles into single representatives."""
        graph: DiGraph[int] = DiGraph()
        for node in range(len(self.pts)):
            if self.uf.find(node) != node:
                continue
            graph.add_node(node)
            for succ in self.copy_succs[node]:
                succ = self.uf.find(succ)
                if succ != node:
                    graph.add_edge(node, succ)
        self.stats.collapse_runs += 1
        for component in strongly_connected_components(graph):
            if len(component) < 2:
                continue
            rep = component[0]
            for other in component[1:]:
                rep = self._merge(rep, other)
            self.worklist.push(self.uf.find(rep))
            self.stats.collapsed_nodes += len(component) - 1

    def _merge(self, a: int, b: int) -> int:
        """Union nodes *a* and *b*, folding all state into the survivor."""
        a, b = self.uf.find(a), self.uf.find(b)
        if a == b:
            return a
        rep = self.uf.union(a, b)
        other = b if rep == a else a
        self.pts[rep] |= self.pts[other]
        self.done[rep] &= self.done[other]  # re-process the union's delta
        self.copy_succs[rep].update(self.copy_succs[other])
        self.copy_succs[rep].discard(rep)
        self.copy_succs[rep].discard(other)
        self.load_dsts[rep].extend(self.load_dsts[other])
        self.store_srcs[rep].extend(self.store_srcs[other])
        self.field_dsts[rep].extend(self.field_dsts[other])
        self.indirect_sites[rep].extend(self.indirect_sites[other])
        self.pts[other] = 0
        self.copy_succs[other] = set()
        self.load_dsts[other] = []
        self.store_srcs[other] = []
        self.field_dsts[other] = []
        self.indirect_sites[other] = []
        return rep

    # ----------------------------------------------------------- persistence

    def snapshot_state(self) -> Dict[str, object]:
        """Constraint-graph state sufficient to continue this solve.

        Copy edges are stored explicitly (not regenerated) because many of
        them were added by on-the-fly call binding; replaying the call
        edges alone could not reconstruct which parameter bindings had
        already happened.  Indirect call sites are stored by instruction id.
        """
        from repro.store.codec import snapshot_call_edges, snapshot_fields

        stats = self.stats
        return {
            "pts": [format(mask, "x") for mask in self.pts],
            "done": [format(mask, "x") for mask in self.done],
            "copy_succs": [sorted(succs) for succs in self.copy_succs],
            "load_dsts": [list(dsts) for dsts in self.load_dsts],
            "store_srcs": [list(srcs) for srcs in self.store_srcs],
            "field_dsts": [[list(pair) for pair in pairs]
                           for pairs in self.field_dsts],
            "indirect_sites": [[call.id for call in sites]
                               for sites in self.indirect_sites],
            "uf": self.uf.snapshot(),
            "worklist": self.worklist.snapshot(),
            "call_edges": snapshot_call_edges(self.callgraph),
            "fields": snapshot_fields(self.module),
            "counters": {
                "processed_nodes": stats.processed_nodes,
                "copy_edges": stats.copy_edges,
                "collapse_runs": stats.collapse_runs,
                "collapsed_nodes": stats.collapsed_nodes,
                "indirect_calls_resolved": stats.indirect_calls_resolved,
            },
        }

    def restore_state(self, payload: Dict[str, object], step: int) -> None:
        """Reload :meth:`snapshot_state`; :meth:`run` then continues it."""
        from repro.errors import CheckpointError
        from repro.store.codec import (
            call_sites_by_id,
            replay_fields,
            resolve_call_edge,
        )

        try:
            replay_fields(self.module, payload["fields"])
            pts = [int(text, 16) for text in payload["pts"]]
            done = [int(text, 16) for text in payload["done"]]
            copy_succs = [set(succs) for succs in payload["copy_succs"]]
            load_dsts = [[int(d) for d in dsts] for dsts in payload["load_dsts"]]
            store_srcs = [[int(s) for s in srcs] for srcs in payload["store_srcs"]]
            field_dsts = [[(int(offset), int(dst)) for offset, dst in pairs]
                          for pairs in payload["field_dsts"]]
            sites_index = call_sites_by_id(self.module)
            indirect_sites: List[List[CallInst]] = []
            for inst_ids in payload["indirect_sites"]:
                sites: List[CallInst] = []
                for inst_id in inst_ids:
                    call = sites_index.get(inst_id)
                    if call is None:
                        raise CheckpointError(
                            f"indirect site {inst_id} is not a call here")
                    sites.append(call)
                indirect_sites.append(sites)
            lengths = {len(pts), len(done), len(copy_succs), len(load_dsts),
                       len(store_srcs), len(field_dsts), len(indirect_sites)}
            # Snapshot arrays can only have grown past the fresh solver's
            # universe (growth is lazy, per touched object node).
            if len(lengths) != 1 or len(pts) < len(self.pts):
                raise CheckpointError("constraint-graph arrays disagree in length")
            uf = UnionFind.from_snapshot(payload["uf"])
            if len(uf) != len(pts):
                raise CheckpointError("union-find universe disagrees with arrays")
            self.pts = pts
            self.done = done
            self.copy_succs = copy_succs
            self.load_dsts = load_dsts
            self.store_srcs = store_srcs
            self.field_dsts = field_dsts
            self.indirect_sites = indirect_sites
            self.uf = uf
            self.worklist.restore(
                {"items": [int(node) for node in payload["worklist"]["items"]]})
            # Call edges: graph membership only.  The parameter/return copy
            # edges binding already happened before the snapshot and is part
            # of copy_succs, so _bind_call must NOT run again.
            for inst_id, callee_name in payload["call_edges"]:
                call, callee = resolve_call_edge(self.module, sites_index,
                                                 inst_id, callee_name)
                self.callgraph.add_edge(call, callee)
            counters = payload["counters"]
            self.stats.processed_nodes = counters["processed_nodes"]
            self.stats.copy_edges = counters["copy_edges"]
            self.stats.collapse_runs = counters["collapse_runs"]
            self.stats.collapsed_nodes = counters["collapsed_nodes"]
            self.stats.indirect_calls_resolved = counters["indirect_calls_resolved"]
        except CheckpointError:
            raise
        except (KeyError, ValueError, TypeError, IndexError, AttributeError) as err:
            raise CheckpointError(
                f"checkpoint payload does not restore cleanly: "
                f"{type(err).__name__}: {err}", reason="corrupt") from err
        self._resumed = True
        if self.checkpointer is not None:
            self.checkpointer.mark_resumed(step)

    # ------------------------------------------------------------------- run

    def run(self) -> AndersenResult:
        start = time.perf_counter()
        meter = self.meter
        try:
            return self._run(start, meter)
        except BudgetExceeded as exc:
            self.stats.solve_time = time.perf_counter() - start
            exc.attach(stage="andersen", stats=self.stats,
                       partial_result=self._result())
            if self.checkpointer is not None:
                try:
                    exc.checkpoint_path = self.checkpointer.save(
                        self, self.stats.processed_nodes, reason="budget")
                except OSError:
                    pass  # a full disk must not mask the budget signal
            raise

    def _run(self, start: float, meter) -> AndersenResult:
        if meter is not None:
            meter.start()
            meter.check()
        tick = meter.tick if meter is not None else None
        checkpointer = self.checkpointer
        if not self._resumed:
            # A resumed run restores constraints, points-to sets, and the
            # mid-solve worklist; re-generating base constraints (or
            # re-collapsing eagerly) would only duplicate restored state.
            self.initialise()
            if self.collapse_cycles:
                self._collapse_sccs()
        pops_since_collapse = 0
        while self.worklist:
            if tick is not None:
                tick()
            if checkpointer is not None:
                checkpointer.maybe(self, self.stats.processed_nodes)
            node = self.worklist.pop()
            rep = self.uf.find(node)
            if rep != node:
                self.worklist.push(rep)
                continue
            self.stats.processed_nodes += 1
            pops_since_collapse += 1
            delta = self.pts[node] & ~self.done[node]
            if delta:
                self.done[node] = self.pts[node]
                self._process_delta(node, delta)
            # Propagate along copy edges (full set; cheap with masks).
            for succ in list(self.copy_succs[node]):
                succ_rep = self.uf.find(succ)
                if succ_rep == node:
                    continue
                new = self.pts[succ_rep] | self.pts[node]
                if new != self.pts[succ_rep]:
                    self.pts[succ_rep] = new
                    self.worklist.push(succ_rep)
            if self.collapse_cycles and pops_since_collapse >= self.COLLAPSE_PERIOD:
                self._collapse_sccs()
                pops_since_collapse = 0
        self.stats.solve_time = time.perf_counter() - start
        return self._result()

    def _result(self) -> AndersenResult:
        var_pts = [self.pts[self.uf.find(vid)] for vid in range(self.var_count)]
        obj_pts = [
            self.pts[self.uf.find(self.var_count + oid)]
            if self.var_count + oid < len(self.uf) else 0
            for oid in range(len(self.module.objects))
        ]
        return AndersenResult(self.module, var_pts, obj_pts, self.callgraph, self.stats)


def run_andersen(module: Module, collapse_cycles: bool = True,
                 meter=None, checkpointer=None) -> AndersenResult:
    """Convenience wrapper: run Andersen's analysis on *module*."""
    return AndersenAnalysis(module, collapse_cycles, meter=meter,
                            checkpointer=checkpointer).run()
