"""Interprocedural mod/ref analysis.

For every function ``F`` compute, as bit masks over object ids:

- ``mod[F]`` — address-taken objects *F* may write (its own stores plus,
  transitively, its callees');
- ``ref[F]`` — objects *F* may read (loads plus callees').

These drive χ/μ placement in memory SSA (§II-B): a call site is annotated
with ``μ(o)`` for objects its callees may *use* and ``o = χ(o)`` for objects
they may *modify*; ``FUNENTRY``/``FUNEXIT`` get the mirror annotations.

Because a weak update (``o₂ = χ(o₁)``) *observes* the old value, the objects
flowing into a function are ``mod ∪ ref`` while the objects flowing out are
``mod`` — helpers :meth:`ModRefInfo.in_objs`/:meth:`ModRefInfo.out_objs`.

The fixed point runs over the Andersen-resolved call graph in callee-first
SCC order (one inner worklist pass per cyclic component).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.analysis.andersen import AndersenResult
from repro.analysis.callgraph import CallGraph
from repro.datastructs.bitset import iter_bits
from repro.ir.function import Function
from repro.ir.instructions import CallInst, LoadInst, StoreInst
from repro.ir.module import Module
from repro.ir.values import FunctionObject, Variable


class ModRefInfo:
    """mod/ref masks per function, plus per-call-site views."""

    def __init__(self, module: Module, callgraph: CallGraph):
        self.module = module
        self.callgraph = callgraph
        self.mod: Dict[Function, int] = {}
        self.ref: Dict[Function, int] = {}

    def in_objs(self, function: Function) -> int:
        """Objects whose value flows *into* the function (mod ∪ ref)."""
        return self.mod.get(function, 0) | self.ref.get(function, 0)

    def out_objs(self, function: Function) -> int:
        """Objects whose value flows *out of* the function (mod)."""
        return self.mod.get(function, 0)

    def call_mu_objs(self, call: CallInst) -> int:
        """Objects to annotate ``μ(o)`` at *call* (union over known callees)."""
        mask = 0
        for callee in self.callgraph.callees_of(call):
            mask |= self.in_objs(callee)
        return mask

    def call_chi_objs(self, call: CallInst) -> int:
        """Objects to annotate ``o = χ(o)`` at *call*."""
        mask = 0
        for callee in self.callgraph.callees_of(call):
            mask |= self.out_objs(callee)
        return mask


def _strip_function_objects(module: Module, mask: int) -> int:
    """Function 'objects' carry no mutable state; drop them from mod/ref."""
    for oid in list(iter_bits(mask)):
        if isinstance(module.objects[oid], FunctionObject):
            mask &= ~(1 << oid)
    return mask


def compute_modref(module: Module, andersen: AndersenResult) -> ModRefInfo:
    """Compute interprocedural mod/ref over the Andersen call graph."""
    callgraph = andersen.callgraph
    info = ModRefInfo(module, callgraph)

    # ---- Local (intraprocedural) effects.
    for function in module.functions.values():
        mod = 0
        ref = 0
        for inst in function.instructions():
            if isinstance(inst, StoreInst) and isinstance(inst.ptr, Variable):
                mod |= andersen.pts_mask(inst.ptr)
            elif isinstance(inst, LoadInst) and isinstance(inst.ptr, Variable):
                ref |= andersen.pts_mask(inst.ptr)
        info.mod[function] = _strip_function_objects(module, mod)
        info.ref[function] = _strip_function_objects(module, ref)

    # ---- Propagate callee effects to callers, callee-first.
    components = callgraph.bottom_up_order()
    for component in components:
        members = set(component)
        changed = True
        while changed:
            changed = False
            for function in component:
                mod = info.mod[function]
                ref = info.ref[function]
                for inst in function.instructions():
                    if not isinstance(inst, CallInst):
                        continue
                    for callee in callgraph.callees_of(inst):
                        mod |= info.mod.get(callee, 0)
                        ref |= info.ref.get(callee, 0)
                if mod != info.mod[function] or ref != info.ref[function]:
                    info.mod[function] = mod
                    info.ref[function] = ref
                    # Only cyclic components need re-iteration.
                    changed = len(members) > 1
    return info
