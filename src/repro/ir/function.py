"""Functions: parameter list, basic blocks, and the synthetic FUNENTRY node."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from repro.ir.instructions import FunEntryInst, Instruction, RetInst
from repro.ir.types import FunctionType, PTR, Type, VOID
from repro.ir.values import Variable

if TYPE_CHECKING:
    from repro.ir.basicblock import BasicBlock
    from repro.ir.module import Module
    from repro.ir.values import FunctionObject


class Function:
    """A function definition (or declaration, when it has no blocks).

    Each function owns:

    - :attr:`params` — top-level variables bound at calls;
    - :attr:`entry_inst` — the unique ``FUNENTRY`` instruction, always the
      first instruction of the entry block (inserted automatically);
    - :attr:`blocks` — the CFG, whose first element is the entry block.

    The unique ``FUNEXIT`` (a :class:`RetInst`) is guaranteed by the
    unify-returns pass (:func:`repro.passes.unify_returns.unify_returns`).
    """

    def __init__(self, name: str, params: Optional[List[Variable]] = None, ret_type: Type = VOID):
        from repro.ir.basicblock import BasicBlock

        self.name = name
        self.params: List[Variable] = params or []
        self.ret_type = ret_type
        self.type = FunctionType(ret_type, tuple(param.type for param in self.params))
        self.module: Optional["Module"] = None
        self.blocks: List[BasicBlock] = []
        self._block_names: Dict[str, BasicBlock] = {}
        self.entry_inst = FunEntryInst(self)
        self.obj: Optional["FunctionObject"] = None  # set when address-taken
        self.is_declaration = True

    # ------------------------------------------------------------------ CFG

    def add_block(self, name: str) -> "BasicBlock":
        from repro.ir.basicblock import BasicBlock

        if name in self._block_names:
            raise ValueError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name, self)
        if not self.blocks:
            # The entry block starts with the FUNENTRY instruction.
            block.instructions.append(self.entry_inst)
            self.entry_inst.block = block
            self.is_declaration = False
        self.blocks.append(block)
        self._block_names[name] = block
        return block

    def block(self, name: str) -> "BasicBlock":
        return self._block_names[name]

    @property
    def entry_block(self) -> "BasicBlock":
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    def exit_inst(self) -> Optional[RetInst]:
        """The unique FUNEXIT instruction, or None for declarations.

        Raises if the function still has multiple returns (run the
        unify-returns pass first).
        """
        rets = [
            inst
            for block in self.blocks
            for inst in block.instructions
            if isinstance(inst, RetInst)
        ]
        if not rets:
            return None
        if len(rets) > 1:
            raise ValueError(f"function {self.name} has {len(rets)} returns; run unify_returns")
        return rets[0]

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def remove_instruction(self, inst: Instruction) -> None:
        assert inst.block is not None
        inst.block.instructions.remove(inst)
        inst.block = None

    def __repr__(self) -> str:
        return f"<function @{self.name}>"
