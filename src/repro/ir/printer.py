"""Textual rendering of IR, round-trippable through :mod:`repro.ir.parser`.

The syntax mirrors the paper's notation where readable and LLVM where not::

    func @swap(%p, %q) {
    entry:
      %x = load %p
      %y = load %q
      store %p, %y
      store %q, %x
      ret
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.instructions import (
    AllocInst,
    BinOpInst,
    BranchInst,
    CallInst,
    CmpInst,
    CopyInst,
    FieldInst,
    FunEntryInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import ObjectKind

_ALLOC_KEYWORD = {
    ObjectKind.STACK: "alloca",
    ObjectKind.GLOBAL: "global_alloc",
    ObjectKind.HEAP: "malloc",
    ObjectKind.FUNCTION: "funaddr",
    ObjectKind.FIELD: "fieldobj",  # never emitted by frontends
}


def format_instruction(inst: Instruction) -> str:
    """One-line textual form of *inst* (without label or indentation)."""
    if isinstance(inst, AllocInst):
        if inst.obj.kind is ObjectKind.FUNCTION:
            from repro.ir.values import FunctionObject

            assert isinstance(inst.obj, FunctionObject)
            return f"{inst.dst!r} = funaddr @{inst.obj.function.name}"
        keyword = _ALLOC_KEYWORD[inst.obj.kind]
        suffix = f", fields {inst.obj.num_fields}" if inst.obj.num_fields else ""
        return f"{inst.dst!r} = {keyword} {inst.obj.name}{suffix}"
    if isinstance(inst, CopyInst):
        return f"{inst.dst!r} = copy {inst.src!r}"
    if isinstance(inst, PhiInst):
        incomings = ", ".join(f"[{block.name}: {value!r}]" for block, value in inst.incomings)
        return f"{inst.dst!r} = phi {incomings}"
    if isinstance(inst, FieldInst):
        return f"{inst.dst!r} = field {inst.base!r}, {inst.field}"
    if isinstance(inst, LoadInst):
        return f"{inst.dst!r} = load {inst.ptr!r}"
    if isinstance(inst, StoreInst):
        return f"store {inst.ptr!r}, {inst.value!r}"
    if isinstance(inst, CallInst):
        target = f"@{inst.callee.name}" if not inst.is_indirect() else repr(inst.callee)
        args = ", ".join(repr(arg) for arg in inst.args)
        prefix = f"{inst.dst!r} = " if inst.dst is not None else ""
        return f"{prefix}call {target}({args})"
    if isinstance(inst, RetInst):
        return f"ret {inst.value!r}" if inst.value is not None else "ret"
    if isinstance(inst, BranchInst):
        if inst.cond is None:
            return f"br {inst.targets[0].name}"
        return f"br {inst.cond!r}, {inst.targets[0].name}, {inst.targets[1].name}"
    if isinstance(inst, CmpInst):
        return f"{inst.dst!r} = cmp {inst.op} {inst.lhs!r}, {inst.rhs!r}"
    if isinstance(inst, BinOpInst):
        return f"{inst.dst!r} = binop {inst.op} {inst.lhs!r}, {inst.rhs!r}"
    if isinstance(inst, FunEntryInst):
        params = ", ".join(repr(param) for param in inst.func.params)
        return f"funentry({params})"
    return f"<unknown {type(inst).__name__}>"


def print_function(function: Function, show_labels: bool = False) -> str:
    params = ", ".join(repr(param) for param in function.params)
    if function.is_declaration:
        return f"declare @{function.name}({params})\n"
    lines: List[str] = [f"func @{function.name}({params}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            if isinstance(inst, FunEntryInst) and not show_labels:
                continue  # implicit in the textual form
            label = f"  ; l{inst.id}" if show_labels and inst.id >= 0 else ""
            lines.append(f"  {format_instruction(inst)}{label}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def print_module(module: Module, show_labels: bool = False) -> str:
    parts = [f"; module {module.name}"]
    parts.extend(print_function(func, show_labels) for func in module.functions.values())
    return "\n".join(parts)
