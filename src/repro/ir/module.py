"""The Module: a whole program plus its value/object registries.

A module owns every function, top-level variable and abstract memory object,
and assigns each a dense integer id.  Ids index the bit-set universes used by
every solver, so they are allocated once (:meth:`Module.renumber`) after the
IR has been built and transformed, and only *grow* afterwards (Andersen's
analysis derives field objects lazily).

Global variables are modelled uniformly: the frontend creates a synthetic
``__module_init__`` function that allocates global objects, runs initialiser
stores, and finally calls ``main``.  The analyses treat ``__module_init__``
as the program entry, which gives globals flow-sensitive treatment for free.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.values import FunctionObject, MemObject, ObjectKind, Variable

INIT_FUNCTION = "__module_init__"


class Module:
    """A program: functions, globals, and dense id registries."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.variables: List[Variable] = []
        self.objects: List[MemObject] = []
        self._field_cache: Dict[Tuple[int, int], MemObject] = {}
        self._numbered = False
        self._next_inst_id = 0

    # -------------------------------------------------------------- functions

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise IRError(f"duplicate function @{function.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named @{name}") from None

    def entry_function(self) -> Function:
        """The analysis entry: ``__module_init__`` if present, else ``main``."""
        if INIT_FUNCTION in self.functions:
            return self.functions[INIT_FUNCTION]
        if "main" in self.functions:
            return self.functions["main"]
        raise IRError("module has neither __module_init__ nor main")

    def function_object(self, function: Function) -> FunctionObject:
        """The address-taken object for *function* (created on first use)."""
        if function.obj is None:
            function.obj = FunctionObject(function)
            self._register_object(function.obj)
        return function.obj

    # ---------------------------------------------------------------- objects

    def _register_object(self, obj: MemObject) -> MemObject:
        obj.id = len(self.objects)
        self.objects.append(obj)
        return obj

    def new_object(
        self,
        name: str,
        kind: ObjectKind,
        alloc_site: Optional[object] = None,
        num_fields: int = 0,
    ) -> MemObject:
        return self._register_object(
            MemObject(name, kind, alloc_site=alloc_site, num_fields=num_fields)
        )

    def field_object(self, base: MemObject, offset: int) -> MemObject:
        """The field object ``base.f_offset``, collapsing fields-of-fields.

        Implements the paper's ``FIELD-ADDR`` rules: field objects are
        always rooted at a non-field base, with flattened offsets, and
        offset 0 of an object is the object itself (matching SVF, where a
        pointer to an aggregate aliases its first field).
        """
        if base.is_field():
            assert base.base is not None
            offset += base.offset
            base = base.base
        if offset == 0:
            return base
        if base.num_fields and offset >= base.num_fields:
            # Out-of-bounds / unknown offsets collapse to the base object
            # (field-insensitive fallback, sound).
            return base
        key = (base.id, offset)
        field = self._field_cache.get(key)
        if field is None:
            field = MemObject(f"{base.name}.f{offset}", ObjectKind.FIELD, base=base, offset=offset)
            field.is_singleton = base.is_singleton
            self._register_object(field)
            self._field_cache[key] = field
        return field

    # -------------------------------------------------------------- variables

    def register_variable(self, var: Variable) -> Variable:
        if var.id == -1:
            var.id = len(self.variables)
            self.variables.append(var)
        return var

    # -------------------------------------------------------------- numbering

    def register_instruction(self, inst: Instruction) -> None:
        """Assign a module-unique label (the paper's ℓ) to *inst*."""
        if inst.id == -1:
            inst.id = self._next_inst_id
            self._next_inst_id += 1

    def renumber(self) -> None:
        """(Re)assign dense ids to every instruction and variable.

        Deterministic: functions in insertion order, blocks in order,
        instructions in order.  Objects keep their registration order.
        Idempotent; call after the last IR-mutating pass.
        """
        self._next_inst_id = 0
        for var in self.variables:
            var.id = -1
        self.variables = []
        for function in self.functions.values():
            for param in function.params:
                self.register_variable(param)
            for block in function.blocks:
                for inst in block.instructions:
                    inst.id = -1
        for function in self.functions.values():
            for block in function.blocks:
                for inst in block.instructions:
                    self.register_instruction(inst)
                    result = inst.result()
                    if result is not None:
                        self.register_variable(result)
                    for operand in inst.operands():
                        if isinstance(operand, Variable):
                            self.register_variable(operand)
        self._numbered = True

    def instructions(self) -> Iterator[Instruction]:
        for function in self.functions.values():
            yield from function.instructions()

    def num_instructions(self) -> int:
        return sum(1 for __ in self.instructions())

    def __repr__(self) -> str:
        return f"<module {self.name}: {len(self.functions)} functions, {len(self.objects)} objects>"
