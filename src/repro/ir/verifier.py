"""Structural well-formedness checks for IR modules.

The verifier enforces the invariants the analyses rely on:

- every block of a defined function ends in exactly one terminator;
- branch targets belong to the same function;
- ``PHI`` incomings name actual CFG predecessors, one per predecessor;
- direct calls pass as many arguments as the callee declares parameters
  (varargs are not modelled);
- in *partial SSA* mode (``ssa=True``, i.e. after mem2reg), every top-level
  variable has at most one static definition, and the entry block has the
  ``FUNENTRY`` instruction first.

Raises :class:`repro.errors.IRError` listing every violation found.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.instructions import BranchInst, CallInst, FunEntryInst, PhiInst, RetInst
from repro.ir.module import Module
from repro.ir.values import Variable


def verify_function(function: Function, ssa: bool = False) -> List[str]:
    """Return a list of violation messages for *function* (empty if OK)."""
    problems: List[str] = []
    if function.is_declaration:
        return problems
    name = function.name

    if not function.blocks:
        problems.append(f"@{name}: defined function with no blocks")
        return problems
    first = function.entry_block.instructions[0] if function.entry_block.instructions else None
    if not isinstance(first, FunEntryInst):
        problems.append(f"@{name}: entry block must start with FUNENTRY")

    block_set = set(function.blocks)
    preds: Dict[object, List[object]] = {block: [] for block in function.blocks}
    for block in function.blocks:
        term = block.terminator()
        if term is None:
            problems.append(f"@{name}:{block.name}: block is not terminated")
            continue
        for inst in block.instructions[:-1]:
            if inst.is_terminator():
                problems.append(f"@{name}:{block.name}: terminator not at block end")
        if isinstance(term, BranchInst):
            for target in term.targets:
                if target not in block_set:
                    problems.append(f"@{name}:{block.name}: branch to foreign block {target.name}")
                else:
                    preds[target].append(block)

    for block in function.blocks:
        pred_set = set(preds[block])
        for phi in block.phis():
            incoming_blocks = [inc_block for inc_block, __ in phi.incomings]
            if len(set(incoming_blocks)) != len(incoming_blocks):
                problems.append(f"@{name}:{block.name}: phi has duplicate incoming blocks")
            for inc_block in incoming_blocks:
                if inc_block not in pred_set:
                    problems.append(
                        f"@{name}:{block.name}: phi incoming from non-predecessor {inc_block.name}"
                    )
            if pred_set and set(incoming_blocks) != pred_set:
                missing = {pred.name for pred in pred_set} - {blk.name for blk in incoming_blocks}
                if missing:
                    problems.append(
                        f"@{name}:{block.name}: phi missing incomings for {sorted(missing)}"
                    )

    for inst in function.instructions():
        if isinstance(inst, CallInst) and not inst.is_indirect():
            callee = inst.callee
            if not callee.is_declaration and len(inst.args) != len(callee.params):
                problems.append(
                    f"@{name}: call to @{callee.name} passes {len(inst.args)} args, "
                    f"expected {len(callee.params)}"
                )

    if ssa:
        defined: Dict[Variable, int] = {}
        for param in function.params:
            defined[param] = defined.get(param, 0) + 1
        for inst in function.instructions():
            result = inst.result()
            if result is not None:
                defined[result] = defined.get(result, 0) + 1
        for var, count in defined.items():
            if count > 1:
                problems.append(f"@{name}: variable {var!r} has {count} definitions (not SSA)")

    return problems


def verify_module(module: Module, ssa: bool = False) -> None:
    """Verify every function; raise :class:`IRError` on any violation."""
    problems: List[str] = []
    seen_globals: Dict[str, Function] = {}
    for function in module.functions.values():
        problems.extend(verify_function(function, ssa=ssa))
        rets = [inst for inst in function.instructions() if isinstance(inst, RetInst)]
        if not function.is_declaration and not rets:
            problems.append(f"@{function.name}: no return instruction")
    if problems:
        raise IRError("module verification failed:\n  " + "\n  ".join(problems))
