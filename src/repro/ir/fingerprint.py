"""Function-granular content fingerprints and stable entity keys.

The incremental spine (see DESIGN.md §14) needs two things the dense
integer id spaces cannot give it:

1. **Per-function content hashes** whose value depends only on the
   function's own content — editing one function never perturbs a
   sibling's hash.  The printed IR is *not* that normal form: the
   frontend's SSA rename suffixes (``%w.5``) come from a module-global
   counter, so an edit upstream shifts every later function's names.
   :func:`function_fingerprint` therefore serialises structurally,
   renaming locals to per-function ordinals and blocks to per-function
   indices, so nothing module-global leaks in.
   The scheme-2 module fingerprint is the hash of the per-function
   hashes **in insertion order** — deliberately order-sensitive,
   because :meth:`Module.renumber` assigns dense ids in insertion
   order and every id-indexed payload (result store, checkpoints,
   stage cache) would silently alias if two orderings shared a key.
   Only the *per-function* hashes are sibling-order independent.

2. **Stable keys** for objects, variables and SVFG nodes: names in a
   ``(owning function, ordinal within function)`` space that survive a
   sibling edit, so a stored solution's masks can be re-expressed in a
   new module's dense ids.  Ordinals follow program order inside the
   owning function, which is exactly the order :meth:`Module.renumber`
   and the SVFG builder traverse, so keys are a pure function of the
   function's own content.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    BinOpInst,
    BranchInst,
    CallInst,
    CopyInst,
    FieldInst,
    FunEntryInst,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.values import Constant, FunctionObject, MemObject, Variable

__all__ = [
    "FINGERPRINT_SCHEME",
    "function_fingerprint",
    "module_function_fingerprints",
    "module_fingerprint",
    "object_keys",
    "variable_keys",
    "node_keys",
    "diff_functions",
]

#: Bumped whenever the fingerprint normal form or key scheme changes.
#: Scheme 1 was the whole-module ``print_module`` hash; scheme 2 is the
#: per-function DAG below.  Store/cache/checkpoint manifests record the
#: scheme so pre-refactor entries quarantine instead of silently aliasing.
FINGERPRINT_SCHEME = 2


def _serialize_function(function: Function) -> str:
    """Canonical text of one function with nothing module-global in it.

    Local variables are renamed to ``%<ordinal>`` in order of first
    appearance, blocks to ``b<index>``; globals, functions and abstract
    objects appear by source-level name.  Two compiles of the same
    function body serialise identically no matter what the rest of the
    module looks like.
    """
    rename: Dict[Variable, str] = {}

    def tok(value: object) -> str:
        if isinstance(value, Variable):
            if value.is_global:
                return f"@{value.name}"
            token = rename.get(value)
            if token is None:
                token = rename[value] = f"%{len(rename)}"
            return token
        if isinstance(value, Function):
            return f"fn:{value.name}"
        if isinstance(value, Constant):
            return f"c:{value.value}"
        return f"?:{value!r}"

    def obj_tok(obj: MemObject) -> str:
        if isinstance(obj, FunctionObject):
            return f"fun:{obj.function.name}"
        return (f"obj:{obj.kind.value}:{obj.name}:{obj.num_fields}"
                f":{int(obj.is_array)}")

    lines = [f"func {function.name}/{len(function.params)}"]
    if function.is_declaration:
        lines.append("declare")
        return "\n".join(lines)
    for param in function.params:
        tok(param)  # params take the first ordinals, in signature order
    block_ix = {block: i for i, block in enumerate(function.blocks)}
    for block in function.blocks:
        lines.append(f"b{block_ix[block]}:")
        for inst in block.instructions:
            if isinstance(inst, AllocInst):
                lines.append(f"{tok(inst.dst)} = alloc {obj_tok(inst.obj)}")
            elif isinstance(inst, CopyInst):
                lines.append(f"{tok(inst.dst)} = copy {tok(inst.src)}")
            elif isinstance(inst, PhiInst):
                incomings = " ".join(
                    f"[b{block_ix.get(pred, -1)} {tok(value)}]"
                    for pred, value in inst.incomings)
                lines.append(f"{tok(inst.dst)} = phi {incomings}")
            elif isinstance(inst, FieldInst):
                lines.append(
                    f"{tok(inst.dst)} = field {tok(inst.base)} {inst.field}")
            elif isinstance(inst, LoadInst):
                lines.append(f"{tok(inst.dst)} = load {tok(inst.ptr)}")
            elif isinstance(inst, StoreInst):
                lines.append(f"store {tok(inst.ptr)} {tok(inst.value)}")
            elif isinstance(inst, CallInst):
                callee = (f"fn:{inst.callee.name}"
                          if isinstance(inst.callee, Function)
                          else tok(inst.callee))
                args = " ".join(tok(arg) for arg in inst.args)
                dst = tok(inst.dst) if inst.dst is not None else "_"
                lines.append(f"{dst} = call {callee} {args}")
            elif isinstance(inst, FunEntryInst):
                lines.append("funentry")
            elif isinstance(inst, RetInst):
                value = tok(inst.value) if inst.value is not None else "_"
                lines.append(f"ret {value}")
            elif isinstance(inst, BranchInst):
                cond = tok(inst.cond) if inst.cond is not None else "_"
                targets = ",".join(
                    f"b{block_ix.get(target, -1)}"
                    for target in inst.targets)
                lines.append(f"br {cond} {targets}")
            elif isinstance(inst, BinOpInst):  # covers CmpInst
                lines.append(
                    f"{tok(inst.dst)} = {type(inst).__name__}:{inst.op} "
                    f"{tok(inst.lhs)} {tok(inst.rhs)}")
            else:  # future instruction kinds: structural fallback
                result = inst.result()
                dst = tok(result) if result is not None else "_"
                ops = " ".join(tok(op) for op in inst.operands())
                lines.append(f"{dst} = {type(inst).__name__} {ops}")
    return "\n".join(lines)


def function_fingerprint(function: Function) -> str:
    """SHA-256 of *function*'s canonical serialisation."""
    return hashlib.sha256(
        _serialize_function(function).encode("utf-8")).hexdigest()


def module_function_fingerprints(module: Module) -> Dict[str, str]:
    """``{function name: content hash}`` in insertion order."""
    return {name: function_fingerprint(fn)
            for name, fn in module.functions.items()}


def module_fingerprint(module: Module) -> str:
    """Scheme-2 module fingerprint: hash of the per-function hash list.

    Insertion order is part of the content on purpose (see module
    docstring): dense ids are insertion-order dependent, so two modules
    with reordered siblings must never share a module-level key even
    though each sibling's own hash is unchanged.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-ir-v{FINGERPRINT_SCHEME}\n".encode("utf-8"))
    digest.update(f"; module {module.name}\n".encode("utf-8"))
    for name, fp in module_function_fingerprints(module).items():
        digest.update(f"{name}={fp}\n".encode("utf-8"))
    return digest.hexdigest()


# ------------------------------------------------------------- stable keys

def _alloc_key(fn_name: str, ordinal: int) -> str:
    return f"alloc:{fn_name}:{ordinal}"


def object_keys(module: Module) -> List[str]:
    """Stable key per object, indexed by dense object id.

    - allocation-site objects: ``alloc:<fn>:<ordinal>`` where the ordinal
      counts the function's ``AllocInst``\\ s in program order;
    - function objects: ``fun:<name>``;
    - field objects: ``field:<base key>:<offset>`` (bases are never
      fields, so one level suffices);
    - anything else falls back to ``name:<object name>:<occurrence>``.

    The fallback covers objects no instruction allocates — typically
    stack slots mem2reg promoted away, which can never appear in a
    points-to set.  Their keys therefore only need to be *unique* (the
    occurrence suffix), not stable across edits.
    """
    keys: List[Optional[str]] = [None] * len(module.objects)

    def assign(obj: MemObject, key: str) -> None:
        if 0 <= obj.id < len(keys) and keys[obj.id] is None:
            keys[obj.id] = key

    for fn in module.functions.values():
        ordinal = 0
        for block in fn.blocks:
            for inst in block.instructions:
                if not isinstance(inst, AllocInst):
                    continue
                obj = inst.obj
                if isinstance(obj, FunctionObject):
                    assign(obj, f"fun:{obj.function.name}")
                else:
                    assign(obj, _alloc_key(fn.name, ordinal))
                ordinal += 1
    for obj in module.objects:
        if isinstance(obj, FunctionObject):
            assign(obj, f"fun:{obj.function.name}")
    # Field objects key off their base; resolve after bases are named.
    for obj in module.objects:
        if obj.is_field() and obj.base is not None and keys[obj.id] is None:
            base_key = keys[obj.base.id]
            if base_key is not None:
                keys[obj.id] = f"field:{base_key}:{obj.offset}"
    seen: Dict[str, int] = {}
    out: List[str] = []
    for i, key in enumerate(keys):
        if key is None:
            name = module.objects[i].name
            nth = seen.get(name, 0)
            seen[name] = nth + 1
            key = f"name:{name}:{nth}"
        out.append(key)
    return out


def variable_keys(module: Module) -> List[str]:
    """Stable key per variable, indexed by dense variable id.

    Globals key by name (``g:<name>``); locals by
    ``v:<fn>:<ordinal>`` with ordinals following the same
    params-then-instructions walk :meth:`Module.renumber` uses, so the
    key of every variable in an unchanged function is unchanged.
    """
    keys: List[Optional[str]] = [None] * len(module.variables)

    def assign(var, fn_name: str, ordinal: int) -> bool:
        if not isinstance(var, Variable):
            return False
        if var.is_global:
            if 0 <= var.id < len(keys) and keys[var.id] is None:
                keys[var.id] = f"g:{var.name}"
            return False
        if 0 <= var.id < len(keys) and keys[var.id] is None:
            keys[var.id] = f"v:{fn_name}:{ordinal}"
            return True
        return False

    for fn in module.functions.values():
        ordinal = 0
        for param in fn.params:
            if assign(param, fn.name, ordinal):
                ordinal += 1
        for block in fn.blocks:
            for inst in block.instructions:
                if assign(inst.result(), fn.name, ordinal):
                    ordinal += 1
                for operand in inst.operands():
                    if assign(operand, fn.name, ordinal):
                        ordinal += 1
    return [key if key is not None else f"g:{module.variables[i].name}"
            for i, key in enumerate(keys)]


def node_keys(svfg) -> List[str]:
    """Stable key per SVFG node, indexed by node id.

    ``<fn>#<node kind>:<detail>#<ordinal>``, where the detail is the
    instruction class for instruction nodes and the stable object key
    for memory nodes, and the ordinal counts nodes of that *same kind
    and detail* within the function in creation order (the builder
    creates every function's nodes contiguously in program order).

    Scoping the ordinal this finely makes keys robust against memory-SSA
    *insertions*: when a sibling edit threads a new object through an
    untouched caller (one extra actual-in/out pair per call site), the
    caller's existing nodes keep their keys — only the genuinely new
    nodes get new keys.  A plain per-function ordinal would shift every
    key after the insertion point and cascade digest mismatches into
    regions whose inputs never changed.

    For a function whose own content is unchanged, relative order within
    each (kind, detail) class is preserved, so the mapping old↔new is
    exact — which is all the warm planner relies on: it only ever maps
    values of *clean* functions.
    """
    okeys = object_keys(svfg.module)
    counters: Dict[str, int] = {}
    keys: List[str] = []
    for node in svfg.nodes:
        fn = node.function.name if node.function is not None else ""
        inst = getattr(node, "inst", None)
        if inst is not None:
            detail = type(inst).__name__
        else:
            obj = getattr(node, "obj", None)
            detail = okeys[obj.id] if obj is not None else type(node).__name__
        stem = f"{fn}#{type(node).__name__}:{detail}"
        ordinal = counters.get(stem, 0)
        counters[stem] = ordinal + 1
        keys.append(f"{stem}#{ordinal}")
    return keys


# ------------------------------------------------------------------ diffing

def diff_functions(old: Dict[str, str], new: Dict[str, str]
                   ) -> Dict[str, List[str]]:
    """Classify a per-function fingerprint edit.

    Returns ``{"changed": [...], "added": [...], "deleted": [...]}`` —
    the seed set the dependency map grows into a dirty closure.
    """
    changed = [name for name, fp in new.items()
               if name in old and old[name] != fp]
    added = [name for name in new if name not in old]
    deleted = [name for name in old if name not in new]
    return {"changed": changed, "added": added, "deleted": deleted}
