"""An LLVM-like intermediate representation (Table I of the paper).

The IR models exactly what a points-to analysis for C/C++ needs:

- *Top-level variables* (:class:`~repro.ir.values.Variable`) are SSA
  registers: stack temporaries, parameters and globals that are only ever
  accessed by name.  After the ``mem2reg`` pass the module is in *partial SSA
  form*: every top-level variable has one static definition.
- *Address-taken objects* (:class:`~repro.ir.values.MemObject`) are the
  abstract memory locations (stack slots, globals, heap allocations,
  functions, and derived field objects) accessed only through ``LOAD`` and
  ``STORE``.
- The ten instruction kinds of the paper: ``ALLOC``, ``PHI``, ``MEMPHI``
  (materialised later by memory SSA), ``CAST``/copy, ``FIELD``, ``LOAD``,
  ``STORE``, ``CALL``, ``FUNENTRY`` and ``FUNEXIT``, plus the arithmetic and
  control-flow instructions (``binop``, ``cmp``, ``br``) a real frontend
  needs but the pointer analysis ignores.

A module is built either through :class:`~repro.ir.builder.IRBuilder`, parsed
from the textual syntax (:mod:`repro.ir.parser`), or produced by the mini-C
frontend (:mod:`repro.frontend`).
"""

from repro.ir.types import (
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    INT,
    PTR,
    VOID,
)
from repro.ir.values import Constant, MemObject, ObjectKind, Value, Variable
from repro.ir.instructions import (
    AllocInst,
    BinOpInst,
    BranchInst,
    CallInst,
    CmpInst,
    CopyInst,
    FieldInst,
    FunEntryInst,
    Instruction,
    LoadInst,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import print_function, print_module
from repro.ir.verifier import verify_module
from repro.ir.parser import parse_module

__all__ = [
    "Type",
    "IntType",
    "PointerType",
    "StructType",
    "FunctionType",
    "VoidType",
    "INT",
    "PTR",
    "VOID",
    "Value",
    "Variable",
    "Constant",
    "MemObject",
    "ObjectKind",
    "Instruction",
    "AllocInst",
    "CopyInst",
    "PhiInst",
    "FieldInst",
    "LoadInst",
    "StoreInst",
    "CallInst",
    "RetInst",
    "BranchInst",
    "BinOpInst",
    "CmpInst",
    "FunEntryInst",
    "BasicBlock",
    "Function",
    "Module",
    "IRBuilder",
    "print_module",
    "print_function",
    "verify_module",
    "parse_module",
]
