"""Basic blocks: straight-line instruction sequences ended by a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from repro.ir.instructions import BranchInst, Instruction, PhiInst, RetInst

if TYPE_CHECKING:
    from repro.ir.function import Function


class BasicBlock:
    """A CFG node. Instructions run in order; the last one is a terminator
    (:class:`BranchInst` or :class:`RetInst`) once the block is complete."""

    __slots__ = ("name", "function", "instructions")

    def __init__(self, name: str, function: "Function"):
        self.name = name
        self.function = function
        self.instructions: List[Instruction] = []

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated():
            raise ValueError(f"block {self.name} is already terminated")
        inst.block = self
        self.instructions.append(inst)
        return inst

    def insert_front(self, inst: Instruction) -> Instruction:
        """Insert *inst* before all existing instructions (after any phis if
        *inst* is not a phi — phis must stay grouped at the block head)."""
        inst.block = self
        if isinstance(inst, PhiInst):
            self.instructions.insert(0, inst)
        else:
            index = 0
            while index < len(self.instructions) and isinstance(self.instructions[index], PhiInst):
                index += 1
            self.instructions.insert(index, inst)
        return inst

    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator() is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator()
        if isinstance(term, BranchInst):
            # Deduplicate: both arms of a conditional may share a target.
            seen: List[BasicBlock] = []
            for target in term.targets:
                if target not in seen:
                    seen.append(target)
            return seen
        return []

    def predecessors(self) -> List["BasicBlock"]:
        return [block for block in self.function.blocks if self in block.successors()]

    def phis(self) -> List[PhiInst]:
        return [inst for inst in self.instructions if isinstance(inst, PhiInst)]

    def non_phi_instructions(self) -> Iterator[Instruction]:
        return (inst for inst in self.instructions if not isinstance(inst, PhiInst))

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<block {self.function.name}:{self.name}>"
