"""The minimal type system the IR carries.

The pointer analysis itself is untyped (objects and pointers are abstract),
but the frontend and verifier use types to decide which variables are
pointers, how many fields a struct has, and which ``FIELD`` offsets are legal.
Types are interned singletons where practical so ``is``/``==`` are cheap.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Type:
    """Base class for IR types."""

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)


class IntType(Type):
    """A machine integer. One width is enough for analysis purposes."""

    _instance: Optional["IntType"] = None

    def __new__(cls) -> "IntType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "i64"


class VoidType(Type):
    """The type of functions that return nothing."""

    _instance: Optional["VoidType"] = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "void"


class PointerType(Type):
    """Pointer to *pointee*.  ``PointerType.opaque()`` gives ``ptr`` (unknown
    pointee), which is what most analysis-facing code uses."""

    _cache: Dict[Optional[Type], "PointerType"] = {}

    def __new__(cls, pointee: Optional[Type] = None) -> "PointerType":
        cached = cls._cache.get(pointee)
        if cached is None:
            cached = super().__new__(cls)
            cached.pointee = pointee
            cls._cache[pointee] = cached
        return cached

    @classmethod
    def opaque(cls) -> "PointerType":
        return cls(None)

    def __repr__(self) -> str:
        if self.pointee is None:
            return "ptr"
        return f"{self.pointee!r}*"


class StructType(Type):
    """A named aggregate with an ordered list of field types."""

    def __init__(self, name: str, fields: Optional[List[Type]] = None):
        self.name = name
        self.fields: List[Type] = fields or []

    def field_count(self) -> int:
        return len(self.fields)

    def __repr__(self) -> str:
        return f"%struct.{self.name}"


class FunctionType(Type):
    """Signature of a function: return type and parameter types."""

    def __init__(self, ret: Type, params: Tuple[Type, ...]):
        self.ret = ret
        self.params = params

    def __repr__(self) -> str:
        params = ", ".join(repr(param) for param in self.params)
        return f"{self.ret!r}({params})"


INT = IntType()
VOID = VoidType()
PTR = PointerType.opaque()
