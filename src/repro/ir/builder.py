"""A convenience builder for constructing IR programmatically.

The builder keeps an insertion point (a basic block) and mints fresh
temporaries and objects with readable names.  It is the API the mini-C
frontend lowers through, and the easiest way to write IR in tests:

>>> from repro.ir import IRBuilder, Module, PTR
>>> module = Module("demo")
>>> b = IRBuilder(module)
>>> main = b.function("main")
>>> b.block("entry")
>>> p = b.alloca("x")          # %p = alloca_x ; pt(p) = {x}
>>> q = b.malloc("h")          # heap object
>>> b.store(p, q)              # *p = q
>>> r = b.load(p)              # r = *p
>>> __ = b.ret()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    BinOpInst,
    BranchInst,
    CallInst,
    CmpInst,
    CopyInst,
    FieldInst,
    LoadInst,
    Operand,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import INIT_FUNCTION, Module
from repro.ir.types import INT, PTR, Type, VOID
from repro.ir.values import Constant, MemObject, ObjectKind, Variable


class IRBuilder:
    """Stateful builder: create functions/blocks, then emit instructions."""

    def __init__(self, module: Module):
        self.module = module
        self.current_function: Optional[Function] = None
        self.current_block: Optional[BasicBlock] = None
        self._temp_counter = 0

    # ------------------------------------------------------------- structure

    def function(
        self,
        name: str,
        param_names: Sequence[str] = (),
        ret_type: Type = VOID,
        param_types: Optional[Sequence[Type]] = None,
    ) -> Function:
        """Create (and switch to) a new function; blocks come next."""
        types = list(param_types) if param_types is not None else [PTR] * len(param_names)
        params = [Variable(pname, ptype) for pname, ptype in zip(param_names, types)]
        func = Function(name, params, ret_type)
        self.module.add_function(func)
        self.current_function = func
        self.current_block = None
        return func

    def block(self, name: str) -> BasicBlock:
        """Create (and switch to) a new block in the current function."""
        if self.current_function is None:
            raise IRError("no current function")
        block = self.current_function.add_block(name)
        self.current_block = block
        return block

    def switch_to(self, block: BasicBlock) -> None:
        self.current_function = block.function
        self.current_block = block

    def fresh_var(self, hint: str = "t", type_: Type = PTR) -> Variable:
        self._temp_counter += 1
        return Variable(f"{hint}.{self._temp_counter}", type_)

    def _emit(self, inst):
        if self.current_block is None:
            raise IRError("no current block")
        self.current_block.append(inst)
        return inst

    # ----------------------------------------------------------- instructions

    def alloca(self, obj_name: str, dst: Optional[Variable] = None, num_fields: int = 0) -> Variable:
        """Stack allocation: ``dst = alloca_obj``."""
        return self._alloc(obj_name, ObjectKind.STACK, dst, num_fields)

    def malloc(self, obj_name: str, dst: Optional[Variable] = None, num_fields: int = 0) -> Variable:
        """Heap allocation: ``dst = malloc_obj``."""
        return self._alloc(obj_name, ObjectKind.HEAP, dst, num_fields)

    def global_alloc(self, obj_name: str, dst: Optional[Variable] = None, num_fields: int = 0) -> Variable:
        """Global object allocation (emitted inside ``__module_init__``)."""
        return self._alloc(obj_name, ObjectKind.GLOBAL, dst, num_fields)

    def _alloc(self, obj_name: str, kind: ObjectKind, dst: Optional[Variable], num_fields: int) -> Variable:
        dst = dst or self.fresh_var(obj_name)
        obj = self.module.new_object(obj_name, kind, num_fields=num_fields)
        inst = self._emit(AllocInst(dst, obj))
        obj.alloc_site = inst
        return dst

    def addr_of_function(self, func: Union[Function, str], dst: Optional[Variable] = None) -> Variable:
        """``dst = &func`` — makes *func* address-taken."""
        if isinstance(func, str):
            func = self.module.get_function(func)
        dst = dst or self.fresh_var(f"addr_{func.name}")
        obj = self.module.function_object(func)
        self._emit(AllocInst(dst, obj))
        return dst

    def copy(self, src: Operand, dst: Optional[Variable] = None) -> Variable:
        dst = dst or self.fresh_var("cpy")
        self._emit(CopyInst(dst, src))
        return dst

    def phi(self, incomings: Sequence[tuple], dst: Optional[Variable] = None) -> Variable:
        dst = dst or self.fresh_var("phi")
        self._emit(PhiInst(dst, list(incomings)))
        return dst

    def field(self, base: Operand, index: int, dst: Optional[Variable] = None) -> Variable:
        dst = dst or self.fresh_var("fld")
        self._emit(FieldInst(dst, base, index))
        return dst

    def load(self, ptr: Operand, dst: Optional[Variable] = None) -> Variable:
        dst = dst or self.fresh_var("ld")
        self._emit(LoadInst(dst, ptr))
        return dst

    def store(self, ptr: Operand, value: Operand) -> StoreInst:
        return self._emit(StoreInst(ptr, value))

    def call(
        self,
        callee: Union[Function, str, Variable],
        args: Sequence[Operand] = (),
        dst: Optional[Variable] = None,
        want_result: bool = False,
    ) -> Optional[Variable]:
        if isinstance(callee, str):
            callee = self.module.get_function(callee)
        if dst is None and want_result:
            dst = self.fresh_var("ret")
        self._emit(CallInst(dst, callee, list(args)))
        return dst

    def binop(self, op: str, lhs: Operand, rhs: Operand, dst: Optional[Variable] = None) -> Variable:
        dst = dst or self.fresh_var("bin", INT)
        self._emit(BinOpInst(dst, op, lhs, rhs))
        return dst

    def cmp(self, op: str, lhs: Operand, rhs: Operand, dst: Optional[Variable] = None) -> Variable:
        dst = dst or self.fresh_var("cmp", INT)
        self._emit(CmpInst(dst, op, lhs, rhs))
        return dst

    def br(self, target: BasicBlock) -> BranchInst:
        return self._emit(BranchInst([target]))

    def cond_br(self, cond: Operand, then_block: BasicBlock, else_block: BasicBlock) -> BranchInst:
        return self._emit(BranchInst([then_block, else_block], cond))

    def ret(self, value: Optional[Operand] = None) -> RetInst:
        return self._emit(RetInst(value))

    def const(self, value: int, type_: Type = INT) -> Constant:
        return Constant(value, type_)

    # ---------------------------------------------------------------- helpers

    def ensure_init_function(self) -> Function:
        """Get or create ``__module_init__`` (allocates globals, calls main)."""
        if INIT_FUNCTION in self.module.functions:
            return self.module.functions[INIT_FUNCTION]
        saved_function, saved_block = self.current_function, self.current_block
        init = self.function(INIT_FUNCTION)
        self.block("entry")
        self.current_function, self.current_block = saved_function, saved_block
        return init
