"""The instruction set (Table I of the paper, plus scalar/control glue).

Pointer-relevant instructions:

=============  ======================  =================================
Class          Paper form              Meaning
=============  ======================  =================================
AllocInst      ``p = alloca_o``        take the address of object *o*
PhiInst        ``p = phi(q, r)``       top-level join
CopyInst       ``p = (t) q``           cast / copy
FieldInst      ``p = &q->f_k``         address of field *k*
LoadInst       ``p = *q``              read through a pointer
StoreInst      ``*p = q``              write through a pointer
CallInst       ``p = q(r...)``         direct or indirect call
FunEntryInst   ``fun(r...)``           single entry of each function
RetInst        ``ret_fun p``           single exit (FUNEXIT)
=============  ======================  =================================

``MEMPHI`` nodes are *not* IR instructions: they are synthesised by memory
SSA (:mod:`repro.memssa`) and live only in the SVFG.

Every instruction carries a module-unique integer :attr:`Instruction.id`
(the paper's label ℓ) once its function is attached to a module.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from repro.ir.values import Constant, Value, Variable

if TYPE_CHECKING:
    from repro.ir.basicblock import BasicBlock
    from repro.ir.function import Function
    from repro.ir.values import MemObject

Operand = Union[Variable, Constant]


class Instruction:
    """Base class for all IR instructions."""

    __slots__ = ("id", "block")

    def __init__(self) -> None:
        self.id = -1
        self.block: Optional["BasicBlock"] = None

    @property
    def function(self) -> "Function":
        assert self.block is not None, "instruction not inserted in a block"
        return self.block.function

    def operands(self) -> List[Value]:
        """Operand values read by this instruction (excludes results)."""
        return []

    def result(self) -> Optional[Variable]:
        """The top-level variable defined by this instruction, if any."""
        return None

    def is_terminator(self) -> bool:
        return False

    def replace_uses(self, old: Value, new: Value) -> None:
        """Substitute operand *old* with *new* (used by mem2reg renaming)."""
        raise NotImplementedError(f"{type(self).__name__} has no replaceable operands")

    def __repr__(self) -> str:
        from repro.ir.printer import format_instruction

        return format_instruction(self)


class AllocInst(Instruction):
    """``p = alloca_o`` — *p* now points to abstract object *o*.

    Used uniformly for stack slots, globals, heap allocations (``malloc``)
    and taking a function's address; the distinction lives in ``obj.kind``.
    """

    __slots__ = ("dst", "obj")

    def __init__(self, dst: Variable, obj: "MemObject"):
        super().__init__()
        self.dst = dst
        self.obj = obj

    def result(self) -> Optional[Variable]:
        return self.dst

    def replace_uses(self, old: Value, new: Value) -> None:
        pass  # no variable operands


class CopyInst(Instruction):
    """``p = (t) q`` — cast or plain copy; points-to set flows q → p."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Variable, src: Operand):
        super().__init__()
        self.dst = dst
        self.src = src

    def operands(self) -> List[Value]:
        return [self.src]

    def result(self) -> Optional[Variable]:
        return self.dst

    def replace_uses(self, old: Value, new: Value) -> None:
        if self.src is old:
            self.src = new  # type: ignore[assignment]


class PhiInst(Instruction):
    """``p = phi(q, r, ...)`` — top-level join; one incoming per CFG pred."""

    __slots__ = ("dst", "incomings")

    def __init__(self, dst: Variable, incomings: Optional[List[Tuple["BasicBlock", Operand]]] = None):
        super().__init__()
        self.dst = dst
        self.incomings: List[Tuple["BasicBlock", Operand]] = incomings or []

    def add_incoming(self, block: "BasicBlock", value: Operand) -> None:
        self.incomings.append((block, value))

    def operands(self) -> List[Value]:
        return [value for __, value in self.incomings]

    def result(self) -> Optional[Variable]:
        return self.dst

    def replace_uses(self, old: Value, new: Value) -> None:
        self.incomings = [
            (block, new if value is old else value)  # type: ignore[misc]
            for block, value in self.incomings
        ]


class FieldInst(Instruction):
    """``p = &q->f_k`` — address of field *k* of whatever *q* points to."""

    __slots__ = ("dst", "base", "field")

    def __init__(self, dst: Variable, base: Operand, field: int):
        super().__init__()
        self.dst = dst
        self.base = base
        self.field = field

    def operands(self) -> List[Value]:
        return [self.base]

    def result(self) -> Optional[Variable]:
        return self.dst

    def replace_uses(self, old: Value, new: Value) -> None:
        if self.base is old:
            self.base = new  # type: ignore[assignment]


class LoadInst(Instruction):
    """``p = *q`` — may be annotated with μ(o) by memory SSA."""

    __slots__ = ("dst", "ptr")

    def __init__(self, dst: Variable, ptr: Operand):
        super().__init__()
        self.dst = dst
        self.ptr = ptr

    def operands(self) -> List[Value]:
        return [self.ptr]

    def result(self) -> Optional[Variable]:
        return self.dst

    def replace_uses(self, old: Value, new: Value) -> None:
        if self.ptr is old:
            self.ptr = new  # type: ignore[assignment]


class StoreInst(Instruction):
    """``*p = q`` — may be annotated with o = χ(o) by memory SSA."""

    __slots__ = ("ptr", "value")

    def __init__(self, ptr: Operand, value: Operand):
        super().__init__()
        self.ptr = ptr
        self.value = value

    def operands(self) -> List[Value]:
        return [self.ptr, self.value]

    def replace_uses(self, old: Value, new: Value) -> None:
        if self.ptr is old:
            self.ptr = new  # type: ignore[assignment]
        if self.value is old:
            self.value = new  # type: ignore[assignment]


class CallInst(Instruction):
    """``p = q(r1, ..., rn)`` — *callee* is a Function (direct) or a
    top-level Variable (indirect; resolved on the fly during solving)."""

    __slots__ = ("dst", "callee", "args")

    def __init__(
        self,
        dst: Optional[Variable],
        callee: Union["Function", Operand],
        args: Sequence[Operand] = (),
    ):
        super().__init__()
        self.dst = dst
        self.callee = callee
        self.args: List[Operand] = list(args)

    def is_indirect(self) -> bool:
        return isinstance(self.callee, (Variable, Constant))

    def operands(self) -> List[Value]:
        ops: List[Value] = list(self.args)
        if self.is_indirect():
            ops.append(self.callee)  # type: ignore[arg-type]
        return ops

    def result(self) -> Optional[Variable]:
        return self.dst

    def replace_uses(self, old: Value, new: Value) -> None:
        self.args = [new if arg is old else arg for arg in self.args]  # type: ignore[misc]
        if self.is_indirect() and self.callee is old:
            self.callee = new  # type: ignore[assignment]


class FunEntryInst(Instruction):
    """``fun(r1, ..., rn)`` — the unique entry of a function.

    Memory SSA attaches entry-χ annotations here; the SVFG's interprocedural
    indirect edges target this node.
    """

    __slots__ = ("func",)

    def __init__(self, func: "Function"):
        super().__init__()
        self.func = func

    def replace_uses(self, old: Value, new: Value) -> None:
        pass


class RetInst(Instruction):
    """``ret_fun p`` — the FUNEXIT instruction; unique after unify-returns."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Operand] = None):
        super().__init__()
        self.value = value

    def operands(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    def is_terminator(self) -> bool:
        return True

    def replace_uses(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new  # type: ignore[assignment]


class BranchInst(Instruction):
    """``br cond, then, else`` or ``br target`` — CFG terminator.

    The condition is opaque to the pointer analysis; both successors are
    always considered feasible.
    """

    __slots__ = ("cond", "targets")

    def __init__(self, targets: Sequence["BasicBlock"], cond: Optional[Operand] = None):
        super().__init__()
        self.cond = cond
        self.targets: List["BasicBlock"] = list(targets)
        if cond is None and len(self.targets) != 1:
            raise ValueError("unconditional branch takes exactly one target")
        if cond is not None and len(self.targets) != 2:
            raise ValueError("conditional branch takes exactly two targets")

    def operands(self) -> List[Value]:
        return [self.cond] if self.cond is not None else []

    def is_terminator(self) -> bool:
        return True

    def replace_uses(self, old: Value, new: Value) -> None:
        if self.cond is old:
            self.cond = new  # type: ignore[assignment]


class BinOpInst(Instruction):
    """``p = q <op> r`` — integer arithmetic; irrelevant to points-to."""

    __slots__ = ("dst", "op", "lhs", "rhs")

    def __init__(self, dst: Variable, op: str, lhs: Operand, rhs: Operand):
        super().__init__()
        self.dst = dst
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def result(self) -> Optional[Variable]:
        return self.dst

    def replace_uses(self, old: Value, new: Value) -> None:
        if self.lhs is old:
            self.lhs = new  # type: ignore[assignment]
        if self.rhs is old:
            self.rhs = new  # type: ignore[assignment]


class CmpInst(BinOpInst):
    """``p = q <cmp> r`` — comparison producing an integer flag."""

    __slots__ = ()
