"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

The textual form makes analysis test cases readable and diffable::

    func @main() {
    entry:
      %p = alloca x
      %q = malloc h
      store %p, %q
      %r = load %p
      ret
    }

Names: ``%x`` is a function-local top-level variable, ``@g`` a module-level
one (or a function, in ``funaddr``/``call`` position), bare words name
abstract objects, and integers are constants.  Comments run from ``;`` to end
of line.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AllocInst,
    BinOpInst,
    BranchInst,
    CallInst,
    CmpInst,
    CopyInst,
    FieldInst,
    LoadInst,
    Operand,
    PhiInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.types import INT, PTR
from repro.ir.values import Constant, ObjectKind, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|;[^\n]*)
  | (?P<local>%[A-Za-z_.][\w.]*)
  | (?P<global>@[A-Za-z_.][\w.]*)
  | (?P<int>-?\d+)
  | (?P<word>[A-Za-z_.][\w.]*)
  | (?P<opname>==|!=|<=|>=|&&|\|\||[-+*/%<>!&|^~])  # binop/cmp operators
  | (?P<punct>[{}()\[\]:,=])
    """,
    re.VERBOSE,
)

_ALLOC_KINDS = {
    "alloca": ObjectKind.STACK,
    "global_alloc": ObjectKind.GLOBAL,
    "malloc": ObjectKind.HEAP,
}


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line, pos - line_start + 1)
        kind = match.lastgroup or ""
        text = match.group()
        if kind != "ws":
            tokens.append(_Token(kind, text, line, match.start() - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = match.start() + text.rindex("\n") + 1
        pos = match.end()
    tokens.append(_Token("eof", "", line, 1))
    return tokens


class _Parser:
    def __init__(self, source: str, module_name: str):
        self.tokens = _tokenize(source)
        self.pos = 0
        self.module = Module(module_name)
        # module-level (@-prefixed) variables that are not functions
        self.global_vars: Dict[str, Variable] = {}

    # --------------------------------------------------------------- cursor

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def next(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {token.text!r}", token.line, token.column)
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    # --------------------------------------------------------------- grammar

    def parse(self) -> Module:
        # Pre-pass: register every function name so calls can be resolved
        # regardless of definition order.
        for index, token in enumerate(self.tokens):
            if token.kind == "word" and token.text in ("func", "declare"):
                name_token = self.tokens[index + 1]
                if name_token.kind == "global":
                    name = name_token.text[1:]
                    if name not in self.module.functions:
                        self.module.add_function(Function(name))
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind == "word" and token.text == "func":
                self.parse_function()
            elif token.kind == "word" and token.text == "declare":
                self.parse_declaration()
            else:
                raise ParseError(f"expected 'func' or 'declare', found {token.text!r}",
                                 token.line, token.column)
        self.module.renumber()
        return self.module

    def parse_declaration(self) -> None:
        self.expect("word", "declare")
        name = self.expect("global").text[1:]
        func = self.module.functions[name]
        self.expect("punct", "(")
        params = self.parse_param_names()
        func.params = [Variable(pname) for pname in params]
        func.type = None  # declarations carry no meaningful type here

    def parse_function(self) -> None:
        self.expect("word", "func")
        name = self.expect("global").text[1:]
        func = self.module.functions[name]
        self.expect("punct", "(")
        locals_map: Dict[str, Variable] = {}
        param_names = self.parse_param_names()
        func.params = []
        for pname in param_names:
            param = Variable(pname)
            func.params.append(param)
            locals_map["%" + pname] = param
        self.expect("punct", "{")

        # Blocks are created lazily: the first reference (label definition or
        # branch target) creates the block; phi incomings resolve at the end
        # and blocks are re-ordered to source (label-definition) order so the
        # printer round-trips exactly.
        blocks: Dict[str, BasicBlock] = {}
        label_order: List[str] = []
        current_block: Optional[BasicBlock] = None
        pending_branches: List[Tuple[BranchInst, List[str]]] = []
        pending_phis: List[Tuple[PhiInst, List[Tuple[str, Operand]]]] = []

        def get_block(label: str) -> BasicBlock:
            if label not in blocks:
                blocks[label] = func.add_block(label)
            return blocks[label]

        while not self.accept("punct", "}"):
            token = self.peek()
            if token.kind == "word" and self.tokens[self.pos + 1].text == ":" \
                    and self.tokens[self.pos + 1].kind == "punct":
                label = self.next().text
                self.next()  # ':'
                current_block = get_block(label)
                label_order.append(label)
                continue
            if current_block is None:
                raise ParseError("instruction outside any block", token.line, token.column)
            self.parse_instruction(func, current_block, locals_map, get_block,
                                   pending_branches, pending_phis)

        for phi, incomings in pending_phis:
            for label, value in incomings:
                if label not in blocks:
                    raise ParseError(f"phi references unknown block {label!r}")
                phi.add_incoming(blocks[label], value)

        # Restore source order (forward branch targets were created early).
        rank = {label: index for index, label in enumerate(label_order)}
        func.blocks.sort(key=lambda block: rank.get(block.name, len(rank)))

    def parse_param_names(self) -> List[str]:
        names: List[str] = []
        if not self.accept("punct", ")"):
            while True:
                names.append(self.expect("local").text[1:])
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        return names

    # ----------------------------------------------------------- instructions

    def get_local(self, locals_map: Dict[str, Variable], text: str) -> Variable:
        var = locals_map.get(text)
        if var is None:
            var = Variable(text[1:])
            locals_map[text] = var
        return var

    def get_global_var(self, text: str) -> Variable:
        name = text[1:]
        if name in self.module.functions:
            raise ParseError(f"@{name} names a function; use funaddr/call")
        var = self.global_vars.get(name)
        if var is None:
            var = Variable(name, is_global=True)
            self.global_vars[name] = var
        return var

    def parse_value(self, locals_map: Dict[str, Variable]) -> Operand:
        token = self.next()
        if token.kind == "local":
            return self.get_local(locals_map, token.text)
        if token.kind == "global":
            return self.get_global_var(token.text)
        if token.kind == "int":
            return Constant(int(token.text), INT)
        raise ParseError(f"expected a value, found {token.text!r}", token.line, token.column)

    def parse_instruction(
        self,
        func: Function,
        block: BasicBlock,
        locals_map: Dict[str, Variable],
        get_block,
        pending_branches,
        pending_phis,
    ) -> None:
        token = self.peek()

        # Result-producing form: %x = <op> ... , or @g = <op> ...
        if token.kind in ("local", "global"):
            dst_token = self.next()
            self.expect("punct", "=")
            if dst_token.kind == "local":
                dst = self.get_local(locals_map, dst_token.text)
            else:
                dst = self.get_global_var(dst_token.text)
            op = self.expect("word").text
            if op in _ALLOC_KINDS:
                obj_name = self.expect("word").text
                num_fields = 0
                if self.accept("punct", ","):
                    self.expect("word", "fields")
                    num_fields = int(self.expect("int").text)
                obj = self.module.new_object(obj_name, _ALLOC_KINDS[op], num_fields=num_fields)
                inst = AllocInst(dst, obj)
                obj.alloc_site = inst
                block.append(inst)
            elif op == "funaddr":
                target = self.expect("global").text[1:]
                callee = self.module.get_function(target)
                block.append(AllocInst(dst, self.module.function_object(callee)))
            elif op == "copy":
                block.append(CopyInst(dst, self.parse_value(locals_map)))
            elif op == "load":
                block.append(LoadInst(dst, self.parse_value(locals_map)))
            elif op == "field":
                base = self.parse_value(locals_map)
                self.expect("punct", ",")
                index = int(self.expect("int").text)
                block.append(FieldInst(dst, base, index))
            elif op == "phi":
                phi = PhiInst(dst)
                incomings: List[Tuple[str, Operand]] = []
                while self.accept("punct", "["):
                    label = self.expect("word").text
                    self.expect("punct", ":")
                    value = self.parse_value(locals_map)
                    self.expect("punct", "]")
                    incomings.append((label, value))
                    if not self.accept("punct", ","):
                        break
                block.append(phi)
                pending_phis.append((phi, incomings))
            elif op == "call":
                self.parse_call(block, locals_map, dst)
            elif op in ("binop", "cmp"):
                op_token = self.next()
                if op_token.kind not in ("word", "opname"):
                    raise ParseError(f"expected an operator, found {op_token.text!r}",
                                     op_token.line, op_token.column)
                lhs = self.parse_value(locals_map)
                self.expect("punct", ",")
                rhs = self.parse_value(locals_map)
                cls = CmpInst if op == "cmp" else BinOpInst
                block.append(cls(dst, op_token.text, lhs, rhs))
            else:
                raise ParseError(f"unknown operation {op!r}", token.line, token.column)
            return

        op = self.expect("word").text
        if op == "store":
            ptr = self.parse_value(locals_map)
            self.expect("punct", ",")
            value = self.parse_value(locals_map)
            block.append(StoreInst(ptr, value))
        elif op == "call":
            self.parse_call(block, locals_map, None)
        elif op == "ret":
            nxt = self.peek()
            if nxt.kind in ("local", "global", "int"):
                block.append(RetInst(self.parse_value(locals_map)))
            else:
                block.append(RetInst())
        elif op == "br":
            nxt = self.peek()
            if nxt.kind == "word":  # unconditional: br label
                label = self.next().text
                block.append(BranchInst([get_block(label)]))
            else:
                cond = self.parse_value(locals_map)
                self.expect("punct", ",")
                then_label = self.expect("word").text
                self.expect("punct", ",")
                else_label = self.expect("word").text
                block.append(BranchInst([get_block(then_label), get_block(else_label)], cond))
        else:
            raise ParseError(f"unknown instruction {op!r}", token.line, token.column)

    def parse_call(self, block: BasicBlock, locals_map: Dict[str, Variable],
                   dst: Optional[Variable]) -> None:
        token = self.next()
        callee: object
        if token.kind == "global":
            name = token.text[1:]
            if name in self.module.functions:
                callee = self.module.functions[name]
            else:
                callee = self.get_global_var(token.text)
        elif token.kind == "local":
            callee = self.get_local(locals_map, token.text)
        else:
            raise ParseError(f"expected call target, found {token.text!r}",
                             token.line, token.column)
        self.expect("punct", "(")
        args: List[Operand] = []
        if not self.accept("punct", ")"):
            while True:
                args.append(self.parse_value(locals_map))
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        block.append(CallInst(dst, callee, args))


def parse_module(source: str, name: str = "parsed") -> Module:
    """Parse textual IR into a :class:`~repro.ir.module.Module`.

    The result is renumbered but not verified; call
    :func:`repro.ir.verifier.verify_module` for structural checks.
    """
    return _Parser(source, name).parse()
