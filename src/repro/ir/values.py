"""Values: top-level variables, constants, and abstract memory objects.

Following Table I of the paper, the variable universe splits into

- ``P`` (top-level variables): :class:`Variable` — accessed by name only,
  single static definition after partial SSA;
- ``A`` (address-taken objects): :class:`MemObject` — accessed only through
  ``LOAD``/``STORE`` via a top-level pointer.

Every :class:`Variable` and :class:`MemObject` receives a dense integer id
from its owning :class:`~repro.ir.module.Module`, which is what the solvers
index bit sets with.
"""

from __future__ import annotations

import enum
from typing import Optional, TYPE_CHECKING

from repro.ir.types import PTR, Type

if TYPE_CHECKING:
    from repro.ir.function import Function


class Value:
    """Anything that can appear as an instruction operand."""

    __slots__ = ("type",)

    def __init__(self, type_: Type):
        self.type = type_


class Constant(Value):
    """A compile-time constant (integer or null pointer).

    Constants never point to anything, so the pointer analysis skips them.
    """

    __slots__ = ("value",)

    def __init__(self, value: int, type_: Type):
        super().__init__(type_)
        self.value = value

    def __repr__(self) -> str:
        return str(self.value)


class Variable(Value):
    """A top-level variable (SSA register, parameter, or global pointer).

    ``id`` is assigned by the owning module; -1 until registered.
    """

    __slots__ = ("name", "id", "is_global")

    def __init__(self, name: str, type_: Type = PTR, is_global: bool = False):
        super().__init__(type_)
        self.name = name
        self.id = -1
        self.is_global = is_global

    def __repr__(self) -> str:
        prefix = "@" if self.is_global else "%"
        return f"{prefix}{self.name}"


class ObjectKind(enum.Enum):
    """Where an abstract object lives; drives singleton/strong-update logic."""

    STACK = "stack"
    GLOBAL = "global"
    HEAP = "heap"
    FUNCTION = "function"
    FIELD = "field"


class MemObject:
    """An abstract address-taken memory object.

    One :class:`MemObject` may summarise many runtime objects (a heap object
    allocated in a loop, a stack slot of a recursive function).  The solvers
    may only *strong-update* objects proven to be singletons
    (:attr:`is_singleton`, the paper's ``SN`` set); the flag is refined by
    :func:`repro.passes.singletons.mark_singletons`.

    Field objects (``FIELD`` kind) are derived lazily from a base object and
    a flattened field offset.  Per the paper's ``FIELD-ADDR`` rules, the base
    of a field object is never itself a field object: taking field *j* of
    field object ``o.f_i`` yields ``o.f_{i+j}``.
    """

    __slots__ = (
        "name",
        "kind",
        "id",
        "base",
        "offset",
        "is_singleton",
        "alloc_site",
        "num_fields",
        "is_array",
    )

    def __init__(
        self,
        name: str,
        kind: ObjectKind,
        base: Optional["MemObject"] = None,
        offset: int = 0,
        alloc_site: Optional[object] = None,
        num_fields: int = 0,
        is_array: bool = False,
    ):
        self.name = name
        self.kind = kind
        self.id = -1
        self.base = base
        self.offset = offset
        # Conservative default: nothing is a singleton until a pass proves it.
        self.is_singleton = False
        self.alloc_site = alloc_site
        self.num_fields = num_fields
        # Arrays are summarised by one abstract object, so a store through an
        # index must never strong-update them.
        self.is_array = is_array

    def is_field(self) -> bool:
        return self.kind is ObjectKind.FIELD

    def is_function(self) -> bool:
        return self.kind is ObjectKind.FUNCTION

    def base_object(self) -> "MemObject":
        """The root (non-field) object this object belongs to."""
        return self.base if self.base is not None else self

    def __repr__(self) -> str:
        return self.name


class FunctionObject(MemObject):
    """The address-taken object standing for a function (``&f``)."""

    __slots__ = ("function",)

    def __init__(self, function: "Function"):
        super().__init__(f"fun:{function.name}", ObjectKind.FUNCTION)
        self.function = function
