"""Stage-graph instrumentation: events, the bus, and the trace.

The engine emits one :class:`StageEvent` stream per run —
``stage_start`` / ``stage_end`` around every stage execution, plus
``cache_hit`` (the stage was served from the stage cache) and
``artifact_bytes`` (a fresh artifact was persisted) in between.  A
:class:`StageTrace` subscriber folds the stream into ordered per-stage
records carrying wall time, solver steps, cache disposition and the
substrate-vs-main-phase flag — the breakdown behind ``repro-wpa
--trace``, the batch driver's stage totals, and the bench runner's JSON
(the paper's Table III excludes everything with ``main_phase=False``
from the timed main phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Event kinds, in the order a single stage execution can emit them.
#: ``self_heal`` may appear anywhere: it records a fault that was
#: absorbed (quarantine-and-recompute, retry-and-skip, revive, collapse)
#: instead of surfacing — the degraded-not-dead audit trail.
EVENT_KINDS = ("stage_start", "cache_hit", "artifact_bytes", "self_heal",
               "stage_end")

#: ``cache`` values that mean "served from a cache" in a trace record.
CACHE_HIT_LABELS = ("codec", "replay", "result-store")


@dataclass
class StageEvent:
    """One observation from the engine; see :data:`EVENT_KINDS`."""

    kind: str
    stage: str
    wall_s: float = 0.0
    steps: int = 0
    #: None (no cache in play), "miss", or a :data:`CACHE_HIT_LABELS` entry.
    cache: Optional[str] = None
    artifact_bytes: Optional[int] = None
    #: True for solve stages (the paper's timed main phase); False for the
    #: substrate (parse/prepare/andersen/modref/memssa/svfg/versioning).
    main_phase: bool = False
    fingerprint: Optional[str] = None
    #: "ok" or the exception type name that ended the stage.
    outcome: Optional[str] = None
    #: Optional stage-specific observations (solve stages attach their
    #: dedup-engine figures: batch memo hit rate, arena resident bytes).
    detail: Optional[Dict[str, object]] = None


def heal_event(stage: str, domain: str, action: str,
               **detail: object) -> StageEvent:
    """Build a ``self_heal`` event: *domain* (fault domain the incident
    belongs to), *action* (what the healer did: ``recompute``,
    ``rebuilt``, ``skip-write``, ``skip-flush``, ``detached``,
    ``revive``, ``retry``), plus free-form detail."""
    payload: Dict[str, object] = {"domain": domain, "action": action}
    payload.update({key: value for key, value in detail.items()
                    if value is not None})
    return StageEvent("self_heal", stage, detail=payload)


class EventBus:
    """Synchronous fan-out of :class:`StageEvent`\\ s to subscribers."""

    def __init__(self) -> None:
        self._subscribers: List[Callable[[StageEvent], None]] = []

    def subscribe(self, callback: Callable[[StageEvent], None]) -> None:
        self._subscribers.append(callback)

    def emit(self, event: StageEvent) -> None:
        for callback in self._subscribers:
            callback(event)


@dataclass
class StageRecord:
    """One completed stage execution, folded from its event window."""

    stage: str
    main_phase: bool = False
    wall_s: float = 0.0
    steps: int = 0
    cache: Optional[str] = None
    artifact_bytes: Optional[int] = None
    fingerprint: Optional[str] = None
    outcome: Optional[str] = None
    detail: Optional[Dict[str, object]] = None

    @property
    def cache_hit(self) -> bool:
        return self.cache in CACHE_HIT_LABELS

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "main_phase": self.main_phase,
            "wall_s": self.wall_s,
            "steps": self.steps,
            "cache": self.cache,
            "cache_hit": self.cache_hit,
            "artifact_bytes": self.artifact_bytes,
            "fingerprint": self.fingerprint,
            "outcome": self.outcome,
            "detail": self.detail,
        }


class StageTrace:
    """Event-bus subscriber building the ordered per-stage breakdown."""

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self.records: List[StageRecord] = []
        #: Absorbed-fault audit trail, in emission order: one dict per
        #: ``self_heal`` event (stage + the event's detail payload).
        self.heals: List[Dict[str, object]] = []
        self._open: Dict[str, StageRecord] = {}
        if bus is not None:
            bus.subscribe(self.on_event)

    # -------------------------------------------------------------- folding

    def on_event(self, event: StageEvent) -> None:
        if event.kind == "self_heal":
            entry: Dict[str, object] = {"stage": event.stage}
            entry.update(event.detail or {})
            self.heals.append(entry)
            return
        if event.kind == "stage_start":
            self._open[event.stage] = StageRecord(
                stage=event.stage, main_phase=event.main_phase,
                fingerprint=event.fingerprint)
            return
        record = self._open.get(event.stage)
        if event.kind in ("cache_hit", "artifact_bytes"):
            if record is not None:
                if event.cache is not None:
                    record.cache = event.cache
                if event.artifact_bytes is not None:
                    record.artifact_bytes = event.artifact_bytes
            return
        if event.kind == "stage_end":
            record = self._open.pop(event.stage, None)
            if record is None:  # tolerate an end without a start
                record = StageRecord(stage=event.stage)
            record.main_phase = event.main_phase
            record.wall_s = event.wall_s
            record.steps = event.steps
            record.outcome = event.outcome
            if event.fingerprint is not None:
                record.fingerprint = event.fingerprint
            if record.cache is None and event.cache is not None:
                record.cache = event.cache
            if event.detail is not None:
                record.detail = event.detail
            self.records.append(record)

    # ------------------------------------------------------------ observation

    def substrate_wall(self) -> float:
        """Total wall clock of non-main-phase stages (paper: excluded)."""
        return sum(r.wall_s for r in self.records if not r.main_phase)

    def main_phase_wall(self) -> float:
        return sum(r.wall_s for r in self.records if r.main_phase)

    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    def retry_attempts(self) -> int:
        """Transient-I/O retries attempted (``RetryPolicy`` re-runs that
        healed or preceded a give-up), summed across the heal trail."""
        return sum(1 for heal in self.heals if heal.get("action") == "retry")

    def retry_give_ups(self) -> int:
        """Operations abandoned after the retry budget was spent (the
        ``skip-*`` heal actions: the run continued without the write)."""
        return sum(1 for heal in self.heals
                   if str(heal.get("action", "")).startswith("skip"))

    def record_for(self, stage: str) -> Optional[StageRecord]:
        """The most recent completed record for *stage* (None if never ran)."""
        for record in reversed(self.records):
            if record.stage == stage:
                return record
        return None

    def to_dict(self) -> List[Dict[str, object]]:
        """JSON-ready record list (``--report-json``/bench/batch payloads)."""
        return [record.to_dict() for record in self.records]

    def render(self) -> str:
        """Text table for ``repro-wpa --trace``."""
        lines = ["--- stage trace ---",
                 f"{'stage':<16} {'phase':<9} {'wall':>9} {'steps':>8} "
                 f"{'cache':<12} {'bytes':>8} outcome"]
        for record in self.records:
            phase = "main" if record.main_phase else "substrate"
            cache = record.cache or "-"
            size = str(record.artifact_bytes) if record.artifact_bytes else "-"
            lines.append(
                f"{record.stage:<16} {phase:<9} {record.wall_s:>8.4f}s "
                f"{record.steps:>8} {cache:<12} {size:>8} "
                f"{record.outcome or '-'}")
            detail = record.detail or {}
            memo_calls = (int(detail.get("batch_memo_hits") or 0)
                          + int(detail.get("batch_memo_misses") or 0))
            if memo_calls:
                rate = int(detail.get("batch_memo_hits") or 0) / memo_calls
                lines.append(
                    f"  {'':<14} dedup: batch memo "
                    f"{detail.get('batch_memo_hits')}/{memo_calls} hits "
                    f"({rate:.1%}), interner "
                    f"{detail.get('interner_entries', 0)} sets, arena "
                    f"{detail.get('arena_resident_bytes', 0)} B")
            incr = detail.get("incremental")
            if isinstance(incr, dict):
                if incr.get("fallback_reason"):
                    lines.append(
                        f"  {'':<14} incremental: cold "
                        f"(fallback={incr['fallback_reason']})")
                else:
                    lines.append(
                        f"  {'':<14} incremental: "
                        f"{incr.get('regions_reused', 0)}/"
                        f"{incr.get('regions_total', 0)} regions reused, "
                        f"{len(incr.get('dirty_functions', []))} dirty fn(s), "
                        f"{incr.get('steps_saved', 0)} steps saved")
        lines.append(
            f"substrate: {self.substrate_wall():.4f}s (excluded from main "
            f"phase); main phase: {self.main_phase_wall():.4f}s; "
            f"cache hits: {self.cache_hits()}")
        if self.heals:
            lines.append(
                f"resilience: {len(self.heals)} heal(s), "
                f"{self.retry_attempts()} retry attempt(s), "
                f"{self.retry_give_ups()} give-up(s)")
        return "\n".join(lines)
