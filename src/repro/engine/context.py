"""The single carrier of everything a stage run can depend on.

Before the engine existed, budget meters, fault plans, checkpointers and
resume state were threaded through every solver constructor as keyword
arguments.  A :class:`StageContext` replaces that plumbing: stages read
what they need from the context, and a governed solve gets a per-rung
copy (:meth:`for_solve`) with its own meter/faults/checkpointer while
sharing the artifact and fingerprint tables with the base context.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.engine.events import EventBus


@dataclass
class StageContext:
    """Inputs, configuration and governance for one engine run.

    Exactly one of *module* (a prepared :class:`~repro.ir.module.Module`)
    or *source* (mini-C or textual IR, per *language*) must be provided;
    the parse/prepare stages turn the latter into the former.
    """

    # ---- program input ----
    module: Optional[Any] = None  # pre-built, already-prepared Module
    source: Optional[str] = None
    language: str = "c"
    # ---- solver configuration (ablation flags) ----
    delta: bool = True
    ptrepo: bool = True
    #: Propagation-batch memoisation (repro.datastructs.mde); off = the
    #: --no-mde-batch ablation.  Only meaningful while *ptrepo* is on.
    mde_batch: bool = True
    #: Where the shared mask arena lives (usually <store>/arena.bin);
    #: None = no arena (--no-arena, or no result store configured).
    arena_path: Optional[str] = None
    #: The multi-level dedup engine every rung solved on this context
    #: shares (interner + batch memo + arena).  Created lazily by
    #: Engine.solve; for_solve copies the *reference*, which is exactly
    #: what makes a vsfs→sfs ladder fallback reuse instead of re-intern.
    mde: Optional[Any] = None
    # ---- parallel solving (repro.parallel) ----
    #: Worker count for the solve:*-par stages (1 = serial stages only).
    jobs: int = 1
    #: Transport override for parallel stages ("fork"/"inline"; None = auto).
    parallel_mode: Optional[str] = None
    # ---- resource governance (repro.runtime) ----
    meter: Optional[Any] = None  # BudgetMeter
    faults: Optional[Any] = None  # FaultPlan
    checkpointer: Optional[Any] = None  # Checkpointer
    resume_state: Optional[Any] = None  # checkpoint payload
    resume_step: int = 0
    # ---- function-granular incrementality (repro.incremental) ----
    #: A usable WarmPlan makes the solve rung retract/reseed only the
    #: dirty regions instead of solving cold (DESIGN.md §14).
    warm_plan: Optional[Any] = None
    #: Capture per-node memory + the solved flow graph on the result
    #: (result.incremental_capture) so the run can be stored for the
    #: next warm re-solve.
    capture_regions: bool = False
    # ---- persistence + instrumentation ----
    cache: Optional[Any] = None  # StageCache (stage-level artifact cache)
    #: Strict cache mode: a corrupt/mismatched stage-cache entry raises
    #: (the pre-resilience behaviour, kept for tests) instead of the
    #: default degraded-not-dead quarantine-and-recompute.
    strict_cache: bool = False
    #: RetryPolicy for transient-I/O self-healing (stage-cache writes,
    #: checkpoint saves); None = repro.runtime.resilience.IO_RETRY.
    retry: Optional[Any] = None
    bus: EventBus = field(default_factory=EventBus)
    #: stage name -> built artifact (in-memory memo; shared across rungs).
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: stage name -> content fingerprint (memo; shared across rungs).
    fingerprints: Dict[str, str] = field(default_factory=dict)

    def for_solve(self, **overrides: Any) -> "StageContext":
        """A per-rung view: same program, artifacts, cache and bus, with
        this rung's governance (meter/faults/checkpointer/resume) and
        ablation flags swapped in."""
        return replace(self, **overrides)
