"""The typed stages of the analysis flow.

Each :class:`Stage` names its inputs (edges of the stage graph), how it
is cached (``codec`` round-trips through an encoder, ``replay`` rebuilds
and verifies a digest, ``None`` is never cached), whether it belongs to
the paper's timed main phase, and how to run it from a
:class:`~repro.engine.context.StageContext`.

The graph mirrors the paper's staging::

    parse -> prepare -> andersen -> modref -> memssa -> svfg -> versioning
                   \\-> solve:andersen            (aux as the requested analysis)
                   \\-> solve:icfg-fs             (dense baseline)
                             svfg -> solve:sfs / solve:vsfs  (main phase)

Fingerprints are content hashes: a stage's fingerprint mixes its name,
its version, its configuration token and every upstream fingerprint; the
root is the prepared module's printed-IR hash, so editing the program or
flipping an ablation flag changes exactly the fingerprints downstream of
the change.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.andersen import AndersenAnalysis
from repro.analysis.modref import compute_modref
from repro.core.versioning import version_objects
from repro.errors import AnalysisError
from repro.ir.parser import parse_module
from repro.memssa.builder import build_memssa
from repro.passes.prepare import prepare_module
from repro.store import decode_result, encode_result


def canonical_digest(payload: Any) -> str:
    """SHA-256 of the canonical JSON form of *payload*."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class Stage:
    """One node of the stage graph; subclasses define the flow."""

    name: str = ""
    #: Upstream stage names; executed (and fingerprint-chained) in order.
    inputs: Tuple[str, ...] = ()
    #: Chain these fingerprints instead of ``inputs`` (None: same as inputs).
    fingerprint_inputs: Optional[Tuple[str, ...]] = None
    #: True only for solve stages — the paper's timed main phase.
    main_phase: bool = False
    #: Bump to invalidate cached artifacts when the stage's logic changes.
    version: int = 1
    #: None (never cached), "codec" (encode/decode) or "replay" (digest).
    cache_mode: Optional[str] = None

    def config_token(self, ctx: Any) -> str:
        """Configuration that affects this stage's output (fingerprinted)."""
        return ""

    def run(self, ctx: Any) -> Any:
        raise NotImplementedError

    def steps(self, artifact: Any) -> int:
        """Solver steps the artifact embodies (0 for pure constructions)."""
        return 0

    # ---- codec mode ----

    def encode(self, ctx: Any, artifact: Any) -> Any:
        raise NotImplementedError

    def decode(self, ctx: Any, payload: Any) -> Any:
        raise NotImplementedError

    # ---- replay mode ----

    def digest(self, ctx: Any, artifact: Any) -> str:
        raise NotImplementedError


class ParseStage(Stage):
    """Source text → raw (unprepared) IR module; pass-through for a
    caller-provided module."""

    name = "parse"

    def config_token(self, ctx: Any) -> str:
        if ctx.module is not None:
            from repro.store.codec import ir_fingerprint

            return "module:" + ir_fingerprint(ctx.module)
        text = f"{ctx.language}\x00{ctx.source}"
        return "source:" + hashlib.sha256(text.encode("utf-8")).hexdigest()

    def run(self, ctx: Any) -> Any:
        if ctx.module is not None:
            return ctx.module
        if ctx.source is None:
            raise AnalysisError("the engine needs a module or source text")
        if ctx.language == "c":
            from repro.frontend import compile_c

            return compile_c(ctx.source, prepare=False)
        if ctx.language == "ir":
            return parse_module(ctx.source)
        raise AnalysisError(
            f"unknown language {ctx.language!r} (want 'c' or 'ir')")


class PrepareStage(Stage):
    """Pre-analysis normalisation (repro.passes.prepare), idempotent.

    Content-addressed root of the fingerprint chain: its fingerprint is
    derived from the *prepared* module's printed IR, so identical IR
    reached from different source paths shares every downstream cache
    entry.
    """

    name = "prepare"
    inputs = ("parse",)
    fingerprint_inputs = ()

    def config_token(self, ctx: Any) -> str:
        from repro.store.codec import ir_fingerprint

        return ir_fingerprint(ctx.artifacts[self.name])

    def run(self, ctx: Any) -> Any:
        module = ctx.artifacts["parse"]
        if ctx.module is None:
            # mini-C is promoted to partial SSA; textual IR is analysed
            # as written (matching module_from's historical behaviour).
            prepare_module(module, promote=ctx.language == "c")
        return module


class AndersenStage(Stage):
    """Auxiliary flow-insensitive analysis; cached via the result codec."""

    name = "andersen"
    inputs = ("prepare",)
    cache_mode = "codec"

    def run(self, ctx: Any) -> Any:
        return AndersenAnalysis(ctx.artifacts["prepare"]).run()

    def steps(self, artifact: Any) -> int:
        return artifact.stats.processed_nodes

    def encode(self, ctx: Any, artifact: Any) -> Any:
        return encode_result(artifact)

    def decode(self, ctx: Any, payload: Any) -> Any:
        return decode_result(ctx.artifacts["prepare"], payload)


class ModRefStage(Stage):
    """Per-function mod/ref masks; rebuilt and digest-verified on hits."""

    name = "modref"
    inputs = ("prepare", "andersen")
    cache_mode = "replay"

    def run(self, ctx: Any) -> Any:
        return compute_modref(ctx.artifacts["prepare"],
                              ctx.artifacts["andersen"])

    def digest(self, ctx: Any, artifact: Any) -> str:
        return canonical_digest({
            "mod": {fn.name: format(mask, "x")
                    for fn, mask in artifact.mod.items()},
            "ref": {fn.name: format(mask, "x")
                    for fn, mask in artifact.ref.items()},
        })


class MemSSAStage(Stage):
    """Memory SSA (μ/χ/MEMPHI annotations); replay-cached."""

    name = "memssa"
    inputs = ("prepare", "andersen", "modref")
    cache_mode = "replay"

    def run(self, ctx: Any) -> Any:
        return build_memssa(ctx.artifacts["prepare"],
                            ctx.artifacts["andersen"],
                            ctx.artifacts["modref"])

    def digest(self, ctx: Any, artifact: Any) -> str:
        def mus(table: Dict[Any, Any]) -> List[List[int]]:
            return sorted([inst.id, mu.obj.id, mu.ver]
                          for inst, entries in table.items()
                          for mu in entries)

        def chis(table: Dict[Any, Any]) -> List[List[int]]:
            return sorted([inst.id, chi.obj.id, chi.new_ver, chi.old_ver]
                          for inst, entries in table.items()
                          for chi in entries)

        payload = {
            "load_mus": mus(artifact.load_mus),
            "store_chis": chis(artifact.store_chis),
            "call_mus": mus(artifact.call_mus),
            "call_chis": chis(artifact.call_chis),
            "entry_chis": sorted(
                [fn.name, chi.obj.id, chi.new_ver, chi.old_ver]
                for fn, entries in artifact.entry_chis.items()
                for chi in entries),
            "exit_mus": sorted(
                [fn.name, mu.obj.id, mu.ver]
                for fn, entries in artifact.exit_mus.items()
                for mu in entries),
            "memphis": sorted(
                [fn.name, phi.block.name, phi.obj.id, phi.new_ver,
                 sorted([pred.name, ver]
                        for pred, ver in phi.incomings.items())]
                for fn, phis in artifact.memphis.items()
                for phi in phis),
        }
        return canonical_digest(payload)


class SVFGStage(Stage):
    """The sparse value-flow graph; replay-cached.

    The built graph is the *immutable* shared substrate — solvers receive
    :meth:`SVFG.copy` instances because on-the-fly call-graph resolution
    grows the edge structure.
    """

    name = "svfg"
    inputs = ("prepare", "andersen", "memssa")
    cache_mode = "replay"

    def run(self, ctx: Any) -> Any:
        from repro.svfg.builder import build_svfg

        return build_svfg(ctx.artifacts["prepare"],
                          ctx.artifacts["andersen"],
                          ctx.artifacts["memssa"])

    def digest(self, ctx: Any, artifact: Any) -> str:
        payload = {
            "nodes": [type(node).__name__ for node in artifact.nodes],
            "direct": sorted(
                [src, dst]
                for src, succs in enumerate(artifact.direct_succs)
                for dst in succs),
            "indirect": sorted(list(edge) for edge in artifact._edge_set),
            "delta": sorted(artifact.delta_nodes),
        }
        return canonical_digest(payload)


class VersioningStage(Stage):
    """Object versioning (prelabel + meld) on the shared SVFG.

    Digest excludes the wall-clock ``time`` entry of the snapshot — the
    artifact's identity is its labelling, not how long it took.
    """

    name = "versioning"
    inputs = ("svfg",)
    cache_mode = "replay"

    def run(self, ctx: Any) -> Any:
        return version_objects(ctx.artifacts["svfg"])

    def digest(self, ctx: Any, artifact: Any) -> str:
        snapshot = dict(artifact.snapshot())
        snapshot.pop("time", None)
        return canonical_digest(snapshot)


class SolveStage(Stage):
    """One solve rung (the timed main phase); never disk-cached — final
    results live in the :class:`~repro.store.ResultStore`."""

    main_phase = True

    def __init__(self, level: str):
        self.level = level
        self.name = f"solve:{level}"
        self.inputs = (("svfg",) if level in ("sfs", "vsfs")
                       else ("prepare",))

    def config_token(self, ctx: Any) -> str:
        if self.level in ("sfs", "vsfs"):
            return f"delta={ctx.delta},ptrepo={ctx.ptrepo}"
        return ""

    def run(self, ctx: Any) -> Any:
        solver = self.make_solver(ctx)
        plan = ctx.warm_plan
        warm = (plan is not None and getattr(plan, "usable", False)
                and getattr(plan, "analysis", None) == self.level
                and ctx.resume_state is None)
        if ctx.resume_state is not None:
            solver.restore_state(ctx.resume_state, ctx.resume_step)
        if warm:
            solver.warm_start(plan)
        result = solver.run()
        if warm:
            plan.stats.finish(result.stats.nodes_processed)
            result.incremental = plan.stats
        elif plan is not None and self.level in ("sfs", "vsfs"):
            # A plan that fell back to cold still reports why.
            result.incremental = plan.stats
        if ctx.capture_regions and self.level in ("sfs", "vsfs"):
            from repro.incremental.deps import node_flow_graph

            node_in, node_out = solver.export_node_memory()
            result.incremental_capture = {
                "node_in": node_in,
                "node_out": node_out,
                "flow": node_flow_graph(solver.svfg),
            }
        return result

    def make_solver(self, ctx: Any) -> Any:
        module = ctx.artifacts["prepare"]
        if self.level == "andersen":
            return AndersenAnalysis(module, ctx=ctx)
        if self.level == "icfg-fs":
            from repro.solvers.icfg_fs import ICFGFlowSensitive

            return ICFGFlowSensitive(module, ctx=ctx)
        svfg = ctx.artifacts["svfg"].copy()
        if self.level == "sfs":
            from repro.solvers.sfs import SFSAnalysis

            return SFSAnalysis(svfg, delta=ctx.delta, ptrepo=ctx.ptrepo,
                               ctx=ctx)
        if self.level == "vsfs":
            from repro.core.vsfs import VSFSAnalysis

            return VSFSAnalysis(svfg, delta=ctx.delta, ptrepo=ctx.ptrepo,
                                ctx=ctx)
        raise AnalysisError(f"unknown solve level {self.level!r}")

    def steps(self, artifact: Any) -> int:
        # Per-execution work only: a resumed solve's nodes_processed is
        # cumulative across attempts, and trace records are per attempt —
        # reporting the cumulative figure would double-count every
        # pre-crash pop when traces are summed (batch stage totals).
        stats = artifact.stats
        processed = getattr(stats, "nodes_processed", None) \
            or getattr(stats, "processed_nodes", 0)
        return processed - getattr(stats, "resumed_steps", 0)


class ParallelSolveStage(SolveStage):
    """Sharded multiprocessing solve (:mod:`repro.parallel`).

    ``solve:sfs-par`` / ``solve:vsfs-par`` run the corresponding staged
    kernel on ``ctx.jobs`` workers over an SCC-condensed partition of the
    SVFG.  The result is bit-identical to the serial rung's (the solvers
    are confluent; DESIGN.md §10), so the worker count is a *run*
    configuration, not an analysis change — which is why these stages
    share the serial rung's result identity and only the trace and the
    attached ``result.parallel`` stats differ.
    """

    def __init__(self, level: str):
        self.level = level
        self.base_level = level[: -len("-par")]
        self.name = f"solve:{level}"
        self.inputs = ("svfg",)

    def config_token(self, ctx: Any) -> str:
        return (f"delta={ctx.delta},ptrepo={ctx.ptrepo},"
                f"jobs={ctx.jobs},mode={ctx.parallel_mode}")

    def run(self, ctx: Any) -> Any:
        from repro.parallel.driver import solve_parallel

        plan = ctx.warm_plan
        if plan is not None and getattr(plan, "usable", False) \
                and getattr(plan, "analysis", None) == self.base_level:
            # A warm re-solve retracts/reseeds from a stored solution; a
            # sharded run would have to split that preload across worker
            # partitions.  Collapse to the serial kernel — result-
            # identical by confluence (DESIGN.md §10) — and keep the
            # warm savings instead of the parallel speedup.
            from repro.engine.events import heal_event

            ctx.bus.emit(heal_event(self.name, "parallel", "collapse",
                                    reason="warm-start", jobs=ctx.jobs))
            return SolveStage(self.base_level).run(ctx)
        if ctx.resume_state is not None:
            raise AnalysisError(
                "parallel solve stages cannot resume a serial checkpoint; "
                "rerun serially (--jobs 1) to resume")
        budget = ctx.meter.budget if ctx.meter is not None else None
        result = solve_parallel(
            ctx.artifacts["svfg"], self.base_level, ctx.jobs,
            delta=ctx.delta, ptrepo=ctx.ptrepo, budget=budget,
            faults=ctx.faults, versioning=ctx.artifacts.get("versioning"),
            mode=ctx.parallel_mode, mde=getattr(ctx, "mde", None),
            mde_batch=getattr(ctx, "mde_batch", True))
        if ctx.meter is not None:
            # The workers metered themselves (per-worker budgets); reflect
            # their pops into the governing meter so ladder reports and
            # stage step totals add up.
            ctx.meter.steps += result.stats.nodes_processed
        return result


#: Solve levels the engine can run (= degradation-ladder rungs).
SOLVE_LEVELS = ("andersen", "sfs", "vsfs", "icfg-fs")

#: Parallel variants of the staged solvers (result-identical to serial).
PARALLEL_SOLVE_LEVELS = ("sfs-par", "vsfs-par")


def default_stages() -> Dict[str, Stage]:
    """The standard stage registry, name → stage."""
    stages: Dict[str, Stage] = {}
    for stage in (ParseStage(), PrepareStage(), AndersenStage(),
                  ModRefStage(), MemSSAStage(), SVFGStage(),
                  VersioningStage()):
        stages[stage.name] = stage
    for level in SOLVE_LEVELS:
        solve = SolveStage(level)
        stages[solve.name] = solve
    for level in PARALLEL_SOLVE_LEVELS:
        solve = ParallelSolveStage(level)
        stages[solve.name] = solve
    return stages
