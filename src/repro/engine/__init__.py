"""The instrumented stage-graph engine behind the analysis flow.

``parse → prepare → andersen → modref → memssa → svfg → versioning →
solve(sfs|vsfs|icfg-fs|andersen)`` as first-class, fingerprinted,
cacheable stages executed by :class:`Engine` over one
:class:`StageContext`.  :class:`~repro.pipeline.AnalysisPipeline` is a
thin compatibility shim over this package.
"""

from repro.engine.cache import STAGE_CACHE_SCHEMA, CacheProbe, StageCache
from repro.engine.context import StageContext
from repro.engine.engine import Engine
from repro.engine.events import EventBus, StageEvent, StageRecord, StageTrace
from repro.engine.stages import SOLVE_LEVELS, Stage, default_stages

__all__ = [
    "CacheProbe",
    "Engine",
    "EventBus",
    "SOLVE_LEVELS",
    "STAGE_CACHE_SCHEMA",
    "Stage",
    "StageCache",
    "StageContext",
    "StageEvent",
    "StageRecord",
    "StageTrace",
    "default_stages",
]
