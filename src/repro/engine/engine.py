"""Topological executor for the stage graph.

:meth:`Engine.ensure` builds a substrate stage after its inputs,
memoising artifacts in the context and consulting the stage cache when
one is attached; :meth:`Engine.solve` runs one solve rung (the timed
main phase) under per-rung governance.  Every execution is bracketed by
events on the context's bus, folded by the engine's
:class:`~repro.engine.events.StageTrace` into the per-stage breakdown
reproducing the paper's setup-vs-main-phase split.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict, Optional

from repro.engine.context import StageContext
from repro.engine.events import StageEvent, StageTrace
from repro.engine.stages import Stage, default_stages
from repro.errors import AnalysisError


class Engine:
    """Executes stages over one :class:`StageContext`."""

    def __init__(self, ctx: StageContext,
                 stages: Optional[Dict[str, Stage]] = None):
        self.ctx = ctx
        self.stages = stages if stages is not None else default_stages()
        self.trace = StageTrace(ctx.bus)

    # ----------------------------------------------------------- fingerprints

    def fingerprint(self, name: str) -> str:
        """Content fingerprint of *name* under the base context's config.

        Requires the stage's fingerprint inputs to have been ensured
        (the prepare stage is the content-addressed root and must have
        run before anything downstream is fingerprinted).
        """
        fp = self.ctx.fingerprints.get(name)
        if fp is None:
            fp = self._fingerprint_for(self.stages[name], self.ctx)
            self.ctx.fingerprints[name] = fp
        return fp

    def _fingerprint_for(self, stage: Stage, ctx: Any) -> str:
        chained = stage.fingerprint_inputs
        if chained is None:
            chained = stage.inputs
        parts = [stage.name, f"v{stage.version}", stage.config_token(ctx)]
        parts.extend(self.fingerprint(dep) for dep in chained)
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    # -------------------------------------------------------------- substrate

    def ensure(self, name: str) -> Any:
        """Build (or load) the substrate artifact *name*, inputs first."""
        ctx = self.ctx
        if name in ctx.artifacts:
            return ctx.artifacts[name]
        stage = self.stages.get(name)
        if stage is None:
            raise AnalysisError(f"unknown stage {name!r}")
        for dep in stage.inputs:
            self.ensure(dep)
        cacheable = stage.cache_mode is not None and ctx.cache is not None
        fp = self.fingerprint(name) if cacheable else None
        ctx.bus.emit(StageEvent("stage_start", name,
                                main_phase=stage.main_phase, fingerprint=fp))
        begun = time.perf_counter()
        cache_label: Optional[str] = None
        try:
            artifact: Any = None
            if cacheable:
                probe = ctx.cache.lookup(stage, ctx, fp)
                if probe.mode == "codec":
                    artifact = probe.artifact
                    cache_label = "codec"
                    ctx.bus.emit(StageEvent(
                        "cache_hit", name, cache="codec",
                        artifact_bytes=probe.nbytes, fingerprint=fp))
                elif probe.mode == "replay":
                    artifact = stage.run(ctx)
                    if stage.digest(ctx, artifact) != probe.digest:
                        raise ctx.cache.reject(
                            probe.path,
                            f"stage {name!r} rebuild does not match the "
                            f"entry's recorded digest")
                    cache_label = "replay"
                    ctx.bus.emit(StageEvent(
                        "cache_hit", name, cache="replay",
                        artifact_bytes=probe.nbytes, fingerprint=fp))
                else:
                    cache_label = "miss"
            if artifact is None:
                artifact = stage.run(ctx)
                if cacheable:
                    __, nbytes = ctx.cache.store(stage, ctx, fp, artifact)
                    ctx.bus.emit(StageEvent(
                        "artifact_bytes", name, artifact_bytes=nbytes,
                        fingerprint=fp))
        except BaseException as exc:
            ctx.bus.emit(StageEvent(
                "stage_end", name, wall_s=time.perf_counter() - begun,
                main_phase=stage.main_phase, cache=cache_label,
                fingerprint=fp, outcome=type(exc).__name__))
            raise
        ctx.artifacts[name] = artifact
        if fp is None:
            fp = self.fingerprint(name)  # content roots hash post-run
        ctx.bus.emit(StageEvent(
            "stage_end", name, wall_s=time.perf_counter() - begun,
            steps=stage.steps(artifact), main_phase=stage.main_phase,
            cache=cache_label, fingerprint=fp, outcome="ok"))
        return artifact

    def prime_substrate(self, analysis: str) -> None:
        """Build everything the paper excludes from *analysis*'s main phase
        (hits the stage cache on warm runs)."""
        if analysis.endswith("-par"):
            analysis = analysis[: -len("-par")]
        if analysis in ("sfs", "vsfs"):
            self.ensure("svfg")
            if analysis == "vsfs":
                self.ensure("versioning")
        else:  # ander / andersen / icfg-fs
            self.ensure("prepare")

    # ------------------------------------------------------------ main phase

    def solve(self, level: str, delta: Optional[bool] = None,
              ptrepo: Optional[bool] = None, meter: Any = None,
              faults: Any = None, checkpointer: Any = None,
              resume_state: Any = None, resume_step: int = 0,
              jobs: Optional[int] = None,
              parallel_mode: Optional[str] = None) -> Any:
        """Run one solve rung; substrate is ensured (untimed) first.

        The Andersen level keeps the auxiliary result's memo semantics: a
        plain call reuses the substrate artifact, a checkpointed/resumed
        call always runs fresh, and a completed governed run re-seeds the
        substrate memo (a completed run is a valid auxiliary analysis).
        """
        ctx = self.ctx
        name = f"solve:{level}"
        stage = self.stages.get(name)
        if stage is None:
            raise AnalysisError(f"unknown solve level {level!r}")
        if level == "andersen":
            if meter is None and checkpointer is None and resume_state is None:
                return self.ensure("andersen")
            if checkpointer is None and resume_state is None \
                    and "andersen" in ctx.artifacts:
                return ctx.artifacts["andersen"]
            self.ensure("prepare")
        else:
            # Build the substrate outside the solve's timed window.
            for dep in stage.inputs:
                self.ensure(dep)
        base_level = level[:-len("-par")] if level.endswith("-par") else level
        effective_ptrepo = ctx.ptrepo if ptrepo is None else bool(ptrepo)
        if (effective_ptrepo and base_level in ("sfs", "vsfs")
                and ctx.mde is None):
            # Lazily create the dedup engine on the *base* context: every
            # rung view copies the reference, so a degradation-ladder
            # fallback (or a second governed solve on this pipeline)
            # shares one interner/batch memo, and the arena — when a
            # result store configured one — is opened exactly once.
            from repro.datastructs.mde import MdeEngine

            ctx.mde = MdeEngine.open(ctx.arena_path)
        rung = ctx.for_solve(
            delta=ctx.delta if delta is None else bool(delta),
            ptrepo=ctx.ptrepo if ptrepo is None else bool(ptrepo),
            jobs=ctx.jobs if jobs is None else max(1, int(jobs)),
            parallel_mode=(ctx.parallel_mode if parallel_mode is None
                           else parallel_mode),
            meter=meter, faults=faults, checkpointer=checkpointer,
            resume_state=resume_state, resume_step=resume_step)
        fp = self._fingerprint_for(stage, rung)
        ctx.bus.emit(StageEvent("stage_start", name, main_phase=True,
                                fingerprint=fp))
        begun = time.perf_counter()
        try:
            result = stage.run(rung)
        except BaseException as exc:
            ctx.bus.emit(StageEvent(
                "stage_end", name, wall_s=time.perf_counter() - begun,
                main_phase=True, fingerprint=fp,
                outcome=type(exc).__name__))
            raise
        if level == "andersen":
            ctx.artifacts["andersen"] = result
        detail: Optional[Dict[str, Any]] = None
        if ctx.mde is not None and base_level in ("sfs", "vsfs"):
            # Persist masks interned by this rung so the next run (or the
            # next process) warm-attaches them; a read-only or misaligned
            # arena makes this a no-op.
            ctx.mde.flush()
            stats = getattr(result, "stats", None)
            if stats is not None and getattr(stats, "ptrepo_enabled", False):
                detail = {
                    "batch_memo_hits": getattr(stats, "batch_memo_hits", 0),
                    "batch_memo_misses": getattr(stats, "batch_memo_misses", 0),
                    "interner_entries": getattr(stats, "interner_entries", 0),
                    "arena_resident_bytes": getattr(
                        stats, "arena_resident_bytes", 0),
                }
        ctx.bus.emit(StageEvent(
            "stage_end", name, wall_s=time.perf_counter() - begun,
            steps=stage.steps(result), main_phase=True, fingerprint=fp,
            outcome="ok", detail=detail))
        return result

    # ----------------------------------------------------------- integration

    def record_external_hit(self, stage_name: str, label: str,
                            nbytes: int = 0) -> None:
        """Record a cache hit satisfied outside the engine (e.g. the
        result store short-circuiting a solve) so traces stay complete."""
        self.ctx.bus.emit(StageEvent("stage_start", stage_name,
                                     main_phase=True))
        self.ctx.bus.emit(StageEvent("cache_hit", stage_name, cache=label,
                                     artifact_bytes=nbytes or None))
        self.ctx.bus.emit(StageEvent("stage_end", stage_name, wall_s=0.0,
                                     main_phase=True, outcome="ok"))
