"""Topological executor for the stage graph.

:meth:`Engine.ensure` builds a substrate stage after its inputs,
memoising artifacts in the context and consulting the stage cache when
one is attached; :meth:`Engine.solve` runs one solve rung (the timed
main phase) under per-rung governance.  Every execution is bracketed by
events on the context's bus, folded by the engine's
:class:`~repro.engine.events.StageTrace` into the per-stage breakdown
reproducing the paper's setup-vs-main-phase split.
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Dict, Optional

from repro.engine.context import StageContext
from repro.engine.events import StageEvent, StageTrace, heal_event
from repro.engine.stages import Stage, default_stages
from repro.errors import AnalysisError, CheckpointError, InjectedFault


class Engine:
    """Executes stages over one :class:`StageContext`."""

    def __init__(self, ctx: StageContext,
                 stages: Optional[Dict[str, Stage]] = None):
        self.ctx = ctx
        self.stages = stages if stages is not None else default_stages()
        self.trace = StageTrace(ctx.bus)

    # ----------------------------------------------------------- fingerprints

    def fingerprint(self, name: str) -> str:
        """Content fingerprint of *name* under the base context's config.

        Requires the stage's fingerprint inputs to have been ensured
        (the prepare stage is the content-addressed root and must have
        run before anything downstream is fingerprinted).
        """
        fp = self.ctx.fingerprints.get(name)
        if fp is None:
            fp = self._fingerprint_for(self.stages[name], self.ctx)
            self.ctx.fingerprints[name] = fp
        return fp

    def _fingerprint_for(self, stage: Stage, ctx: Any) -> str:
        chained = stage.fingerprint_inputs
        if chained is None:
            chained = stage.inputs
        parts = [stage.name, f"v{stage.version}", stage.config_token(ctx)]
        parts.extend(self.fingerprint(dep) for dep in chained)
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    # -------------------------------------------------------------- substrate

    def _cache_lookup(self, stage: Stage, fp: str) -> Any:
        """Probe the stage cache, healing failed probes into misses.

        The ``stage_cache_read`` fault point fires here.  A corrupt or
        unreadable entry is quarantined by :class:`StageCache` itself;
        unless the context runs in ``strict_cache`` mode, the failure is
        absorbed as a ``self_heal``/``recompute`` event and the probe
        degrades to a miss — the stage simply rebuilds.
        """
        ctx = self.ctx
        from repro.engine.cache import CacheProbe

        try:
            if ctx.faults is not None:
                ctx.faults.fire("stage_cache_read", stage=stage.name)
            return ctx.cache.lookup(stage, ctx, fp)
        except (CheckpointError, InjectedFault, OSError) as exc:
            if ctx.strict_cache:
                raise
            ctx.bus.emit(heal_event(
                stage.name, "io", "recompute", point="stage_cache_read",
                error=type(exc).__name__,
                path=getattr(exc, "path", None)))
            ctx.cache.misses += 1
            return CacheProbe("miss")

    def _cache_store(self, stage: Stage, fp: str, artifact: Any) -> None:
        """Persist a fresh artifact, retrying transient failures.

        The ``stage_cache_write`` fault point fires inside the retried
        window.  Exhausting the :class:`RetryPolicy` budget never fails
        the run — the artifact is simply not cached this time
        (``self_heal``/``skip-write``).
        """
        ctx = self.ctx
        name = stage.name

        def attempt() -> None:
            if ctx.faults is not None:
                ctx.faults.fire("stage_cache_write", stage=name)
            __, nbytes = ctx.cache.store(stage, ctx, fp, artifact)
            ctx.bus.emit(StageEvent(
                "artifact_bytes", name, artifact_bytes=nbytes,
                fingerprint=fp))

        def on_retry(attempt_no: int, exc: BaseException) -> None:
            ctx.bus.emit(heal_event(
                name, "io", "retry", point="stage_cache_write",
                attempt=attempt_no, error=type(exc).__name__))

        policy = ctx.retry
        if policy is None:
            from repro.runtime.resilience import IO_RETRY

            policy = IO_RETRY
        try:
            policy.run(attempt, retry_on=(OSError, InjectedFault),
                       on_retry=on_retry)
        except (OSError, InjectedFault) as exc:
            ctx.bus.emit(heal_event(
                name, "io", "skip-write", point="stage_cache_write",
                error=type(exc).__name__))

    def ensure(self, name: str) -> Any:
        """Build (or load) the substrate artifact *name*, inputs first."""
        ctx = self.ctx
        if name in ctx.artifacts:
            return ctx.artifacts[name]
        stage = self.stages.get(name)
        if stage is None:
            raise AnalysisError(f"unknown stage {name!r}")
        for dep in stage.inputs:
            self.ensure(dep)
        cacheable = stage.cache_mode is not None and ctx.cache is not None
        fp = self.fingerprint(name) if cacheable else None
        ctx.bus.emit(StageEvent("stage_start", name,
                                main_phase=stage.main_phase, fingerprint=fp))
        begun = time.perf_counter()
        cache_label: Optional[str] = None
        try:
            artifact: Any = None
            need_store = False
            if cacheable:
                probe = self._cache_lookup(stage, fp)
                if probe.mode == "codec":
                    artifact = probe.artifact
                    cache_label = "codec"
                    ctx.bus.emit(StageEvent(
                        "cache_hit", name, cache="codec",
                        artifact_bytes=probe.nbytes, fingerprint=fp))
                elif probe.mode == "replay":
                    artifact = stage.run(ctx)
                    if stage.digest(ctx, artifact) != probe.digest:
                        # The rebuild is the trustworthy object; the entry
                        # is evidence.  Quarantine it and (unless strict)
                        # keep the rebuild, re-recording its digest.
                        err = ctx.cache.reject(
                            probe.path,
                            f"stage {name!r} rebuild does not match the "
                            f"entry's recorded digest")
                        if ctx.strict_cache:
                            raise err
                        ctx.bus.emit(heal_event(
                            name, "io", "recompute",
                            point="stage_cache_read",
                            error="CheckpointError", reason="digest-mismatch",
                            path=err.path))
                        cache_label = "miss"
                        need_store = True
                    else:
                        cache_label = "replay"
                        ctx.bus.emit(StageEvent(
                            "cache_hit", name, cache="replay",
                            artifact_bytes=probe.nbytes, fingerprint=fp))
                else:
                    cache_label = "miss"
            if artifact is None:
                artifact = stage.run(ctx)
                need_store = cacheable
            if need_store:
                self._cache_store(stage, fp, artifact)
        except BaseException as exc:
            ctx.bus.emit(StageEvent(
                "stage_end", name, wall_s=time.perf_counter() - begun,
                main_phase=stage.main_phase, cache=cache_label,
                fingerprint=fp, outcome=type(exc).__name__))
            raise
        ctx.artifacts[name] = artifact
        if fp is None:
            fp = self.fingerprint(name)  # content roots hash post-run
        ctx.bus.emit(StageEvent(
            "stage_end", name, wall_s=time.perf_counter() - begun,
            steps=stage.steps(artifact), main_phase=stage.main_phase,
            cache=cache_label, fingerprint=fp, outcome="ok"))
        return artifact

    def prime_substrate(self, analysis: str) -> None:
        """Build everything the paper excludes from *analysis*'s main phase
        (hits the stage cache on warm runs)."""
        if analysis.endswith("-par"):
            analysis = analysis[: -len("-par")]
        if analysis in ("sfs", "vsfs"):
            self.ensure("svfg")
            if analysis == "vsfs":
                self.ensure("versioning")
        else:  # ander / andersen / icfg-fs
            self.ensure("prepare")

    # ------------------------------------------------------------ main phase

    def solve(self, level: str, delta: Optional[bool] = None,
              ptrepo: Optional[bool] = None, meter: Any = None,
              faults: Any = None, checkpointer: Any = None,
              resume_state: Any = None, resume_step: int = 0,
              jobs: Optional[int] = None,
              parallel_mode: Optional[str] = None,
              warm_plan: Any = None,
              capture_regions: Optional[bool] = None) -> Any:
        """Run one solve rung; substrate is ensured (untimed) first.

        The Andersen level keeps the auxiliary result's memo semantics: a
        plain call reuses the substrate artifact, a checkpointed/resumed
        call always runs fresh, and a completed governed run re-seeds the
        substrate memo (a completed run is a valid auxiliary analysis).
        """
        ctx = self.ctx
        name = f"solve:{level}"
        stage = self.stages.get(name)
        if stage is None:
            raise AnalysisError(f"unknown solve level {level!r}")
        if level == "andersen":
            if meter is None and checkpointer is None and resume_state is None:
                return self.ensure("andersen")
            if checkpointer is None and resume_state is None \
                    and "andersen" in ctx.artifacts:
                return ctx.artifacts["andersen"]
            self.ensure("prepare")
        else:
            # Build the substrate outside the solve's timed window.
            for dep in stage.inputs:
                self.ensure(dep)
        base_level = level[:-len("-par")] if level.endswith("-par") else level
        effective_ptrepo = ctx.ptrepo if ptrepo is None else bool(ptrepo)
        rung_faults = faults if faults is not None else ctx.faults
        if (effective_ptrepo and base_level in ("sfs", "vsfs")
                and ctx.mde is None):
            # Lazily create the dedup engine on the *base* context: every
            # rung view copies the reference, so a degradation-ladder
            # fallback (or a second governed solve on this pipeline)
            # shares one interner/batch memo, and the arena — when a
            # result store configured one — is opened exactly once.
            from repro.datastructs.mde import MdeEngine

            arena_path = ctx.arena_path
            if arena_path is not None and rung_faults is not None:
                try:
                    rung_faults.fire("arena_attach", stage=name)
                except InjectedFault as exc:
                    # The arena is a cache: proceed arena-less rather
                    # than fail the solve over an unattachable file.
                    arena_path = None
                    ctx.bus.emit(heal_event(
                        name, "io", "detached", point="arena_attach",
                        error=type(exc).__name__))
            ctx.mde = MdeEngine.open(arena_path)
            if ctx.mde.arena_quarantined is not None:
                # MdeEngine already quarantined the corrupt file and
                # re-created a fresh arena; surface the rebuild.
                ctx.bus.emit(heal_event(
                    name, "io", "rebuilt", point="arena_attach",
                    path=ctx.mde.arena_quarantined))
        rung = ctx.for_solve(
            delta=ctx.delta if delta is None else bool(delta),
            ptrepo=ctx.ptrepo if ptrepo is None else bool(ptrepo),
            jobs=ctx.jobs if jobs is None else max(1, int(jobs)),
            parallel_mode=(ctx.parallel_mode if parallel_mode is None
                           else parallel_mode),
            meter=meter, faults=faults, checkpointer=checkpointer,
            resume_state=resume_state, resume_step=resume_step,
            warm_plan=warm_plan if warm_plan is not None else ctx.warm_plan,
            capture_regions=(ctx.capture_regions if capture_regions is None
                             else bool(capture_regions)))
        fp = self._fingerprint_for(stage, rung)
        ctx.bus.emit(StageEvent("stage_start", name, main_phase=True,
                                fingerprint=fp))
        begun = time.perf_counter()
        try:
            result = stage.run(rung)
        except BaseException as exc:
            ctx.bus.emit(StageEvent(
                "stage_end", name, wall_s=time.perf_counter() - begun,
                main_phase=True, fingerprint=fp,
                outcome=type(exc).__name__))
            raise
        if level == "andersen":
            ctx.artifacts["andersen"] = result
        pstats = getattr(result, "parallel", None)
        if pstats is not None and getattr(pstats, "revivals", 0):
            ctx.bus.emit(heal_event(
                name, "parallel", "revive",
                revivals=getattr(pstats, "revivals", 0),
                worker_failures=getattr(pstats, "worker_failures", 0) or None,
                heartbeat_timeouts=(
                    getattr(pstats, "heartbeat_timeouts", 0) or None)))
        detail: Optional[Dict[str, Any]] = None
        if ctx.mde is not None and base_level in ("sfs", "vsfs"):
            # Persist masks interned by this rung so the next run (or the
            # next process) warm-attaches them; a read-only or misaligned
            # arena makes this a no-op — and a failing flush must never
            # fail a completed solve (the arena is a cache).
            try:
                if rung_faults is not None:
                    rung_faults.fire("arena_append", stage=name)
                ctx.mde.flush()
            except (InjectedFault, OSError) as exc:
                ctx.bus.emit(heal_event(
                    name, "io", "skip-flush", point="arena_append",
                    error=type(exc).__name__))
            stats = getattr(result, "stats", None)
            if stats is not None and getattr(stats, "ptrepo_enabled", False):
                detail = {
                    "batch_memo_hits": getattr(stats, "batch_memo_hits", 0),
                    "batch_memo_misses": getattr(stats, "batch_memo_misses", 0),
                    "interner_entries": getattr(stats, "interner_entries", 0),
                    "arena_resident_bytes": getattr(
                        stats, "arena_resident_bytes", 0),
                }
        incr = getattr(result, "incremental", None)
        if incr is not None:
            detail = dict(detail or {})
            detail["incremental"] = incr.to_dict()
        ctx.bus.emit(StageEvent(
            "stage_end", name, wall_s=time.perf_counter() - begun,
            steps=stage.steps(result), main_phase=True, fingerprint=fp,
            outcome="ok", detail=detail))
        return result

    # ----------------------------------------------------------- integration

    def record_external_hit(self, stage_name: str, label: str,
                            nbytes: int = 0) -> None:
        """Record a cache hit satisfied outside the engine (e.g. the
        result store short-circuiting a solve) so traces stay complete."""
        self.ctx.bus.emit(StageEvent("stage_start", stage_name,
                                     main_phase=True))
        self.ctx.bus.emit(StageEvent("cache_hit", stage_name, cache=label,
                                     artifact_bytes=nbytes or None))
        self.ctx.bus.emit(StageEvent("stage_end", stage_name, wall_s=0.0,
                                     main_phase=True, outcome="ok"))
