"""Content-addressed on-disk cache for intermediate stage artifacts.

Each entry is a sealed JSON document (:mod:`repro.store.atomic`) named by
the stage's content fingerprint — IR hash × upstream fingerprints ×
configuration — so an edited program or changed configuration can never
be served a stale artifact.  Two storage modes:

- ``codec``: the artifact round-trips through an explicit encoder
  (Andersen results reuse the :mod:`repro.store` result codec); a hit
  skips the stage entirely.
- ``replay``: the artifact is rebuilt deterministically from its (cached
  or memoised) inputs and verified against the recorded digest — used for
  structures that are cheap to rebuild but expensive to serialise
  (mod/ref, memory SSA, the SVFG, object versioning).  A digest mismatch
  means the rebuild is not the artifact the entry promised, which is
  treated exactly like corruption.

Anything that fails verification is quarantined (``*.quarantined``) and
raised as a typed :class:`~repro.errors.CheckpointError` — mirroring the
result store, the cache never silently returns damaged data and a bad
entry can never be loaded twice.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.ir.fingerprint import FINGERPRINT_SCHEME
from repro.store.atomic import quarantine_file, read_sealed_json, write_sealed_json

#: Bumped whenever the stage-entry payload layout changes.
#: 2: fingerprints derive from the per-function fingerprint scheme
#: (:data:`repro.ir.fingerprint.FINGERPRINT_SCHEME`); entries carry
#: ``fp_scheme`` so stale pre-refactor entries quarantine instead of
#: silently (mis)matching.
STAGE_CACHE_SCHEMA = 2


@dataclass
class CacheProbe:
    """Outcome of one cache lookup."""

    mode: str  # "miss" | "codec" | "replay"
    artifact: Any = None  # decoded artifact (codec hits only)
    digest: Optional[str] = None  # recorded digest (replay hits only)
    path: Optional[str] = None
    nbytes: int = 0


class StageCache:
    """Directory of sealed per-stage artifact entries."""

    KIND = "stage-artifact"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined: List[str] = []

    def entry_path(self, stage_name: str, fingerprint: str) -> str:
        safe = stage_name.replace(":", "-")
        return os.path.join(self.directory,
                            f"stage-{safe}-{fingerprint[:40]}.json")

    # ---------------------------------------------------------------- reading

    def lookup(self, stage: Any, ctx: Any, fingerprint: str) -> CacheProbe:
        """Probe for *stage*'s entry under *fingerprint*, fully verified.

        Returns a ``miss`` probe when absent.  A present-but-untrustworthy
        entry (bad checksum, wrong stage/fingerprint/mode, undecodable
        payload) is quarantined and raised as :class:`CheckpointError`.
        """
        path = self.entry_path(stage.name, fingerprint)
        if not os.path.exists(path):
            self.misses += 1
            return CacheProbe("miss")
        try:
            meta, payload = read_sealed_json(path, self.KIND,
                                             STAGE_CACHE_SCHEMA)
            if meta.get("fp_scheme") != FINGERPRINT_SCHEME:
                raise CheckpointError(
                    f"entry was recorded under fingerprint scheme "
                    f"{meta.get('fp_scheme')!r}, not {FINGERPRINT_SCHEME} — "
                    f"stale pre-refactor entry", reason="schema", path=path)
            if (meta.get("stage") != stage.name
                    or meta.get("fingerprint") != fingerprint):
                raise CheckpointError(
                    "entry was recorded for a different stage/fingerprint "
                    f"({meta.get('stage')!r}, {meta.get('fingerprint')!r})",
                    reason="config-mismatch", path=path)
            if meta.get("mode") != stage.cache_mode:
                raise CheckpointError(
                    f"entry mode {meta.get('mode')!r} does not match the "
                    f"stage's cache mode {stage.cache_mode!r}",
                    reason="config-mismatch", path=path)
            try:
                nbytes = os.path.getsize(path)
            except OSError as err:
                raise CheckpointError(
                    f"entry vanished mid-lookup: {err}", reason="missing",
                    path=path) from err
            if stage.cache_mode == "codec":
                try:
                    artifact = stage.decode(ctx, payload)
                except CheckpointError:
                    raise
                except (KeyError, ValueError, TypeError, IndexError,
                        AttributeError) as err:
                    raise CheckpointError(
                        f"cached stage artifact does not decode cleanly: "
                        f"{type(err).__name__}: {err}",
                        reason="corrupt", path=path) from err
                self.hits += 1
                return CacheProbe("codec", artifact=artifact, path=path,
                                  nbytes=nbytes)
            digest = payload.get("digest") if isinstance(payload, dict) else None
            if not isinstance(digest, str):
                raise CheckpointError(
                    "replay entry carries no digest", reason="corrupt",
                    path=path)
            self.hits += 1
            return CacheProbe("replay", digest=digest, path=path,
                              nbytes=nbytes)
        except CheckpointError as err:
            quarantined = quarantine_file(path)
            self.quarantined.append(quarantined)
            err.path = quarantined
            raise

    def reject(self, path: Optional[str], message: str) -> CheckpointError:
        """Quarantine *path* and build the error for the caller to raise.

        Used by the engine when a ``replay`` rebuild does not reproduce
        the recorded digest — the entry is evidence, never reusable.
        """
        if path is not None and os.path.exists(path):
            quarantined = quarantine_file(path)
            self.quarantined.append(quarantined)
            path = quarantined
        return CheckpointError(message, reason="corrupt", path=path)

    # ---------------------------------------------------------------- writing

    def store(self, stage: Any, ctx: Any, fingerprint: str,
              artifact: Any) -> Tuple[str, int]:
        """Persist *artifact* (or its digest) atomically; returns
        ``(path, bytes_on_disk)``."""
        path = self.entry_path(stage.name, fingerprint)
        meta = {
            "stage": stage.name,
            "fingerprint": fingerprint,
            "fp_scheme": FINGERPRINT_SCHEME,
            "mode": stage.cache_mode,
            "ir_hash": ctx.fingerprints.get("prepare"),
        }
        if stage.cache_mode == "codec":
            payload: Any = stage.encode(ctx, artifact)
        else:
            payload = {"digest": stage.digest(ctx, artifact)}
        write_sealed_json(path, self.KIND, STAGE_CACHE_SCHEMA, meta, payload)
        return path, os.path.getsize(path)
