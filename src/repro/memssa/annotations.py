"""μ/χ annotations and MEMPHI pseudo-instructions.

A *version* is an integer unique per ``(function, object)``; the pair
``(object, version)`` identifies one SSA name of that object inside one
function.  Interprocedural flow is not version-linked — the SVFG connects
call-site μ to callee entry-χ (and callee exit-μ to call-site χ) directly.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.ir.values import MemObject

if TYPE_CHECKING:
    from repro.ir.basicblock import BasicBlock


class Mu:
    """``μ(o)`` — a use of version *ver* of object *obj*."""

    __slots__ = ("obj", "ver")

    def __init__(self, obj: MemObject, ver: int = -1):
        self.obj = obj
        self.ver = ver

    def __repr__(self) -> str:
        return f"mu({self.obj.name}_{self.ver})"


class Chi:
    """``o₂ = χ(o₁)`` — defines version *new_ver*, observing *old_ver*.

    ``old_ver`` is -1 for entry-χ (the incoming value arrives from call
    sites, interprocedurally, not from a local version).
    """

    __slots__ = ("obj", "new_ver", "old_ver")

    def __init__(self, obj: MemObject, new_ver: int = -1, old_ver: int = -1):
        self.obj = obj
        self.new_ver = new_ver
        self.old_ver = old_ver

    def __repr__(self) -> str:
        old = f"{self.obj.name}_{self.old_ver}" if self.old_ver >= 0 else "entry"
        return f"{self.obj.name}_{self.new_ver} = chi({old})"


class MemPhi:
    """``o₃ = φ(o₁, o₂)`` — selects an object version at a CFG join.

    Not an IR instruction: it lives beside *block* and becomes its own SVFG
    node.  ``incomings`` maps each predecessor block to the version arriving
    along that edge.
    """

    __slots__ = ("obj", "block", "new_ver", "incomings")

    def __init__(self, obj: MemObject, block: "BasicBlock"):
        self.obj = obj
        self.block = block
        self.new_ver = -1
        self.incomings: Dict["BasicBlock", int] = {}

    def __repr__(self) -> str:
        parts = ", ".join(f"{pred.name}: {ver}" for pred, ver in self.incomings.items())
        return f"{self.obj.name}_{self.new_ver} = memphi({parts})"
