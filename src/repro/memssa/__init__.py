"""Memory SSA construction (§II-B).

Converts address-taken objects to SSA form so the SVFG can connect each
indirect *definition* of an object to exactly its potential *uses*:

- every ``STORE`` that may write ``o`` gets ``o₂ = χ(o₁)``;
- every ``LOAD`` that may read ``o`` gets ``μ(o)``;
- every call site gets ``μ(o)`` for objects its (Andersen-)potential callees
  may use and ``o₂ = χ(o₁)`` for objects they may modify;
- ``FUNENTRY`` gets χ annotations (receiving objects from callers) and
  ``FUNEXIT`` μ annotations (returning modified objects);
- ``MEMPHI`` pseudo-instructions are inserted at the iterated dominance
  frontier of each object's definition blocks, then versions are assigned
  by a dominator-tree renaming walk.
"""

from repro.memssa.annotations import Chi, MemPhi, Mu
from repro.memssa.builder import MemSSA, build_memssa

__all__ = ["Chi", "Mu", "MemPhi", "MemSSA", "build_memssa"]
