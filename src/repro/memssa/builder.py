"""Memory SSA builder: annotate, place MEMPHIs, rename versions."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.andersen import AndersenResult
from repro.analysis.modref import ModRefInfo, compute_modref
from repro.datastructs.bitset import iter_bits
from repro.errors import AnalysisError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    CallInst,
    FunEntryInst,
    Instruction,
    LoadInst,
    RetInst,
    StoreInst,
)
from repro.ir.module import Module
from repro.ir.values import FunctionObject, Variable
from repro.memssa.annotations import Chi, MemPhi, Mu
from repro.passes.cfg import CFGInfo
from repro.passes.dominators import DominatorTree, dominance_frontiers, iterated_dominance_frontier


class MemSSA:
    """The memory SSA form of a module (see package docstring)."""

    def __init__(self, module: Module, andersen: AndersenResult, modref: ModRefInfo):
        self.module = module
        self.andersen = andersen
        self.modref = modref
        # Annotations, keyed by the annotated instruction.
        self.load_mus: Dict[LoadInst, List[Mu]] = {}
        self.store_chis: Dict[StoreInst, List[Chi]] = {}
        self.call_mus: Dict[CallInst, List[Mu]] = {}
        self.call_chis: Dict[CallInst, List[Chi]] = {}
        self.entry_chis: Dict[Function, List[Chi]] = {}
        self.exit_mus: Dict[Function, List[Mu]] = {}
        self.memphis: Dict[Function, List[MemPhi]] = {}

    # ------------------------------------------------------------- reporting

    def num_memphis(self) -> int:
        return sum(len(phis) for phis in self.memphis.values())

    def annotation_counts(self) -> Dict[str, int]:
        """How many μ/χ of each kind exist (useful in tests and stats)."""
        return {
            "load_mu": sum(len(v) for v in self.load_mus.values()),
            "store_chi": sum(len(v) for v in self.store_chis.values()),
            "call_mu": sum(len(v) for v in self.call_mus.values()),
            "call_chi": sum(len(v) for v in self.call_chis.values()),
            "entry_chi": sum(len(v) for v in self.entry_chis.values()),
            "exit_mu": sum(len(v) for v in self.exit_mus.values()),
            "memphi": self.num_memphis(),
        }


def _strip_function_objects(module: Module, mask: int) -> int:
    for oid in iter_bits(mask):
        if isinstance(module.objects[oid], FunctionObject):
            mask &= ~(1 << oid)
    return mask


class _FunctionRenamer:
    """Runs annotation + MEMPHI placement + renaming for one function."""

    def __init__(self, memssa: MemSSA, function: Function):
        self.memssa = memssa
        self.module = memssa.module
        self.andersen = memssa.andersen
        self.modref = memssa.modref
        self.function = function
        self.cfg = CFGInfo(function)
        self.domtree = DominatorTree(function, self.cfg)
        self.counters: Dict[int, int] = {}  # obj id -> next version
        # memphis per block for this function
        self.block_phis: Dict[BasicBlock, List[MemPhi]] = {}

    def fresh_version(self, oid: int) -> int:
        ver = self.counters.get(oid, 0)
        self.counters[oid] = ver + 1
        return ver

    # ---------------------------------------------------------------- phase 1

    def annotate(self) -> Dict[int, Set[BasicBlock]]:
        """Attach empty μ/χ lists; return def blocks per object id."""
        function = self.function
        memssa = self.memssa
        module = self.module
        def_blocks: Dict[int, Set[BasicBlock]] = {}
        entry = function.entry_block

        in_mask = self.modref.in_objs(function)
        for oid in iter_bits(in_mask):
            def_blocks.setdefault(oid, set()).add(entry)

        reachable = set(self.cfg.rpo)
        for block in function.blocks:
            if block not in reachable:
                continue
            for inst in block.instructions:
                if isinstance(inst, LoadInst) and isinstance(inst.ptr, Variable):
                    mask = _strip_function_objects(module, self.andersen.pts_mask(inst.ptr))
                    if mask:
                        memssa.load_mus[inst] = [Mu(module.objects[oid]) for oid in iter_bits(mask)]
                elif isinstance(inst, StoreInst) and isinstance(inst.ptr, Variable):
                    mask = _strip_function_objects(module, self.andersen.pts_mask(inst.ptr))
                    if mask:
                        memssa.store_chis[inst] = [Chi(module.objects[oid]) for oid in iter_bits(mask)]
                        for oid in iter_bits(mask):
                            def_blocks.setdefault(oid, set()).add(block)
                elif isinstance(inst, CallInst):
                    mu_mask = self.modref.call_mu_objs(inst)
                    chi_mask = self.modref.call_chi_objs(inst)
                    if mu_mask:
                        memssa.call_mus[inst] = [Mu(module.objects[oid]) for oid in iter_bits(mu_mask)]
                    if chi_mask:
                        memssa.call_chis[inst] = [Chi(module.objects[oid]) for oid in iter_bits(chi_mask)]
                        for oid in iter_bits(chi_mask):
                            def_blocks.setdefault(oid, set()).add(block)

        memssa.entry_chis[function] = [Chi(module.objects[oid]) for oid in iter_bits(in_mask)]
        out_mask = self.modref.out_objs(function)
        memssa.exit_mus[function] = [Mu(module.objects[oid]) for oid in iter_bits(out_mask)]
        return def_blocks

    # ---------------------------------------------------------------- phase 2

    def place_memphis(self, def_blocks: Dict[int, Set[BasicBlock]]) -> None:
        frontiers = dominance_frontiers(self.domtree)
        phis: List[MemPhi] = []
        for oid, blocks in def_blocks.items():
            if len(blocks) < 1:
                continue
            for join in iterated_dominance_frontier(frontiers, blocks):
                phi = MemPhi(self.module.objects[oid], join)
                phis.append(phi)
                self.block_phis.setdefault(join, []).append(phi)
        self.memssa.memphis[self.function] = phis

    # ---------------------------------------------------------------- phase 3

    def rename(self) -> None:
        """Dominator-tree walk assigning versions (iterative, with undo)."""
        function = self.function
        memssa = self.memssa
        current: Dict[int, int] = {}

        # actions: ("enter", block) or ("exit", undo list of (oid, old or None))
        actions: List[Tuple[str, object]] = [("enter", function.entry_block)]
        while actions:
            kind, payload = actions.pop()
            if kind == "exit":
                # Replay in reverse: a block may define the same object more
                # than once (MEMPHI then store-chi), and only the oldest
                # snapshot restores the dominator's version.
                for oid, old in reversed(payload):  # type: ignore[union-attr]
                    if old is None:
                        current.pop(oid, None)
                    else:
                        current[oid] = old
                continue

            block = payload  # type: ignore[assignment]
            undo: List[Tuple[int, Optional[int]]] = []

            def set_version(oid: int, ver: int) -> None:
                undo.append((oid, current.get(oid)))
                current[oid] = ver

            for phi in self.block_phis.get(block, []):
                ver = self.fresh_version(phi.obj.id)
                phi.new_ver = ver
                set_version(phi.obj.id, ver)

            for inst in block.instructions:
                if isinstance(inst, FunEntryInst):
                    for chi in memssa.entry_chis.get(function, []):
                        ver = self.fresh_version(chi.obj.id)
                        chi.new_ver = ver
                        set_version(chi.obj.id, ver)
                elif isinstance(inst, LoadInst):
                    for mu in memssa.load_mus.get(inst, []):
                        mu.ver = self._use(current, mu.obj.id)
                elif isinstance(inst, StoreInst):
                    for chi in memssa.store_chis.get(inst, []):
                        chi.old_ver = self._use(current, chi.obj.id)
                        chi.new_ver = self.fresh_version(chi.obj.id)
                        set_version(chi.obj.id, chi.new_ver)
                elif isinstance(inst, CallInst):
                    for mu in memssa.call_mus.get(inst, []):
                        mu.ver = self._use(current, mu.obj.id)
                    for chi in memssa.call_chis.get(inst, []):
                        chi.old_ver = self._use(current, chi.obj.id)
                        chi.new_ver = self.fresh_version(chi.obj.id)
                        set_version(chi.obj.id, chi.new_ver)
                elif isinstance(inst, RetInst):
                    for mu in memssa.exit_mus.get(function, []):
                        mu.ver = self._use(current, mu.obj.id)

            for succ in self.cfg.succs[block]:
                for phi in self.block_phis.get(succ, []):
                    phi.incomings[block] = self._use(current, phi.obj.id)

            actions.append(("exit", undo))
            for child in self.domtree.children.get(block, []):
                actions.append(("enter", child))

    def _use(self, current: Dict[int, int], oid: int) -> int:
        ver = current.get(oid)
        if ver is None:
            raise AnalysisError(
                f"object {self.module.objects[oid].name} used before any version "
                f"in @{self.function.name}; mod/ref under-approximated"
            )
        return ver

    def run(self) -> None:
        def_blocks = self.annotate()
        self.place_memphis(def_blocks)
        self.rename()


def build_memssa(
    module: Module,
    andersen: AndersenResult,
    modref: Optional[ModRefInfo] = None,
) -> MemSSA:
    """Build memory SSA for every defined function of *module*."""
    modref = modref or compute_modref(module, andersen)
    memssa = MemSSA(module, andersen, modref)
    for function in module.functions.values():
        if function.is_declaration:
            continue
        _FunctionRenamer(memssa, function).run()
    return memssa
