"""DOT (Graphviz) renderers for CFGs, call graphs, and SVFGs."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.callgraph import CallGraph
from repro.core.versioning import ObjectVersioning
from repro.ir.function import Function
from repro.ir.instructions import StoreInst
from repro.ir.printer import format_instruction
from repro.svfg.builder import SVFG
from repro.svfg.nodes import InstNode, MemPhiNode


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\l")


def cfg_to_dot(function: Function) -> str:
    """The function's control-flow graph, one record per basic block."""
    lines: List[str] = [f'digraph "cfg_{function.name}" {{', "  node [shape=box];"]
    for block in function.blocks:
        body = "\\l".join(_escape(format_instruction(inst)) for inst in block.instructions)
        lines.append(f'  "{block.name}" [label="{block.name}:\\l{body}\\l"];')
    for block in function.blocks:
        for succ in block.successors():
            lines.append(f'  "{block.name}" -> "{succ.name}";')
    lines.append("}")
    return "\n".join(lines)


def callgraph_to_dot(callgraph: CallGraph) -> str:
    """Function-level call graph; edge labels carry call-site counts."""
    lines = ['digraph "callgraph" {', "  node [shape=ellipse];"]
    functions = set()
    edges = {}
    for call, callee in callgraph.call_edges():
        caller = call.function
        functions.update((caller, callee))
        edges[(caller, callee)] = edges.get((caller, callee), 0) + 1
    for function in sorted(functions, key=lambda f: f.name):
        lines.append(f'  "{function.name}";')
    for (caller, callee), count in sorted(edges.items(), key=lambda e: (e[0][0].name, e[0][1].name)):
        label = f' [label="{count}"]' if count > 1 else ""
        lines.append(f'  "{caller.name}" -> "{callee.name}"{label};')
    lines.append("}")
    return "\n".join(lines)


def svfg_to_dot(
    svfg: SVFG,
    versioning: Optional[ObjectVersioning] = None,
    include_direct: bool = True,
    only_function: Optional[str] = None,
) -> str:
    """The SVFG; indirect edges are labelled with their object (and, when a
    versioning is supplied, source/target versions à la Figure 9)."""

    def wanted(node_id: int) -> bool:
        if only_function is None:
            return True
        function = svfg.nodes[node_id].function
        return function is not None and function.name == only_function

    lines = ['digraph "svfg" {', "  node [shape=box, fontsize=10];"]
    used = set()
    edge_lines: List[str] = []

    for node in svfg.nodes:
        if not wanted(node.id):
            continue
        for oid, succs in svfg.ind_succs[node.id].items():
            obj = svfg.module.objects[oid]
            for succ in succs:
                if not wanted(succ):
                    continue
                label = obj.name
                if versioning is not None:
                    src_ver = versioning.yielded_version(node.id, oid)
                    dst_ver = versioning.consumed_version(succ, oid)
                    label = f"{obj.name}: k{src_ver}->k{dst_ver}"
                edge_lines.append(
                    f'  n{node.id} -> n{succ} [label="{_escape(label)}", color=blue];'
                )
                used.update((node.id, succ))
        if include_direct:
            for succ in svfg.direct_succs[node.id]:
                if wanted(succ):
                    edge_lines.append(f"  n{node.id} -> n{succ};")
                    used.update((node.id, succ))

    for node_id in sorted(used):
        node = svfg.nodes[node_id]
        shape = ""
        if isinstance(node, InstNode) and isinstance(node.inst, StoreInst):
            shape = ", peripheries=2"  # the paper's double-lined store nodes
        elif isinstance(node, MemPhiNode):
            shape = ", shape=diamond"
        lines.append(f'  n{node_id} [label="{_escape(node.describe())}"{shape}];')
    lines.extend(edge_lines)
    lines.append("}")
    return "\n".join(lines)
