"""Graph exporters (Graphviz DOT) for the analysis artefacts.

Every exporter returns DOT text so callers can write files or feed other
tools; nothing here shells out to Graphviz.
"""

from repro.viz.dot import callgraph_to_dot, cfg_to_dot, svfg_to_dot

__all__ = ["cfg_to_dot", "callgraph_to_dot", "svfg_to_dot"]
