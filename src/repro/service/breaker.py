"""Per-(tenant, program) circuit breakers: repeat offenders lose rungs.

A program that keeps blowing its deadline (or failing outright) under
full precision should not get to burn a worker's whole budget on every
retry.  The breaker watches each (tenant, program-fingerprint) pair:

- **closed** — requests run at their requested analysis; each failure
  (deadline exhaustion, typed solver error, precision-losing
  degradation) increments a consecutive-failure count, each success
  resets it.
- **open** — after ``threshold`` consecutive failures the breaker trips:
  requests are *pinned* to the next rung down the degradation ladder
  (``vsfs → sfs → ander``) instead of being rejected — the daemon keeps
  answering, just cheaper, which is the service twin of the batch
  ladder's degraded-not-dead contract.  Responses still record the
  requested analysis as ``degraded_from``, so clients can see the pin.
- **half-open** — after ``cooldown_s`` the next request is a *probe* at
  full precision: success closes the breaker (full precision restored
  for everyone), failure re-opens it and restarts the cooldown.

The pin never goes below the Andersen floor, which cannot fail (it is
the ladder's unconditional floor), so an open breaker converges to a
state that always answers within budget.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

#: Pinned rung per requested analysis when a breaker is open.
PIN_LADDER = {"vsfs": "sfs", "sfs": "ander", "ander": "ander"}

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """One (tenant, program) breaker; see module docstring."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0):
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self.state = CLOSED
        self.failures = 0  # consecutive, while closed/half-open
        self.trips = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    # ------------------------------------------------------------ decisions

    def plan(self, analysis: str, now: Optional[float] = None) -> Tuple[str, bool]:
        """What to actually run: ``(effective_analysis, is_probe)``.

        Open breakers pin to the next rung down; once the cooldown has
        passed, exactly one caller gets a full-precision probe (the
        half-open state) while concurrent requests stay pinned.
        """
        now = time.monotonic() if now is None else now
        if self.state == CLOSED:
            return analysis, False
        if (self.state == OPEN and self.opened_at is not None
                and now - self.opened_at >= self.cooldown_s):
            self.state = HALF_OPEN
        if self.state == HALF_OPEN and not self._probing:
            self._probing = True
            return analysis, True
        return PIN_LADDER.get(analysis, analysis), False

    def record(self, success: bool, probe: bool = False,
               now: Optional[float] = None) -> None:
        """Record an attempt's outcome (success = answered at requested
        precision without losing it)."""
        now = time.monotonic() if now is None else now
        if probe:
            self._probing = False
            if success:
                self.state = CLOSED
                self.failures = 0
                self.opened_at = None
            else:
                self.state = OPEN
                self.opened_at = now  # restart the cooldown
            return
        if self.state != CLOSED:
            # Pinned executions don't move the state machine: only the
            # half-open probe may close an open breaker.
            return
        if success:
            self.failures = 0
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self.state = OPEN
            self.opened_at = now
            self.trips += 1

    def describe(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
        }


class BreakerBoard:
    """Thread-safe registry of breakers keyed by (tenant, program)."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, tenant: str, program_key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get((tenant, program_key))
            if breaker is None:
                breaker = CircuitBreaker(self.threshold, self.cooldown_s)
                self._breakers[(tenant, program_key)] = breaker
            return breaker

    def plan(self, tenant: str, program_key: str,
             analysis: str) -> Tuple[str, bool, CircuitBreaker]:
        breaker = self.breaker(tenant, program_key)
        with self._lock:
            effective, probe = breaker.plan(analysis)
        return effective, probe, breaker

    def record(self, breaker: CircuitBreaker, success: bool,
               probe: bool = False) -> None:
        with self._lock:
            breaker.record(success, probe=probe)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            open_count = sum(1 for b in self._breakers.values()
                             if b.state != CLOSED)
            return {
                "breakers": len(self._breakers),
                "open": open_count,
                "trips": sum(b.trips for b in self._breakers.values()),
            }
