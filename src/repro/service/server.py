"""The analysis service: warm program sessions behind supervised execution.

:class:`AnalysisService` is the daemon's core, transport-agnostic: feed it
raw request lines (or dicts) and it produces typed responses.  One instance
owns

- the **warm substrate** — a result store, stage cache and mask arena
  shared by every program session (the same trio ``repro-wpa --store``
  uses, so the daemon and the batch CLI interconvert freely: a warm
  restart recovers from the on-disk stores and answers **bit-identically**
  to a cold batch run);
- an LRU of **program sessions** (:class:`ProgramSession`): parsed IR +
  primed engine per distinct source, so repeat queries against the same
  program skip straight to the client analysis;
- the **admission queue**, **worker pool** and **breaker board** that
  keep the process healthy under overload, bad requests, faults and
  hangs (see the sibling modules).

Request lifecycle: decode → admit → (worker) deadline check → breaker
plan → session solve under a wall-clock budget → client-op dispatch →
breaker record → typed response.  Every failure mode on that path has a
typed response; nothing escapes as a traceback.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    CheckpointError,
    DeadlineExceeded,
    InjectedFault,
    InvalidRequest,
    ReproError,
    ServiceOverloaded,
)
from repro.runtime.budget import Budget
from repro.runtime.degrade import solve_with_ladder
from repro.runtime.resilience import IO_RETRY
from repro.service.admission import AdmissionQueue, TenantPolicy
from repro.service.breaker import BreakerBoard
from repro.service.protocol import (
    QUERY_OPS,
    Request,
    Response,
    decode_request,
    error_response,
)
from repro.service.workers import Ticket, WorkerPool
from repro.store.atomic import enc_mask_list

#: Extra wait the synchronous submit path allows past the request
#: deadline before giving up on the worker pool (covers the hang
#: watchdog's grace period plus scheduling slack).
REPLY_SLACK_S = 5.0


def program_key(source: str, language: str) -> str:
    """Stable fingerprint of a program text (session/breaker key)."""
    digest = hashlib.sha256()
    digest.update(language.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class ServiceConfig:
    """Everything tunable about one daemon instance."""

    #: Durable substrate directory (results, stage cache, arena); None
    #: runs fully in-memory (no warm restart).
    store_dir: Optional[str] = None
    queue_depth: int = 64
    workers: int = 2
    #: Warm program sessions kept (LRU eviction beyond this).
    max_programs: int = 8
    #: Deadline applied to requests that do not carry one (None = none).
    default_deadline_s: Optional[float] = 30.0
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    use_arena: bool = True
    strict_io: bool = False
    faults: Any = None


class ProgramSession:
    """One warm program: parsed IR, primed engine, memoised results."""

    def __init__(self, key: str, source: str, language: str,
                 config: ServiceConfig, store: Any):
        self.key = key
        self.lock = threading.Lock()
        self.heals = 0
        self.cacheless = False
        cache = None
        arena_path = None
        if store is not None:
            try:
                if config.faults is not None:
                    config.faults.fire("cache_attach", stage="service")
                from repro.engine import StageCache

                cache = StageCache(os.path.join(config.store_dir, "stages"))
                if config.use_arena:
                    arena_path = store.arena_path
            except InjectedFault:
                # Degraded-not-dead: serve this program cache-less (every
                # query recomputes) instead of refusing it.
                self.cacheless = True
                self.heals += 1
        from repro.pipeline import AnalysisPipeline

        self.pipeline = AnalysisPipeline.from_source(
            source, language=language, cache=cache, arena_path=arena_path,
            strict_cache=config.strict_io)
        self.module = self.pipeline.module
        #: Clean (full-precision) results memoised per analysis.
        self.results: Dict[str, Any] = {}


class AnalysisService:
    """Transport-agnostic daemon core; see module docstring."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.store = None
        if self.config.store_dir:
            from repro.store import ResultStore

            self.store = ResultStore(self.config.store_dir)
        # Latest-solution slots for the function-granular incremental
        # path (DESIGN.md §14): on disk next to the result store so a
        # warm restart keeps them, in memory otherwise.  Shared across
        # sessions deliberately — an ``update_source`` request plans its
        # dirty closure against the *previous* program's solution.
        from repro.incremental import IncrementalStore

        self.incremental = IncrementalStore(
            os.path.join(self.config.store_dir, "incremental")
            if self.config.store_dir else None)
        self.queue = AdmissionQueue(
            depth=self.config.queue_depth, tenants=self.config.tenants,
            default_policy=self.config.default_policy,
            faults=self.config.faults)
        self.breakers = BreakerBoard(self.config.breaker_threshold,
                                     self.config.breaker_cooldown_s)
        self.pool = WorkerPool(self.queue, self._handle_ticket,
                               size=self.config.workers,
                               faults=self.config.faults)
        self._sessions: "OrderedDict[str, ProgramSession]" = OrderedDict()
        self._sessions_lock = threading.Lock()
        self._drained = threading.Event()
        self.started_at = time.monotonic()
        self.requests = 0
        self.decode_errors = 0

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "AnalysisService":
        self.pool.start()
        return self

    def drain(self, reply_grace_s: float = 30.0) -> None:
        """Graceful shutdown: finish in-flight work, shed the queue typed.

        Safe to call more than once (SIGTERM plus a ``drain`` op).
        """
        if self._drained.is_set():
            return
        self._drained.set()
        for ticket in self.queue.drain():
            request = ticket.request
            ticket.resolve(error_response(
                request.id, request.op,
                ServiceOverloaded(
                    "service is draining; request evicted from the queue",
                    retry_after_s=1.0, draining=True)))
        deadline = time.monotonic() + reply_grace_s
        while not self.pool.idle() and time.monotonic() < deadline:
            time.sleep(0.02)
        self.pool.stop(timeout=max(0.0, deadline - time.monotonic()))

    @property
    def draining(self) -> bool:
        return self._drained.is_set()

    # ------------------------------------------------------------- submission

    def submit(self, raw: Any) -> "Ticket | Response":
        """Decode and admit *raw*; control ops answer immediately.

        Returns a :class:`Ticket` (await it) for query ops, or a ready
        :class:`Response` for control ops and every typed rejection.
        """
        self.requests += 1
        start = time.monotonic()
        try:
            request = decode_request(raw, faults=self.config.faults)
        except ReproError as err:
            self.decode_errors += 1
            rid = raw.get("id", "") if isinstance(raw, dict) else ""
            op = raw.get("op", "") if isinstance(raw, dict) else ""
            return error_response(str(rid), str(op), err,
                                  elapsed_s=time.monotonic() - start)
        if request.op == "ping":
            return Response(id=request.id, op="ping",
                            result={"pong": True, "draining": self.draining},
                            elapsed_s=time.monotonic() - start)
        if request.op == "stats":
            return Response(id=request.id, op="stats", result=self.stats(),
                            elapsed_s=time.monotonic() - start)
        if request.op == "drain":
            # Kick the drain off-thread: the caller gets its ack even
            # though drain waits for in-flight work (possibly its own
            # transport's).
            threading.Thread(target=self.drain, daemon=True,
                             name="repro-svc-drain").start()
            return Response(id=request.id, op="drain",
                            result={"draining": True},
                            elapsed_s=time.monotonic() - start)
        # Query op: clamp the deadline by tenant policy, then admit.
        policy = self.queue.policy_for(request.tenant)
        if request.deadline_s is None:
            request.deadline_s = self.config.default_deadline_s
        request.deadline_s = policy.clamp_deadline(request.deadline_s)
        ticket = Ticket(request)
        try:
            self.queue.admit(ticket)
        except ServiceOverloaded as err:
            return error_response(request.id, request.op, err,
                                  elapsed_s=time.monotonic() - start)
        return ticket

    def handle_line(self, raw: Any) -> Response:
        """Synchronous request→response (the transports' entry point)."""
        outcome = self.submit(raw)
        if isinstance(outcome, Response):
            return outcome
        deadline = outcome.request.deadline_s
        timeout = None if deadline is None else deadline + REPLY_SLACK_S
        response = outcome.wait(timeout)
        if response is not None:
            return response
        # The pool never answered inside the allowance — the watchdog
        # should have caught this; answer typed rather than hang the
        # transport.
        return error_response(
            outcome.request.id, outcome.request.op,
            DeadlineExceeded("no worker reply within the deadline",
                             deadline_s=deadline or 0.0, phase="execute"))

    # -------------------------------------------------------------- execution

    def _session(self, request: Request) -> ProgramSession:
        key = program_key(request.program, request.language)
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                return session
        # Parse outside the registry lock (it can be slow); a racing
        # duplicate build is harmless — last one wins the slot.
        session = ProgramSession(key, request.program, request.language,
                                 self.config, self.store)
        with self._sessions_lock:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            while len(self._sessions) > self.config.max_programs:
                self._sessions.popitem(last=False)
        return session

    def _handle_ticket(self, ticket: Ticket) -> Response:
        """Worker-side execution of one admitted query request."""
        request = ticket.request
        start = time.monotonic()
        remaining = ticket.remaining(start)
        if remaining is not None and remaining <= 0:
            raise DeadlineExceeded(
                f"deadline ({request.deadline_s:g}s) expired while queued",
                deadline_s=request.deadline_s, phase="queue")
        session = self._session(request)
        effective, probe, breaker = self.breakers.plan(
            request.tenant, session.key, request.analysis)
        pinned = effective != request.analysis
        try:
            with session.lock:
                result, cached, heals = self._solve(
                    session, effective, ticket.remaining())
                payload = self._dispatch(session, request, result)
        except ReproError:
            self.breakers.record(breaker, False, probe=probe)
            raise
        report = getattr(result, "report", None)
        precision_lost = bool(report.precision_lost if report is not None
                              else False)
        success = not precision_lost and not pinned
        self.breakers.record(breaker, not precision_lost, probe=probe)
        level = getattr(result, "precision_level", None) or effective
        degraded_from = getattr(result, "degraded_from", None)
        if pinned:
            degraded_from = request.analysis
        return Response(
            id=request.id, op=request.op, result=payload,
            precision_level=level,
            degraded_from=degraded_from if not success else None,
            precision_lost=precision_lost or pinned,
            heals=heals + session.heals,
            cached=cached,
            elapsed_s=time.monotonic() - start)

    def _solve(self, session: ProgramSession, analysis: str,
               remaining: Optional[float]) -> Tuple[Any, bool, int]:
        """Solve (or reuse) *analysis* for the session under its deadline.

        Returns ``(result, cached, heals)`` — heals counts absorbed
        faults on this solve path only.
        """
        heals = 0
        memo = session.results.get(analysis)
        if memo is not None:
            return memo, True, heals
        module = session.module
        level = "andersen" if analysis == "ander" else analysis
        if self.store is not None and not session.cacheless:
            session.pipeline.engine.prime_substrate(analysis)
            try:
                cached = self.store.get(module, analysis, True, True)
            except CheckpointError:
                if self.config.strict_io:
                    raise
                # Quarantined by the store; recompute below.
                cached = None
                heals += 1
            if cached is not None:
                session.pipeline.engine.record_external_hit(
                    f"solve:{level}", "result-store")
                session.results[analysis] = cached
                return cached, True, heals
        # Incremental warm planning: every staged solve consults the
        # service-wide latest-solution slot and, post-solve, refreshes it
        # — so an ``update_source`` after any solved program answers from
        # the warm path, and analyze/alias/... share the savings.
        warm_plan = None
        incremental = analysis in ("sfs", "vsfs")
        if incremental:
            try:
                stored = self.incremental.load(analysis, True, True)
            except CheckpointError:
                if self.config.strict_io:
                    raise
                stored = None
                heals += 1  # stale slot quarantined; solve cold
            if stored is not None:
                from repro.incremental import plan_warm

                pipeline = session.pipeline
                warm_plan = plan_warm(
                    stored, pipeline.svfg(), pipeline.modref(), analysis,
                    True, True, pipeline.andersen())
        policy_steps = None  # per-tenant step caps ride on TenantPolicy
        budget = None
        if remaining is not None:
            budget = Budget(wall_seconds=max(remaining, 0.001),
                            max_steps=policy_steps)
        trace = session.pipeline.trace
        heals_before = len(getattr(trace, "heals", []) or [])
        result = solve_with_ladder(session.pipeline, analysis=analysis,
                                   budget=budget, fallback=True,
                                   faults=self.config.faults,
                                   warm_plan=warm_plan,
                                   capture_regions=incremental)
        heals += len(getattr(trace, "heals", []) or []) - heals_before
        report = result.report
        heals += sum(1 for a in report.attempts if a.outcome != "completed")
        if not report.precision_lost:
            session.results[analysis] = result
            if self.store is not None and not session.cacheless:
                try:
                    IO_RETRY.run(lambda: self.store.put(
                        module, analysis, True, True, result))
                except (OSError, ReproError):
                    heals += 1  # skip-write: answer anyway
            capture = getattr(result, "incremental_capture", None)
            if incremental and capture is not None \
                    and getattr(result.stats, "analysis", None) == analysis:
                from repro.incremental import build_payload

                pipeline = session.pipeline
                try:
                    payload = build_payload(
                        pipeline.svfg(), pipeline.modref(), result,
                        capture["node_in"], capture["node_out"],
                        capture["flow"], analysis, True, True,
                        pipeline.andersen())
                    IO_RETRY.run(lambda: self.incremental.save(payload))
                except (OSError, ReproError):
                    heals += 1  # skip-write: answer anyway
        return result, False, heals

    def _dispatch(self, session: ProgramSession, request: Request,
                  result: Any) -> Dict[str, Any]:
        """Turn a solved result into the op's wire payload."""
        module = session.module
        if request.op in ("analyze", "update_source"):
            masks = list(getattr(result, "_pt", []) or [])
            payload = {
                "analysis": request.analysis,
                "variables": [var.name for var in module.variables],
                "masks": enc_mask_list(masks),
                "objects": [obj.name for obj in module.objects],
            }
            if request.op == "update_source":
                incr = getattr(result, "incremental", None)
                payload["incremental"] = (incr.to_dict()
                                          if incr is not None else None)
            return payload
        if request.op == "alias":
            from repro.clients.aliases import AliasOracle

            a = self._variable(module, request.params["a"])
            b = self._variable(module, request.params["b"])
            oracle = AliasOracle(module, result)
            return {
                "a": request.params["a"],
                "b": request.params["b"],
                "may_alias": bool(oracle.may_alias(a, b)),
                "pointees_a": sorted(o.name for o in oracle.pointees(a)),
                "pointees_b": sorted(o.name for o in oracle.pointees(b)),
            }
        if request.op == "nullderef":
            from repro.clients.nullderef import find_null_derefs

            report = find_null_derefs(module, result,
                                      session.pipeline.andersen())
            return {
                "count": len(report),
                "flow_sensitive_only": len(report.flow_sensitive_only()),
                "warnings": [w.describe() for w in report],
            }
        if request.op == "slice":
            from repro.clients.slicer import ValueFlowSlicer

            var = self._variable(module, request.params["var"])
            slicer = ValueFlowSlicer(session.pipeline.svfg())
            node = slicer.node_for_variable(var)
            if node is None:
                raise InvalidRequest(
                    f"variable {request.params['var']!r} has no defining "
                    f"SVFG node (not a pointer definition?)")
            direction = request.params.get("direction", "backward")
            nodes = (slicer.backward_slice(node) if direction == "backward"
                     else slicer.forward_slice(node))
            return {
                "var": request.params["var"],
                "direction": direction,
                "nodes": sorted(nodes),
                "instructions": slicer.describe(nodes).splitlines(),
            }
        raise InvalidRequest(f"op {request.op!r} is not a query op")

    @staticmethod
    def _variable(module: Any, name: str) -> Any:
        """Resolve a wire variable name; typed error when unknown.

        Top-level variables are post-SSA (the names ``--dump-pts``
        prints); a bare source name also matches its SSA versions
        (``name.…``), resolving to the last (merged) one.
        """
        matches = [v for v in module.variables if v.name == name]
        if not matches:
            matches = [v for v in module.variables
                       if v.name.startswith(name + ".")]
        if not matches:
            known = sorted({v.name for v in module.variables})[:20]
            raise InvalidRequest(
                f"unknown variable {name!r}; program defines e.g. {known}")
        return matches[-1]

    # ------------------------------------------------------------------ stats

    def stats(self) -> Dict[str, Any]:
        with self._sessions_lock:
            sessions = len(self._sessions)
            cacheless = sum(1 for s in self._sessions.values() if s.cacheless)
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": self.requests,
            "decode_errors": self.decode_errors,
            "draining": self.draining,
            "sessions": {"warm": sessions, "cacheless": cacheless,
                         "max": self.config.max_programs},
            "queue": self.queue.stats(),
            "workers": self.pool.stats(),
            "breakers": self.breakers.stats(),
            "store": {"enabled": self.store is not None,
                      "dir": self.config.store_dir},
        }


# QUERY_OPS is re-exported for transports that want to pre-validate.
__all__ = ["AnalysisService", "ProgramSession", "ServiceConfig",
           "QUERY_OPS", "program_key"]
