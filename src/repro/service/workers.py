"""Supervised execution: worker threads with failure budgets and revival.

The daemon's twin of the parallel driver's watchdog
(:mod:`repro.parallel.driver`): request execution happens on a pool of
worker threads, each a *slot* with a failure budget
(:data:`~repro.runtime.resilience.DEFAULT_WORKER_FAILURE_BUDGET`).  A
supervisor thread heartbeat-scans the slots; incidents charge the slot's
budget:

- an injected ``worker_exec`` fault — the request is pushed onto a
  retry lane and re-executed by a (conceptually revived) slot; the
  response records the revival in ``retries``, and the chaos soak
  classifies it *healed* when the answer still matches the baseline;
- an untyped exception escaping the handler — answered in-protocol as
  ``InternalError`` (the daemon never drops a connection over a bug);
- a hang — a slot busy past its deadline-plus-grace is *abandoned*:
  its ticket is resolved with a typed execute-phase
  :class:`~repro.errors.DeadlineExceeded`, a replacement thread takes
  over the slot, and the stuck thread's eventual result is discarded
  (tickets resolve first-wins).

A slot that spends its whole budget is revived (budget reset, incident
logged) rather than collapsing the service — unlike the batch driver
there is no serial twin to fall back onto; the daemon's floor is
"answer typed errors and keep serving".
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeadlineExceeded, InjectedFault, ReproError
from repro.runtime.resilience import DEFAULT_WORKER_FAILURE_BUDGET
from repro.service.protocol import Request, Response, error_response

#: Extra wall-clock a busy slot gets past its request deadline before the
#: supervisor declares it hung (covers non-cooperative sections like IR
#: construction that the solve budget cannot interrupt).
HANG_GRACE_S = 2.0

#: How many times an admitted request is retried across revived slots
#: before it gets a typed failure instead.
EXEC_RETRIES = 2


class Ticket:
    """One admitted request awaiting its response.

    ``resolve`` is first-wins: the supervisor may answer for an abandoned
    slot, and the stuck thread's late result must then be discarded.
    """

    def __init__(self, request: Request):
        self.request = request
        self.retries = 0
        self.created_at = time.monotonic()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self.response: Optional[Response] = None

    def resolve(self, response: Response) -> bool:
        with self._lock:
            if self.response is not None:
                return False
            response.retries = max(response.retries, self.retries)
            self.response = response
            self._done.set()
            return True

    def wait(self, timeout: Optional[float] = None) -> Optional[Response]:
        self._done.wait(timeout)
        return self.response

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left on the request deadline (None = no deadline)."""
        if self.request.deadline_s is None:
            return None
        now = time.monotonic() if now is None else now
        return self.request.deadline_s - (now - self.created_at)


class _Slot:
    """One supervised worker slot (thread + failure budget)."""

    def __init__(self, index: int):
        self.index = index
        self.generation = 0
        self.failures = 0
        self.revived = 0
        self.thread: Optional[threading.Thread] = None
        self.busy_since: Optional[float] = None
        self.ticket: Optional[Ticket] = None
        self.hang_budget_s: Optional[float] = None


class WorkerPool:
    """Pulls tickets from an admission queue and answers them, supervised."""

    def __init__(self, queue: Any, handler: Callable[[Ticket], Response],
                 size: int = 2,
                 failure_budget: int = DEFAULT_WORKER_FAILURE_BUDGET,
                 hang_grace_s: float = HANG_GRACE_S,
                 default_hang_s: float = 60.0,
                 faults: Any = None,
                 on_incident: Optional[Callable[[str, int], None]] = None):
        self.queue = queue
        self.handler = handler
        self.size = max(1, size)
        self.failure_budget = max(1, failure_budget)
        self.hang_grace_s = hang_grace_s
        #: Hang allowance for requests with no deadline of their own.
        self.default_hang_s = default_hang_s
        self.faults = faults
        self.on_incident = on_incident
        self._slots: List[_Slot] = [_Slot(i) for i in range(self.size)]
        self._retry: deque = deque()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        # ---- counters ----
        self.executed = 0
        self.exec_faults = 0
        self.crashes = 0
        self.hangs = 0
        self.revivals = 0

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "WorkerPool":
        for slot in self._slots:
            self._spawn(slot)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-svc-supervisor", daemon=True)
        self._supervisor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop pulling new work and join idle workers (in-flight work is
        awaited up to *timeout*; a stuck thread is abandoned as daemonic)."""
        self._stop.set()
        deadline = time.monotonic() + timeout
        for slot in list(self._slots):
            thread = slot.thread
            if thread is not None and thread.is_alive():
                thread.join(max(0.0, deadline - time.monotonic()))
        if self._supervisor is not None:
            self._supervisor.join(max(0.0, deadline - time.monotonic()))

    def idle(self) -> bool:
        with self._lock:
            return not self._retry and all(
                slot.ticket is None for slot in self._slots)

    # ------------------------------------------------------------- internals

    def _spawn(self, slot: _Slot) -> None:
        slot.generation += 1
        slot.busy_since = None
        slot.ticket = None
        thread = threading.Thread(
            target=self._run, args=(slot, slot.generation),
            name=f"repro-svc-worker-{slot.index}", daemon=True)
        slot.thread = thread
        thread.start()

    def _charge(self, slot: _Slot, incident: str) -> None:
        """One incident against *slot*'s failure budget; revive on spend."""
        with self._lock:
            slot.failures += 1
            if self.on_incident is not None:
                self.on_incident(incident, slot.index)
            if slot.failures >= self.failure_budget:
                slot.failures = 0
                slot.revived += 1
                self.revivals += 1

    def _next_ticket(self) -> Optional[Ticket]:
        with self._lock:
            if self._retry:
                return self._retry.popleft()
        return self.queue.get(timeout=0.1)

    def _run(self, slot: _Slot, generation: int) -> None:
        while not self._stop.is_set():
            ticket = self._next_ticket()
            if ticket is None:
                if self.queue.draining:
                    return
                continue
            with self._lock:
                if slot.generation != generation:
                    # This thread was abandoned while blocked; hand the
                    # ticket to the live pool and exit.
                    self._retry.append(ticket)
                    return
                slot.ticket = ticket
                slot.busy_since = time.monotonic()
                remaining = ticket.remaining(slot.busy_since)
                allowance = (self.default_hang_s if remaining is None
                             else max(remaining, 0.0))
                slot.hang_budget_s = allowance + self.hang_grace_s
            response = self._execute(slot, ticket)
            with self._lock:
                abandoned = slot.generation != generation
                if not abandoned:
                    slot.ticket = None
                    slot.busy_since = None
            if response is not None:
                ticket.resolve(response)  # first-wins; no-op if supervised out
            if slot.generation != generation:
                return

    def _execute(self, slot: _Slot, ticket: Ticket) -> Optional[Response]:
        request = ticket.request
        start = time.monotonic()
        if self.faults is not None:
            try:
                self.faults.fire("worker_exec", stage="service")
            except InjectedFault as err:
                self.exec_faults += 1
                self._charge(slot, "exec-fault")
                if ticket.retries < EXEC_RETRIES:
                    # Retry on a revived slot: the fault plan's `once`
                    # semantics (or a different seed draw) give the retry
                    # a clean run — the request heals instead of failing.
                    ticket.retries += 1
                    with self._lock:
                        self._retry.append(ticket)
                    return None
                return error_response(request.id, request.op, err,
                                      elapsed_s=time.monotonic() - start)
        try:
            response = self.handler(ticket)
        except ReproError as err:
            response = error_response(request.id, request.op, err,
                                      elapsed_s=time.monotonic() - start)
        except BaseException as err:  # noqa: BLE001 — daemon must not die
            self.crashes += 1
            self._charge(slot, "exec-crash")
            response = error_response(request.id, request.op, err,
                                      elapsed_s=time.monotonic() - start)
        self.executed += 1
        return response

    def _supervise(self) -> None:
        while not self._stop.is_set():
            time.sleep(0.05)
            now = time.monotonic()
            for slot in self._slots:
                with self._lock:
                    ticket = slot.ticket
                    busy_since = slot.busy_since
                    budget = slot.hang_budget_s
                    if (ticket is None or busy_since is None
                            or budget is None
                            or now - busy_since <= budget):
                        continue
                    # Hung: abandon the thread, answer the ticket typed,
                    # and bring a replacement up on the same slot.
                    self.hangs += 1
                    slot.ticket = None
                    slot.busy_since = None
                request = ticket.request
                deadline = request.deadline_s or self.default_hang_s
                ticket.resolve(error_response(
                    request.id, request.op,
                    DeadlineExceeded(
                        f"worker {slot.index} hung past its allowance "
                        f"({budget:.1f}s); slot revived",
                        deadline_s=deadline, phase="execute"),
                    elapsed_s=now - busy_since))
                self._charge(slot, "hung")
                self._spawn(slot)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "workers": self.size,
                "executed": self.executed,
                "exec_faults": self.exec_faults,
                "crashes": self.crashes,
                "hangs": self.hangs,
                "revivals": self.revivals,
                "retry_lane": len(self._retry),
            }
