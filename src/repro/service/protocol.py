"""The daemon's wire protocol: typed JSONL requests and responses.

One JSON object per line (stdio transport) or per HTTP body.  A request
names an operation over a program; a response is either ``ok`` with the
operation's result payload and precision metadata, or a typed error
envelope — the error's class name, message, and (for shed load) a
``retry_after_s`` hint.  Decoding is total: any malformed input becomes
a typed :class:`~repro.errors.InvalidRequest`, which the server encodes
as an error response — a hostile byte stream can never crash the daemon
or produce an untyped traceback on the wire.

Operations:

- ``analyze`` — run the requested analysis; returns points-to sets of
  all top-level variables (hex masks, bit-identical across cold/warm
  runs) plus solver stats;
- ``alias`` — may-alias verdict for two variables (``params.a`` /
  ``params.b``);
- ``nullderef`` — flow-sensitive possibly-null dereference warnings;
- ``slice`` — forward/backward value-flow slice from a variable's
  defining SVFG node (``params.var``, ``params.direction``);
- ``update_source`` — analyze an *edited* program through the
  function-granular incremental path (sfs/vsfs only): the daemon plans
  the dirty closure against its last stored solution, warm-solves just
  that closure, and answers like ``analyze`` plus an ``incremental``
  block (regions reused, dirty functions, steps saved);
- ``ping`` / ``stats`` — liveness and service counters;
- ``drain`` — begin graceful drain (admin; same as SIGTERM).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import InvalidRequest, ReproError, ServiceOverloaded

#: Wire protocol version, embedded in every response.
PROTOCOL_VERSION = 1

#: Operations a request may name, in documentation order.
OPS = ("analyze", "alias", "nullderef", "slice", "update_source", "ping",
       "stats", "drain")

#: Operations that need a program and a solve.
QUERY_OPS = ("analyze", "alias", "nullderef", "slice", "update_source")

#: Analyses a request may ask for (daemon surface: the staged solvers
#: plus the Andersen floor; the dense ICFG baseline is batch-only).
ANALYSES = ("ander", "sfs", "vsfs")


@dataclass
class Request:
    """One decoded, validated request."""

    op: str
    id: str = ""
    tenant: str = "default"
    program: Optional[str] = None
    language: str = "c"
    analysis: str = "vsfs"
    deadline_s: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)
    #: Stamped by the server at admission (monotonic clock) so workers
    #: can tell how much of the deadline the queue already spent.
    admitted_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "id": self.id,
            "tenant": self.tenant,
            "program": self.program,
            "language": self.language,
            "analysis": self.analysis,
            "deadline_s": self.deadline_s,
            "params": self.params,
        }


@dataclass
class Response:
    """One response, ok or typed-error, ready for the wire."""

    id: str = ""
    ok: bool = True
    op: str = ""
    result: Optional[Dict[str, Any]] = None
    #: Precision metadata of the solve that answered a query op.
    precision_level: Optional[str] = None
    degraded_from: Optional[str] = None
    precision_lost: bool = False
    #: Robustness audit: absorbed faults and worker-revival retries the
    #: request survived (0 = clean path).
    heals: int = 0
    retries: int = 0
    cached: bool = False
    elapsed_s: float = 0.0
    error: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "id": self.id,
            "ok": self.ok,
            "op": self.op,
            "elapsed_s": round(self.elapsed_s, 6),
        }
        if self.ok:
            payload["result"] = self.result
            if self.precision_level is not None:
                payload["precision_level"] = self.precision_level
                payload["degraded_from"] = self.degraded_from
                payload["precision_lost"] = self.precision_lost
            payload["heals"] = self.heals
            payload["retries"] = self.retries
            payload["cached"] = self.cached
        else:
            payload["error"] = self.error
        return payload

    def encode(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


def error_response(request_id: str, op: str, exc: BaseException,
                   elapsed_s: float = 0.0) -> Response:
    """Encode *exc* as a typed error response.

    Typed :class:`ReproError`\\ s carry their class name and message;
    anything else is reported as ``InternalError`` with the exception
    type attached — the caller is expected to have already charged the
    incident against a worker's failure budget (an untyped exception is
    a bug, but the daemon answers it in-protocol and stays up).
    """
    error: Dict[str, Any] = {
        "type": type(exc).__name__ if isinstance(exc, ReproError)
        else "InternalError",
        "message": str(exc) or type(exc).__name__,
    }
    if not isinstance(exc, ReproError):
        error["exception"] = type(exc).__name__
    retry_after = getattr(exc, "retry_after_s", None)
    if retry_after is not None:
        error["retry_after_s"] = retry_after
    if isinstance(exc, ServiceOverloaded):
        error["draining"] = exc.draining
    phase = getattr(exc, "phase", None)
    if phase is not None:
        error["phase"] = phase
    return Response(id=request_id, ok=False, op=op, error=error,
                    elapsed_s=elapsed_s)


def decode_request(raw: Any, faults: Any = None) -> Request:
    """Decode one request (a JSON line or an already-parsed dict).

    Total: every malformed input raises :class:`InvalidRequest` (and
    nothing else).  The ``request_decode`` fault point fires here, so
    the chaos daemon soak can prove a poisoned decoder still yields a
    typed response.
    """
    if faults is not None:
        faults.fire("request_decode", stage="service")
    if isinstance(raw, (str, bytes)):
        try:
            raw = json.loads(raw)
        except ValueError as err:
            raise InvalidRequest(f"request is not valid JSON: {err}") from err
    if not isinstance(raw, dict):
        raise InvalidRequest(
            f"request must be a JSON object, got {type(raw).__name__}")
    op = raw.get("op")
    if op not in OPS:
        raise InvalidRequest(f"unknown op {op!r}; choose from {OPS}")
    request = Request(
        op=op,
        id=str(raw.get("id", "")),
        tenant=str(raw.get("tenant", "default") or "default"),
        program=raw.get("program"),
        language=str(raw.get("language", "c") or "c"),
        analysis=str(raw.get("analysis", "vsfs") or "vsfs"),
        params=raw.get("params") or {},
    )
    if not isinstance(request.params, dict):
        raise InvalidRequest("params must be a JSON object")
    deadline = raw.get("deadline_s")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise InvalidRequest(
                f"deadline_s must be a number, got {deadline!r}") from None
        if deadline <= 0:
            raise InvalidRequest(f"deadline_s must be positive, got {deadline}")
        request.deadline_s = deadline
    if request.language not in ("c", "ir"):
        raise InvalidRequest(
            f"unknown language {request.language!r} (want 'c' or 'ir')")
    if request.analysis not in ANALYSES:
        raise InvalidRequest(
            f"unknown analysis {request.analysis!r}; the daemon serves "
            f"{ANALYSES}")
    if op in QUERY_OPS and not isinstance(request.program, str):
        raise InvalidRequest(f"op {op!r} needs a 'program' source string")
    if op == "alias":
        for key in ("a", "b"):
            if not isinstance(request.params.get(key), str):
                raise InvalidRequest(
                    "alias needs params.a and params.b variable names")
    if op == "update_source" and request.analysis not in ("sfs", "vsfs"):
        raise InvalidRequest(
            "update_source is incremental and needs a staged analysis "
            "('sfs' or 'vsfs'); 'ander' has no warm re-solve path")
    if op == "slice":
        if not isinstance(request.params.get("var"), str):
            raise InvalidRequest("slice needs a params.var variable name")
        direction = request.params.get("direction", "backward")
        if direction not in ("backward", "forward"):
            raise InvalidRequest(
                f"slice direction must be backward/forward, got {direction!r}")
        request.params["direction"] = direction
    return request
