"""``repro-wpa serve`` — the always-on analysis daemon's front door.

Starts an :class:`~repro.service.server.AnalysisService` and speaks one
of the two transports (:mod:`repro.service.transport`)::

    repro-wpa serve --store cache/                 # stdio JSONL
    repro-wpa serve --store cache/ --http --port 8377

    echo '{"op": "analyze", "program": "int g; int main() { int *p; \\
          p = &g; return 0; }"}' | repro-wpa serve --store cache/

Every durable artifact lives under ``--store`` (results, stage cache,
mask arena), which is the same layout the batch CLI uses — so a daemon
restarted onto a warm store answers bit-identically to a cold
``repro-wpa --store`` run, and the two can share one directory.

SIGTERM (and stdin EOF) triggers a graceful drain: in-flight requests
finish, queued ones are answered with a typed draining rejection and a
retry-after hint, then the process exits 0.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.service.admission import TenantPolicy
from repro.service.server import AnalysisService, ServiceConfig
from repro.service.transport import (
    install_sigterm_drain,
    serve_http,
    serve_stdio,
)


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-wpa serve",
        description="Run the supervised always-on analysis daemon",
    )
    parser.add_argument("--store", metavar="DIR",
                        help="durable substrate directory (results, stage "
                             "cache, arena); omitting it serves purely "
                             "in-memory — no warm restart")
    parser.add_argument("--http", action="store_true",
                        help="serve localhost HTTP instead of stdio JSONL")
    parser.add_argument("--host", default="127.0.0.1",
                        help="HTTP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="HTTP port (default 0 = pick a free one)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="supervised worker threads (default 2)")
    parser.add_argument("--queue-depth", type=int, default=64, metavar="N",
                        help="admission queue bound; excess load is shed "
                             "with typed retry-after responses (default 64)")
    parser.add_argument("--max-programs", type=int, default=8, metavar="N",
                        help="warm program sessions kept (LRU, default 8)")
    parser.add_argument("--default-deadline", type=float, default=30.0,
                        metavar="S",
                        help="deadline for requests that carry none "
                             "(default 30s; 0 = unlimited)")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME=QUEUED[:WALL_S]",
                        help="per-tenant policy: max queued requests and an "
                             "optional wall-clock clamp, e.g. ci=4:10")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        metavar="N",
                        help="consecutive failures before a (tenant, "
                             "program) breaker opens (default 3)")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        metavar="S",
                        help="seconds an open breaker waits before its "
                             "half-open probe (default 30)")
    parser.add_argument("--no-arena", action="store_true",
                        help="disable the shared memory-mapped mask arena")
    parser.add_argument("--strict-io", action="store_true",
                        help="fail requests on corrupt store entries "
                             "instead of quarantining and recomputing")
    return parser


def _parse_tenants(specs: List[str]) -> Dict[str, TenantPolicy]:
    tenants: Dict[str, TenantPolicy] = {}
    for spec in specs:
        name, sep, rest = spec.partition("=")
        if not sep or not name:
            raise ReproError(f"bad --tenant spec {spec!r}; "
                             f"want NAME=QUEUED[:WALL_S]")
        queued, __, wall = rest.partition(":")
        try:
            max_queued = int(queued)
            max_wall = float(wall) if wall else None
        except ValueError as err:
            raise ReproError(f"bad --tenant spec {spec!r}: {err}") from err
        tenants[name] = TenantPolicy(max_queued=max_queued,
                                     max_wall_s=max_wall)
    return tenants


def service_from_args(args: argparse.Namespace,
                      faults=None) -> AnalysisService:
    deadline = args.default_deadline if args.default_deadline > 0 else None
    config = ServiceConfig(
        store_dir=args.store,
        queue_depth=args.queue_depth,
        workers=args.workers,
        max_programs=args.max_programs,
        default_deadline_s=deadline,
        tenants=_parse_tenants(args.tenant),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        use_arena=not args.no_arena,
        strict_io=args.strict_io,
        faults=faults,
    )
    return AnalysisService(config)


def serve_main(argv: Optional[List[str]] = None) -> int:
    args = build_serve_parser().parse_args(argv)
    try:
        service = service_from_args(args)
    except ReproError as err:
        print(f"repro-wpa serve: error: {err}", file=sys.stderr)
        return 3
    except OSError as err:
        print(f"repro-wpa serve: error: {err}", file=sys.stderr)
        return 1
    service.start()
    install_sigterm_drain(service)
    try:
        if args.http:
            return serve_http(service, host=args.host, port=args.port)
        return serve_stdio(service)
    except KeyboardInterrupt:
        service.drain()
        return 0
    finally:
        if not service.draining:
            service.drain(reply_grace_s=5.0)
