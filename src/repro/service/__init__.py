"""``repro.service`` — the always-on analysis daemon (``repro-wpa serve``).

ROADMAP item 2's server half: a long-running supervised process that
keeps the stage cache, result store and MDE arena warm between queries,
so IDE-latency alias/null-deref/slice lookups (:mod:`repro.clients`) hit
a hot substrate instead of paying a cold batch run per question.  The
paper's amortisation argument (and the CFG-free/MDE follow-ups in
PAPERS.md) only pays off if the warm process survives bad requests,
overload and crashes — so robustness is the architecture:

- **Typed wire protocol** (:mod:`repro.service.protocol`): JSONL
  requests/responses over stdio or localhost HTTP; every failure is a
  typed error response, never a dropped connection.
- **Admission control** (:mod:`repro.service.admission`): a bounded
  queue that sheds load with ``ServiceOverloaded`` + retry-after hints
  — memory use is bounded by construction — plus per-tenant queued
  quotas and per-request deadlines that become wall-clock
  :class:`~repro.runtime.budget.Budget`\\ s on the solve.
- **Circuit breakers** (:mod:`repro.service.breaker`): a per
  (tenant, program) breaker pins repeat offenders to a cheaper ladder
  rung; half-open probes restore full precision when the program
  behaves again.
- **Supervised workers** (:mod:`repro.service.workers`): request
  execution on a heartbeat-monitored pool with kill-and-revive and
  per-slot failure budgets, borrowed from the parallel watchdog.
- **Graceful drain + warm restart** (:mod:`repro.service.server`):
  SIGTERM finishes in-flight requests and sheds the queue with
  retry-after; every durable artifact lives in the content-addressed
  store/stage-cache/arena, so a restarted daemon answers bit-identically
  to a cold batch run.

``repro-wpa chaos --daemon`` soaks the whole request path under the
``service`` fault domain; every injected fault must classify as
shed / degraded / healed / typed-failure — garbage fails the soak.
"""

from repro.service.admission import AdmissionQueue, TenantPolicy
from repro.service.breaker import BreakerBoard, CircuitBreaker
from repro.service.protocol import (
    OPS,
    Request,
    Response,
    decode_request,
    error_response,
)
from repro.service.server import AnalysisService, ServiceConfig
from repro.service.workers import WorkerPool

__all__ = [
    "AdmissionQueue",
    "AnalysisService",
    "BreakerBoard",
    "CircuitBreaker",
    "OPS",
    "Request",
    "Response",
    "ServiceConfig",
    "TenantPolicy",
    "WorkerPool",
    "decode_request",
    "error_response",
]
