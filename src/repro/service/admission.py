"""Bounded admission: the daemon sheds load instead of buffering it.

The queue is the service's only elastic state, and it is *bounded*: a
request either gets a slot or a typed :class:`ServiceOverloaded`
response with a retry-after hint — under any burst the daemon's memory
stays O(queue depth), never O(backlog).  Three admission gates, checked
in order:

1. **Draining** — a server that received SIGTERM (or an admin ``drain``)
   rejects everything with ``draining: true`` and a retry-after of the
   drain grace period, so clients fail over instead of waiting on a
   dying process.
2. **Queue depth** — the global bound; the retry-after hint scales with
   how full the queue is beyond the bound (a deeper backlog advertises a
   longer backoff, spreading the retry storm).
3. **Tenant quota** — a per-tenant cap on *queued* requests
   (:class:`TenantPolicy.max_queued`), so one chatty tenant cannot
   starve the rest of the bounded queue.

The ``queue_admit`` fault point fires inside :meth:`AdmissionQueue.admit`
and classifies as shed: an injected admission failure is exactly a
load-shed, and the chaos soak verifies the response is typed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import InjectedFault, ServiceOverloaded


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission and resource quotas.

    ``max_queued`` bounds the tenant's share of the admission queue.
    ``max_wall_s`` / ``max_steps`` cap any single request's solve budget
    (reusing :class:`repro.runtime.budget.Budget` semantics): a request
    deadline longer than ``max_wall_s`` is clamped, so no tenant can buy
    unbounded solver time with a generous client-side deadline.
    """

    max_queued: int = 8
    max_wall_s: Optional[float] = None
    max_steps: Optional[int] = None

    def clamp_deadline(self, deadline_s: Optional[float]) -> Optional[float]:
        if self.max_wall_s is None:
            return deadline_s
        if deadline_s is None:
            return self.max_wall_s
        return min(deadline_s, self.max_wall_s)


class AdmissionQueue:
    """Bounded FIFO of admitted work items with load shedding.

    Items are opaque to the queue except for ``item.request.tenant``
    (quota accounting).  ``admit`` never blocks — it either enqueues or
    raises :class:`ServiceOverloaded`.  ``get`` blocks workers until an
    item, drain, or timeout.
    """

    def __init__(self, depth: int = 64,
                 tenants: Optional[Dict[str, TenantPolicy]] = None,
                 default_policy: Optional[TenantPolicy] = None,
                 retry_after_s: float = 0.25, faults: Any = None):
        self.depth = max(1, depth)
        self.tenants = dict(tenants or {})
        self.default_policy = default_policy or TenantPolicy()
        self.retry_after_s = retry_after_s
        self.faults = faults
        self._items: deque = deque()
        self._queued_per_tenant: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._draining = False
        # ---- counters (service stats) ----
        self.admitted = 0
        self.shed_overload = 0
        self.shed_tenant = 0
        self.shed_draining = 0
        self.shed_injected = 0

    # ------------------------------------------------------------------ gates

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)

    @property
    def draining(self) -> bool:
        return self._draining

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    # -------------------------------------------------------------- admission

    def admit(self, item: Any) -> None:
        """Enqueue *item* or raise a typed :class:`ServiceOverloaded`."""
        tenant = item.request.tenant
        with self._lock:
            if self.faults is not None:
                try:
                    self.faults.fire("queue_admit", stage="service")
                except InjectedFault as err:
                    self.shed_injected += 1
                    raise ServiceOverloaded(
                        f"admission rejected by injected fault: {err}",
                        retry_after_s=self.retry_after_s) from err
            if self._draining:
                self.shed_draining += 1
                raise ServiceOverloaded(
                    "service is draining; retry against a fresh instance",
                    retry_after_s=max(self.retry_after_s, 1.0), draining=True)
            if len(self._items) >= self.depth:
                self.shed_overload += 1
                # Advertise a longer backoff the further past the bound
                # the offered load is — spreads the retry storm.
                pressure = 1.0 + len(self._items) / self.depth
                raise ServiceOverloaded(
                    f"admission queue full ({len(self._items)}/{self.depth})",
                    retry_after_s=self.retry_after_s * pressure)
            queued = self._queued_per_tenant.get(tenant, 0)
            if queued >= self.policy_for(tenant).max_queued:
                self.shed_tenant += 1
                raise ServiceOverloaded(
                    f"tenant {tenant!r} already has {queued} queued requests "
                    f"(quota {self.policy_for(tenant).max_queued})",
                    retry_after_s=self.retry_after_s)
            item.request.admitted_at = time.monotonic()
            self._items.append(item)
            self._queued_per_tenant[tenant] = queued + 1
            self.admitted += 1
            self._ready.notify()

    # -------------------------------------------------------------- consumers

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the next item, blocking up to *timeout*; None on timeout
        or when the queue is draining and empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not self._items:
                if self._draining:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._ready.wait(remaining)
            item = self._items.popleft()
            tenant = item.request.tenant
            count = self._queued_per_tenant.get(tenant, 1) - 1
            if count <= 0:
                self._queued_per_tenant.pop(tenant, None)
            else:
                self._queued_per_tenant[tenant] = count
            return item

    # ------------------------------------------------------------------ drain

    def drain(self) -> List[Any]:
        """Close admission and evict everything still queued.

        Returns the evicted items so the server can answer each with a
        typed draining response (in-flight requests are unaffected —
        drain is graceful for work already started).
        """
        with self._lock:
            self._draining = True
            evicted = list(self._items)
            self._items.clear()
            self._queued_per_tenant.clear()
            self._ready.notify_all()
            return evicted

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "depth": self.depth,
                "queued": len(self._items),
                "admitted": self.admitted,
                "shed_overload": self.shed_overload,
                "shed_tenant": self.shed_tenant,
                "shed_draining": self.shed_draining,
                "shed_injected": self.shed_injected,
            }
