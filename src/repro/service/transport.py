"""Daemon transports: stdio JSONL and localhost HTTP.

Both are thin shells over :meth:`AnalysisService.handle_line` — they own
no analysis state, so every robustness property (typed errors, bounded
queue, deadlines, drain) lives in the service core and is shared by both.

- **stdio** (default): one JSON request per stdin line, one JSON
  response per stdout line, in request order per connection.  EOF or
  SIGTERM starts a graceful drain.
- **http**: ``POST /query`` with a JSON request body; ``GET /health``
  returns liveness + stats (a load balancer's readiness probe: a
  draining daemon reports 503 so traffic fails over before the process
  exits).  Binds localhost only — the daemon speaks plaintext JSON and
  trusts its peer; remote exposure is a deployment's job (and choice).
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.service.server import AnalysisService


def install_sigterm_drain(service: AnalysisService) -> None:
    """SIGTERM/SIGINT → graceful drain (in-flight finish, queue shed)."""

    def _handler(signum, frame):  # noqa: ARG001 — signal API
        threading.Thread(target=service.drain, daemon=True,
                         name="repro-svc-sigterm").start()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, _handler)
        except ValueError:
            # Not the main thread (tests, embedded use): the caller
            # drains explicitly instead.
            return


def serve_stdio(service: AnalysisService, stdin=None, stdout=None) -> int:
    """Blocking JSONL loop; returns when stdin closes or drain completes."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        response = service.handle_line(line)
        stdout.write(response.encode() + "\n")
        stdout.flush()
        if service.draining and service.queue.draining:
            break
    service.drain()
    return 0


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; the service lives on the server object."""

    server_version = "repro-wpa-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # the service keeps its own counters; stay quiet on stderr

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802 — stdlib naming
        if self.path not in ("/health", "/stats"):
            self._reply(404, {"error": "unknown path; GET /health"})
            return
        stats = self.service.stats()
        status = 503 if self.service.draining else 200
        self._reply(status, stats)

    def do_POST(self):  # noqa: N802 — stdlib naming
        if self.path != "/query":
            self._reply(404, {"error": "unknown path; POST /query"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        raw = self.rfile.read(length).decode("utf-8", errors="replace")
        response = self.service.handle_line(raw)
        # Typed errors are still HTTP 200: the protocol envelope carries
        # the verdict, and a shed/deadline response is a *successful*
        # admission-control outcome, not a transport failure.
        self._reply(200, response.to_dict())


def serve_http(service: AnalysisService, host: str = "127.0.0.1",
               port: int = 0,
               ready: Optional[threading.Event] = None) -> int:
    """Blocking HTTP loop; drain stops it.  ``port=0`` picks a free port
    (printed, and exposed as ``server.server_address`` for tests)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    service.http_server = server  # back-reference for tests/drain
    print(f"repro-wpa serve: listening on "
          f"http://{server.server_address[0]}:{server.server_address[1]}",
          file=sys.stderr, flush=True)
    if ready is not None:
        ready.set()

    stopper = threading.Thread(target=_stop_on_drain,
                               args=(service, server), daemon=True,
                               name="repro-svc-http-stop")
    stopper.start()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return 0


def _stop_on_drain(service: AnalysisService, server) -> None:
    service._drained.wait()
    server.shutdown()
