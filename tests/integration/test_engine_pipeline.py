"""Integration tests: stage-graph engine behind the public pipeline API.

Covers the sharing hazard the engine refactor fixed (solvers used to
mutate the pipeline's cached SVFG via on-the-fly call graph resolution),
the trace surfaced through ``analyze``/CLI, and the CLI stage cache.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.pipeline import AnalysisPipeline, analyze

SRC = """
int *g; int x; int y;
void set(int *p) { g = p; }
int main() { set(&x); int *a; a = g; set(&y); return 0; }
"""


class TestSolverIsolation:
    def test_sfs_then_vsfs_on_one_pipeline_matches_fresh(self):
        shared = AnalysisPipeline.from_source(SRC)
        sfs_shared = shared.sfs().snapshot()
        vsfs_shared = shared.vsfs().snapshot()

        sfs_fresh = AnalysisPipeline.from_source(SRC).sfs().snapshot()
        vsfs_fresh = AnalysisPipeline.from_source(SRC).vsfs().snapshot()

        assert sfs_shared == sfs_fresh
        assert vsfs_shared == vsfs_fresh

    def test_order_independence(self):
        forwards = AnalysisPipeline.from_source(SRC)
        backwards = AnalysisPipeline.from_source(SRC)
        vsfs_after_sfs = (forwards.sfs(), forwards.vsfs().snapshot())[1]
        vsfs_first = backwards.vsfs().snapshot()
        assert vsfs_after_sfs == vsfs_first

    def test_shared_svfg_not_mutated_by_solves(self):
        pipeline = AnalysisPipeline.from_source(SRC)
        svfg = pipeline.svfg()
        direct = [list(row) for row in svfg.direct_succs]
        indirect = [dict(row) for row in svfg.ind_succs]
        pipeline.sfs()
        pipeline.vsfs()
        assert [list(row) for row in svfg.direct_succs] == direct
        assert [dict(row) for row in svfg.ind_succs] == indirect

    def test_repeated_solves_identical(self):
        pipeline = AnalysisPipeline.from_source(SRC)
        assert pipeline.vsfs().snapshot() == pipeline.vsfs().snapshot()

    def test_fresh_svfg_shares_nodes_not_edges(self):
        pipeline = AnalysisPipeline.from_source(SRC)
        base = pipeline.svfg()
        copy = pipeline.fresh_svfg()
        assert copy is not base
        assert copy.nodes is base.nodes
        assert copy.direct_succs is not base.direct_succs
        assert copy._edge_set is not base._edge_set


class TestTraceSurfaces:
    def test_analyze_report_carries_stage_trace(self):
        result = analyze(SRC, analysis="vsfs")
        trace = result.report.stage_trace
        assert trace is not None
        records = {r.stage: r for r in trace.records}
        assert records["solve:vsfs"].main_phase
        assert not records["svfg"].main_phase
        stages = result.report.to_dict()["stages"]
        assert any(s["stage"] == "solve:vsfs" and s["main_phase"]
                   for s in stages)

    def test_pipeline_trace_property(self):
        pipeline = AnalysisPipeline.from_source(SRC)
        pipeline.sfs()
        assert pipeline.trace.main_phase_wall() > 0.0
        assert pipeline.trace.substrate_wall() > 0.0


class TestCLI:
    @pytest.fixture
    def c_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(SRC)
        return str(path)

    def test_trace_flag_prints_breakdown(self, c_file, capsys):
        assert cli_main(["-vfspta", c_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "--- stage trace ---" in out
        assert "excluded from main phase" in out
        assert "solve:vsfs" in out

    def test_report_json_embeds_stages(self, c_file, tmp_path, capsys):
        report = str(tmp_path / "report.json")
        assert cli_main(["-vfspta", c_file, "--report-json", report]) == 0
        capsys.readouterr()
        with open(report) as handle:
            payload = json.load(handle)
        stages = payload["stages"]
        assert {s["stage"] for s in stages} >= {"prepare", "andersen",
                                                "svfg", "solve:vsfs"}
        assert all(not s["main_phase"] for s in stages
                   if not s["stage"].startswith("solve:"))

    def test_store_run_twice_hits_stage_cache(self, c_file, tmp_path,
                                              capsys):
        store = str(tmp_path / "store")
        first = str(tmp_path / "first.json")
        second = str(tmp_path / "second.json")
        argv = ["-vfspta", c_file, "--store", store, "--dump-pts"]
        assert cli_main(argv + ["--report-json", first]) == 0
        cold_out = capsys.readouterr().out
        assert cli_main(argv + ["--report-json", second]) == 0
        warm_out = capsys.readouterr().out

        # Identical points-to output either side of the cache.
        cold_pts = [l for l in cold_out.splitlines() if l.startswith("pt(")]
        warm_pts = [l for l in warm_out.splitlines() if l.startswith("pt(")]
        assert cold_pts and cold_pts == warm_pts

        with open(first) as handle:
            cold_payload = json.load(handle)
        with open(second) as handle:
            warm_payload = json.load(handle)
        assert not cold_payload["store_hit"]
        assert warm_payload["store_hit"]
        warm_stages = {s["stage"]: s for s in warm_payload["stages"]}
        for name in ("andersen", "modref", "memssa", "svfg", "versioning"):
            assert warm_stages[name]["cache_hit"], name
        assert warm_stages["solve:vsfs"]["cache"] == "result-store"


class TestRemovedPassesModule:
    def test_deprecated_alias_is_gone(self):
        """The repro.passes.pipeline shim finished its deprecation cycle;
        the import must now fail so stragglers migrate to
        repro.passes.prepare."""
        import importlib
        import sys

        sys.modules.pop("repro.passes.pipeline", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.passes.pipeline")

    def test_prepare_module_home(self):
        from repro.passes import prepare_module as from_package
        from repro.passes.prepare import prepare_module

        assert from_package is prepare_module
