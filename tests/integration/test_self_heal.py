"""Self-healing resilience, end to end (DESIGN.md §12).

The degraded-not-dead contract: io-domain faults and on-disk corruption
are absorbed — quarantine + recompute, retry + skip — with the incident
recorded as ``self_heal`` events on the run report; parallel-domain
faults are absorbed by the watchdog (kill-and-revive, then a collapse
onto the bit-identical serial rung).  The answer is never wrong and the
process never sees an untyped traceback.
"""

import glob
import json
import os

import pytest

from repro.cli import main
from repro.engine import StageCache
from repro.errors import WorkerCrash
from repro.frontend import compile_c
from repro.parallel.driver import solve_parallel
from repro.pipeline import AnalysisPipeline
from repro.runtime.checkpoint import CheckpointConfig
from repro.runtime.degrade import solve_with_ladder
from repro.runtime.faults import FaultPlan
from repro.store import ResultStore

SOURCE = """
struct node { int v; struct node *f0; };
struct node *g;
struct node *cb1(struct node *a, struct node *b) { g = a; return b; }
struct node *cb2(struct node *a, struct node *b) { g = b; return a; }
fnptr h;
int main(int c) {
    struct node *n = (struct node*)malloc(sizeof(struct node));
    if (c) { h = cb1; } else { h = cb2; }
    struct node *r = h(n, g);
    return 0;
}
"""


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(SOURCE)
    return str(path)


def _corrupt(path, payload=b"garbage {"):
    with open(path, "wb") as handle:
        handle.write(payload)


def _truncate(path, keep=16):
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[:keep])


class TestWarmRunHealsCorruption:
    """The acceptance scenario: corrupt stage-cache entry AND truncated
    arena AND corrupt result entry — the warm run still answers."""

    def _heal_points(self, report_path):
        with open(report_path) as handle:
            doc = json.load(handle)
        heals = (doc.get("report") or {}).get("self_heal") or []
        heals += doc.get("self_heal") or []
        return {h.get("point") for h in heals}, doc

    def test_cli_warm_run_self_heals(self, c_file, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        report_path = str(tmp_path / "report.json")
        assert main(["-vfspta", c_file, "--store", store_dir]) == 0
        capsys.readouterr()

        # Vandalise everything the warm run depends on.
        stage_entries = glob.glob(os.path.join(store_dir, "stages", "*"))
        result_entries = glob.glob(os.path.join(store_dir, "result-*.json"))
        arena = os.path.join(store_dir, "arena.bin")
        assert stage_entries and result_entries and os.path.exists(arena)
        _corrupt(stage_entries[0])
        _corrupt(result_entries[0])
        _truncate(arena)

        code = main(["-vfspta", c_file, "--store", store_dir,
                     "--report-json", report_path])
        err = capsys.readouterr().err
        assert code == 0
        assert "quarantined" in err and "recomputing" in err
        points, doc = self._heal_points(report_path)
        assert "stage_cache_read" in points
        assert "result_store_get" in points
        assert "arena_attach" in points  # truncated arena rebuilt
        assert doc["report"]["precision_lost"] is False

    def test_strict_io_restores_fail_fast(self, c_file, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["-vfspta", c_file, "--store", store_dir]) == 0
        for entry in glob.glob(os.path.join(store_dir, "result-*.json")):
            _corrupt(entry)
        capsys.readouterr()
        assert main(["-vfspta", c_file, "--store", store_dir,
                     "--strict-io"]) == 3

    def test_healed_answer_matches_clean_answer(self, tmp_path):
        store = str(tmp_path / "store")
        cache = StageCache(os.path.join(store, "stages"))
        clean = AnalysisPipeline.from_source(SOURCE, cache=cache).vsfs()
        for entry in glob.glob(os.path.join(store, "stages", "*")):
            _corrupt(entry)
        healed_pipeline = AnalysisPipeline.from_source(
            SOURCE, cache=StageCache(os.path.join(store, "stages")))
        healed = healed_pipeline.vsfs()
        assert healed._pt == clean._pt
        assert len(healed_pipeline.trace.heals) >= 1


class TestCheckpointSkips:
    def test_unwritable_checkpoints_skip_not_fail(self, tmp_path):
        module = compile_c(SOURCE)
        plan = FaultPlan(point="checkpoint_write", probability=1.0,
                         once=False)
        pipeline = AnalysisPipeline(module)
        config = CheckpointConfig(str(tmp_path / "ck"), every_steps=1)
        result = solve_with_ladder(pipeline, analysis="sfs", faults=plan,
                                   checkpoint=config)
        clean = AnalysisPipeline(compile_c(SOURCE)).sfs()
        assert result._pt == clean._pt
        report = result.report
        assert not report.degraded
        assert report.checkpoint_skips >= 1 and report.checkpoint_saves == 0
        assert any(h.get("point") == "checkpoint_write"
                   and h.get("action") == "skip-write"
                   for h in report.self_heal)


class TestWatchdogCollapse:
    def test_budget_spend_collapses_bit_identical(self):
        module = compile_c(SOURCE)
        serial = AnalysisPipeline(module).sfs()
        plan = FaultPlan(point="frontier_send", probability=1.0, once=False)
        pipeline = AnalysisPipeline(module)
        result = solve_with_ladder(pipeline, analysis="sfs-par", jobs=2,
                                   faults=plan, parallel_mode="inline")
        assert result._pt == serial._pt  # collapse costs nothing
        report = result.report
        assert report.degraded_from == "sfs-par"
        assert report.precision_level == "sfs"
        assert report.precision_lost is False
        assert report.attempts[0].error_type == "WorkerCrash"

    def test_worker_crash_is_typed_and_contextual(self):
        module = compile_c(SOURCE)
        pipeline = AnalysisPipeline(module)
        plan = FaultPlan(point="frontier_recv", probability=1.0, once=False)
        with pytest.raises(WorkerCrash) as info:
            solve_parallel(pipeline.fresh_svfg(), "sfs", jobs=2,
                           faults=plan, mode="inline",
                           max_worker_failures=1)
        err = info.value
        assert err.worker >= 0 and err.failures == 1
        assert err.incident == "frontier-recv"

    def test_single_fault_revives_and_stays_parallel(self):
        module = compile_c(SOURCE)
        serial = AnalysisPipeline(module).sfs()
        plan = FaultPlan(point="frontier_send")  # once=True: one incident
        result = AnalysisPipeline(module).sfs_par(jobs=2, faults=plan,
                                                  mode="inline")
        assert result._pt == serial._pt
        assert result.parallel.revivals >= 1
        assert result.parallel.worker_failures >= 1
        assert plan.fired  # the incident actually happened


class TestResultStorePut:
    def test_failed_put_is_skippable(self, tmp_path):
        module = compile_c(SOURCE)
        store = ResultStore(str(tmp_path / "results"))
        result = AnalysisPipeline(module).sfs()
        plan = FaultPlan(point="result_store_put", probability=1.0,
                         once=False)
        from repro.errors import InjectedFault

        with pytest.raises(InjectedFault):
            store.put(module, "sfs", True, True, result, faults=plan)
        # The caller-side contract (CLI/chaos): catch, skip, keep going —
        # and a retried once=True plan heals through on the second try.
        retry_plan = FaultPlan(point="result_store_put")
        from repro.runtime.resilience import IO_RETRY

        path = IO_RETRY.run(
            lambda: store.put(module, "sfs", True, True, result,
                              faults=retry_plan),
            retry_on=(OSError, InjectedFault), sleep=lambda _s: None)
        assert os.path.exists(path)
        assert retry_plan.fired


class TestChaosHarness:
    def test_mini_soak_passes(self, capsys):
        from repro.chaos import chaos_main

        assert chaos_main(["--seeds", "2", "--analyses", "sfs",
                           "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "no garbage outcomes" in out

    def test_schedule_listing(self, capsys):
        from repro.chaos import chaos_main

        assert chaos_main(["--list", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "chaos schedule" in out and "pre_meld" in out

    def test_schedule_is_deterministic_and_covering(self):
        from repro.chaos import build_daemon_schedule, build_schedule
        from repro.runtime.faults import FAULT_DOMAINS, FAULT_POINTS

        runs = build_schedule(["sfs", "vsfs"], [1, 2], 8, 0)
        again = build_schedule(["sfs", "vsfs"], [1, 2], 8, 0)
        assert [(r.point, r.trigger, r.seed) for r in runs] == \
            [(r.point, r.trigger, r.seed) for r in again]
        # The batch soak owns every non-service point; the daemon soak
        # (--daemon) owns the service domain — together, the whole table.
        targeted = {r.point for r in runs}
        service = set(FAULT_DOMAINS["service"])
        assert targeted == set(FAULT_POINTS) - service
        daemon_runs = build_daemon_schedule(["sfs", "vsfs"], 8, 0)
        assert {r.point for r in daemon_runs} == service
