"""E9: the paper's correctness claim (§IV-E) — VSFS ≡ SFS — plus the
precision ordering against the other analyses:

    pt_SFS(v) = pt_VSFS(v)  ⊆  pt_ICFG(v)  ⊆  pt_Andersen(v)

The dense ICFG baseline sits *above* SFS interprocedurally because it
propagates the whole memory state through every callee: objects a callee
never touches leak across to other callers' return sites, an imprecision
the staged solvers avoid through mod/ref-filtered χ/μ placement.  On
call-free paths the two coincide, which the intraprocedural scenario
asserts exactly.
"""

import pytest

from repro.analysis.andersen import run_andersen
from repro.bench.workloads import SUITE, WorkloadConfig, generate_program
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline

SCENARIOS = {
    "globals": """
        int *g; int x; int y;
        int main(int c) {
            g = &x;
            if (c) { g = &y; }
            int *a; a = g;
            return 0;
        }
    """,
    "linked-list": """
        struct node { int v; struct node *next; };
        struct node *head;
        void push() {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            n->next = head;
            head = n;
        }
        int main() {
            push(); push();
            struct node *p; p = head;
            while (p != null) { p = p->next; }
            return 0;
        }
    """,
    "callbacks": """
        struct node { int v; struct node *f0; };
        struct node *g;
        struct node *cb1(struct node *a, struct node *b) { g = a; return b; }
        struct node *cb2(struct node *a, struct node *b) { g = b; return a; }
        fnptr h;
        int main(int c) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            if (c) { h = cb1; } else { h = cb2; }
            struct node *r = h(n, g);
            return 0;
        }
    """,
    "fields": """
        struct pair { int *fst; int *snd; };
        struct pair gp;
        int x; int y;
        void set(struct pair *p) { p->fst = &x; p->snd = &y; }
        int main() {
            set(&gp);
            int *a; a = gp.fst;
            int *b; b = gp.snd;
            return 0;
        }
    """,
    "recursion": """
        struct node { int v; struct node *next; };
        struct node *build(int n) {
            struct node *x = (struct node*)malloc(sizeof(struct node));
            if (n) { x->next = build(n - 1); }
            return x;
        }
        int main() { struct node *l = build(3); return 0; }
    """,
}


def masks(module, result):
    return [result.pts_mask(v) for v in module.variables]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_equivalence_chain(name):
    module = compile_c(SCENARIOS[name])
    pipeline = AnalysisPipeline(module)
    andersen = run_andersen(module)
    sfs = pipeline.sfs()
    vsfs = pipeline.vsfs()
    icfg = pipeline.icfg_fs()

    sfs_masks = masks(module, sfs)
    vsfs_masks = masks(module, vsfs)
    icfg_masks = masks(module, icfg)
    ander_masks = [andersen.pts_mask(v) for v in module.variables]

    assert sfs_masks == vsfs_masks, "VSFS must match SFS exactly"
    for vid, (sparse, dense, ander) in enumerate(zip(sfs_masks, icfg_masks, ander_masks)):
        var = module.variables[vid]
        assert sparse | dense == dense, f"SFS ⊄ ICFG at {var!r}"
        assert dense | ander == ander, f"ICFG ⊄ Andersen at {var!r}"


def test_intraprocedural_icfg_matches_sfs_exactly():
    module = compile_c("""
        int *g; int x; int y; int z;
        int main(int c) {
            g = &x;
            int *a; a = g;
            if (c) { g = &y; } else { g = &z; }
            int *b; b = g;
            return 0;
        }
    """)
    # Inline everything into main (no calls besides the implicit
    # __module_init__ -> main): dense and sparse coincide.
    pipeline = AnalysisPipeline(module)
    assert masks(module, pipeline.sfs()) == masks(module, pipeline.icfg_fs())


@pytest.mark.parametrize("name", ["du", "ninja", "bake", "dpkg"])
def test_small_suite_program_equivalence(name):
    module = generate_program(SUITE[name])
    pipeline = AnalysisPipeline(module)
    sfs = pipeline.sfs()
    vsfs = pipeline.vsfs()
    assert masks(module, sfs) == masks(module, vsfs)
    ander = run_andersen(module)
    for v in module.variables:
        assert sfs.pts_mask(v) | ander.pts_mask(v) == ander.pts_mask(v)


def test_small_workload_sfs_within_icfg():
    config = WorkloadConfig(name="tiny", seed=7, num_functions=4,
                            stmts_per_function=6, num_globals=3,
                            num_handlers=1, indirect_call_rate=0.2)
    module = generate_program(config)
    pipeline = AnalysisPipeline(module)
    sfs = pipeline.sfs()
    icfg = pipeline.icfg_fs()
    for v in module.variables:
        assert sfs.pts_mask(v) | icfg.pts_mask(v) == icfg.pts_mask(v), repr(v)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_optimisation_matrix_preserves_precision(name):
    """Delta kernel and points-to repository are result-invisible: all four
    (delta × ptrepo) configurations of both staged solvers agree bit for
    bit with the eager full-mask baseline."""
    module = compile_c(SCENARIOS[name])
    pipeline = AnalysisPipeline(module)
    baseline = masks(module, pipeline.sfs(delta=False, ptrepo=False))
    for runner in (pipeline.sfs, pipeline.vsfs):
        for delta in (False, True):
            for ptrepo in (False, True):
                result = runner(delta=delta, ptrepo=ptrepo)
                assert masks(module, result) == baseline, (
                    f"{runner.__name__}(delta={delta}, ptrepo={ptrepo}) diverged"
                )


def test_callgraphs_agree_between_sfs_and_vsfs():
    module = compile_c(SCENARIOS["callbacks"])
    pipeline = AnalysisPipeline(module)
    sfs = pipeline.sfs()
    vsfs = pipeline.vsfs()
    sfs_edges = {(c.id, f.name) for c, f in sfs.callgraph.call_edges()}
    vsfs_edges = {(c.id, f.name) for c, f in vsfs.callgraph.call_edges()}
    assert sfs_edges == vsfs_edges
