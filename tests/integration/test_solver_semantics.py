"""Integration tests: flow-sensitive solver semantics on targeted programs.

Each scenario checks a behaviour the paper's rules (Figure 10) require —
on *both* SFS and VSFS, which must agree exactly.

Observation pattern: mem2reg erases plain locals, so test programs pass the
value of interest to an empty ``sink_*`` function; the solver binds it to
the sink's formal parameter, which we read back by name.
"""

import pytest

from repro.analysis.andersen import run_andersen
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline


def solve_both(src):
    module = compile_c(src)
    pipeline = AnalysisPipeline(module)
    return module, pipeline.sfs(), pipeline.vsfs()


def observed(module, result, sink_name):
    """pt of the first parameter of observation function *sink_name*."""
    param = module.functions[sink_name].params[0]
    return {obj.name for obj in result.points_to(param)}


@pytest.fixture(scope="module")
def flow_sensitivity_case():
    return solve_both("""
        int *g; int x; int y;
        void sink_a(int *p) { }
        void sink_b(int *p) { }
        int main() {
            g = &x;
            sink_a(g);        // sees only {x}
            g = &y;
            sink_b(g);        // sees only {y}: strong update killed x
            return 0;
        }
    """)


class TestFlowSensitivity:
    def test_first_load_sees_only_first_store(self, flow_sensitivity_case):
        module, sfs, vsfs = flow_sensitivity_case
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}

    def test_second_load_sees_strong_update(self, flow_sensitivity_case):
        module, sfs, vsfs = flow_sensitivity_case
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_b") == {"y"}

    def test_andersen_is_less_precise_here(self, flow_sensitivity_case):
        module, __, __vsfs = flow_sensitivity_case
        andersen = run_andersen(module)
        param = module.functions["sink_a"].params[0]
        assert {o.name for o in andersen.points_to(param)} == {"x", "y"}

    def test_strong_update_counted(self, flow_sensitivity_case):
        __, sfs, vsfs = flow_sensitivity_case
        assert sfs.stats.strong_updates >= 2
        assert vsfs.stats.strong_updates >= 2

    def test_sfs_vsfs_identical_everywhere(self, flow_sensitivity_case):
        __, sfs, vsfs = flow_sensitivity_case
        assert sfs.snapshot() == vsfs.snapshot()


class TestWeakUpdates:
    def test_heap_store_never_kills(self):
        module, sfs, vsfs = solve_both("""
            struct cell { int *p; };
            int x; int y;
            void sink_b(int *p) { }
            int main() {
                struct cell *c = (struct cell*)malloc(sizeof(struct cell));
                c->p = &x;
                c->p = &y;                 // heap object: weak update only
                sink_b(c->p);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_b") == {"x", "y"}

    def test_may_target_store_is_weak(self):
        module, sfs, vsfs = solve_both("""
            int *g1; int *g2; int x; int y;
            void sink_a(int *p) { }
            int main(int c) {
                g1 = &x; g2 = &x;
                int **p;
                if (c) { p = &g1; } else { p = &g2; }
                *p = &y;                   // may write either: weak
                sink_a(g1);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x", "y"}

    def test_array_store_is_weak(self):
        module, sfs, vsfs = solve_both("""
            int *arr[4]; int x; int y;
            void sink_a(int *p) { }
            int main() {
                arr[0] = &x;
                arr[1] = &y;               // same abstract object: weak
                sink_a(arr[0]);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x", "y"}

    def test_stack_slot_in_loop_not_strong_updated(self):
        module, sfs, vsfs = solve_both("""
            int x; int y;
            int **keep;
            void sink_a(int *p) { }
            int main() {
                int i;
                for (i = 0; i < 2; i = i + 1) {
                    int *slot;
                    keep = &slot;
                    *keep = &x;
                    *keep = &y;             // slot is in a loop: weak
                    sink_a(slot);
                }
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x", "y"}


class TestFieldSensitivity:
    def test_distinct_fields_do_not_alias(self):
        module, sfs, vsfs = solve_both("""
            struct pair { int *fst; int *snd; };
            struct pair g;
            int x; int y;
            void sink_a(int *p) { }
            void sink_b(int *p) { }
            int main() {
                g.fst = &x;
                g.snd = &y;
                sink_a(g.fst);
                sink_b(g.snd);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}
            assert observed(module, result, "sink_b") == {"y"}

    def test_field_through_heap_pointer(self):
        module, sfs, vsfs = solve_both("""
            struct pair { int *fst; int *snd; };
            int x;
            void sink_a(int *p) { }
            void sink_b(int *p) { }
            int main() {
                struct pair *p = (struct pair*)malloc(sizeof(struct pair));
                p->snd = &x;
                sink_a(p->snd);
                sink_b(p->fst);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}
            assert observed(module, result, "sink_b") == set()


class TestInterprocedural:
    def test_value_flows_through_callee(self):
        module, sfs, vsfs = solve_both("""
            int *g; int x;
            void setter() { g = &x; }
            void sink_a(int *p) { }
            int main() {
                setter();
                sink_a(g);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}

    def test_callee_effect_not_visible_before_call(self):
        module, sfs, vsfs = solve_both("""
            int *g; int x;
            void setter() { g = &x; }
            void sink_a(int *p) { }
            void sink_b(int *p) { }
            int main() {
                sink_a(g);        // before the call: empty
                setter();
                sink_b(g);        // after: {x}
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == set()
            assert observed(module, result, "sink_b") == {"x"}

    def test_value_survives_non_modifying_call(self):
        module, sfs, vsfs = solve_both("""
            int *g; int h; int x;
            void unrelated() { h = 1; }
            void sink_a(int *p) { }
            int main() {
                g = &x;
                unrelated();
                sink_a(g);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}

    def test_return_value_binding(self):
        module, sfs, vsfs = solve_both("""
            int x;
            int *give() { return &x; }
            void sink_a(int *p) { }
            int main() { sink_a(give()); return 0; }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}

    def test_parameter_binding(self):
        module, sfs, vsfs = solve_both("""
            int *g;
            void stash(int *p) { g = p; }
            int x;
            void sink_a(int *p) { }
            int main() { stash(&x); sink_a(g); return 0; }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}


class TestOnTheFlyCallGraph:
    def test_indirect_call_resolved(self):
        module, sfs, vsfs = solve_both("""
            struct node { int v; struct node *f0; };
            struct node *g;
            struct node *setter(struct node *a, struct node *b) { g = a; return b; }
            fnptr h;
            void sink_got(struct node *p) { }
            void sink_ret(struct node *p) { }
            int main() {
                struct node *n = (struct node*)malloc(sizeof(struct node));
                h = setter;
                struct node *r = h(n, n);
                sink_ret(r);
                sink_got(g);
                return 0;
            }
        """)
        heap = next(o.name for o in module.objects if o.kind.value == "heap")
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_got") == {heap}
            assert observed(module, result, "sink_ret") == {heap}
            assert result.stats.indirect_calls_resolved >= 1

    def test_fs_callgraph_within_andersens(self):
        module, sfs, vsfs = solve_both("""
            struct node { int v; };
            struct node *f1(struct node *a, struct node *b) { return a; }
            struct node *f2(struct node *a, struct node *b) { return b; }
            fnptr h;
            int main(int c) {
                if (c) { h = f1; } else { h = f2; }
                struct node *r = h(null, null);
                return 0;
            }
        """)
        andersen = run_andersen(module)
        assert sfs.callgraph.num_edges() <= andersen.callgraph.num_edges()
        assert vsfs.callgraph.num_edges() == sfs.callgraph.num_edges()

    def test_unreached_handler_not_called(self):
        module, sfs, vsfs = solve_both("""
            struct node { int v; };
            struct node *g;
            struct node *used(struct node *a, struct node *b) { g = a; return a; }
            struct node *unused(struct node *a, struct node *b) { return b; }
            fnptr h;
            int main() {
                h = used;
                struct node *r = h(null, null);
                return 0;
            }
        """)
        unused = module.functions["unused"]
        for result in (sfs, vsfs):
            assert not result.callgraph.callsites_of(unused)


class TestMultiLevelPointers:
    def test_double_indirection(self):
        module, sfs, vsfs = solve_both("""
            int x;
            int **keep;
            void sink_a(int *p) { }
            int main() {
                int *p;
                keep = &p;        // keep p in memory
                *keep = &x;
                sink_a(*keep);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            assert observed(module, result, "sink_a") == {"x"}

    def test_swap_through_pointers(self):
        module, sfs, vsfs = solve_both("""
            int x; int y;
            void swap(int **a, int **b) {
                int *t;
                t = *a;
                *a = *b;
                *b = t;
            }
            void sink_a(int *p) { }
            void sink_b(int *p) { }
            int main() {
                int *p; int *q;
                p = &x; q = &y;
                swap(&p, &q);
                sink_a(p);
                sink_b(q);
                return 0;
            }
        """)
        for result in (sfs, vsfs):
            # context-insensitive swap: both end up {x, y} at the sinks
            assert "y" in observed(module, result, "sink_a")
            assert "x" in observed(module, result, "sink_b")
