"""E2: the paper's motivating example (Figures 2 and 9).

Paper claims for the fragment: SFS keeps 6 points-to sets and 6
propagation constraints for object *o*; VSFS keeps **3** sets and **2**
constraints, with ℓ₂/ℓ₃ sharing a consumed version and ℓ₄/ℓ₅ sharing
another.  Our SVFG realises call sites as extra actual/formal nodes, so the
SFS counts are larger than the simplified figure (11 sets, 14 edges) —
the VSFS numbers match the paper exactly.
"""

import pytest

from repro.bench.motivating import MOTIVATING_SOURCE, run_motivating_example
from repro.core.versioning import ObjectVersioning
from repro.frontend import compile_c
from repro.pipeline import AnalysisPipeline


@pytest.fixture(scope="module")
def report():
    return run_motivating_example()


class TestPrecision:
    def test_loads_before_weak_store_see_only_a(self, report):
        assert report.observed["sink_l2"] == {"a"}
        assert report.observed["sink_l3"] == {"a"}

    def test_loads_after_join_see_a_and_b(self, report):
        assert report.observed["sink_l4"] == {"a", "b"}
        assert report.observed["sink_l5"] == {"a", "b"}


class TestFigure2Counts:
    def test_vsfs_stores_exactly_three_sets_for_o(self, report):
        assert report.vsfs_ptsets_for_o1 == 3  # κ₁, κ₂, κ₁⊙κ₂

    def test_vsfs_needs_exactly_two_constraints_for_o(self, report):
        assert report.vsfs_constraints_for_o1 == 2  # κ₁→meld, κ₂→meld

    def test_sfs_needs_strictly_more(self, report):
        assert report.sfs_ptsets_for_o1 > report.vsfs_ptsets_for_o1
        assert report.sfs_propagations_for_o1 > report.vsfs_constraints_for_o1
        # the paper's fragment: at least 6 / 6
        assert report.sfs_ptsets_for_o1 >= 6
        assert report.sfs_propagations_for_o1 >= 6


class TestFigure9Versions:
    def test_early_loads_share_a_version(self, report):
        assert report.consumed_versions["sink_l2"] == report.consumed_versions["sink_l3"]

    def test_late_loads_share_a_version(self, report):
        assert report.consumed_versions["sink_l4"] == report.consumed_versions["sink_l5"]

    def test_the_two_groups_differ(self, report):
        assert report.consumed_versions["sink_l2"] != report.consumed_versions["sink_l4"]

    def test_all_versions_non_epsilon(self, report):
        assert all(v != ObjectVersioning.EPSILON for v in report.consumed_versions.values())


class TestSolverAgreement:
    def test_sfs_vsfs_identical_on_fragment(self):
        module = compile_c(MOTIVATING_SOURCE)
        pipeline = AnalysisPipeline(module)
        assert pipeline.sfs().snapshot() == pipeline.vsfs().snapshot()
